#include "model/consent_census.hpp"

#include <cmath>

namespace rpkic::model {

ConsentCensus buildConsentCensus(const CensusConfig& config) {
    ConsentCensus out;
    consent::AuthorityOptions options;
    options.ts = 5;
    options.manifestLifetime = 1000;
    options.signerHeight = 4;  // issuance happens once; manifests are few
    out.directory = std::make_unique<consent::AuthorityDirectory>(config.seed, options);
    auto& dir = *out.directory;

    const auto histogram = table8Histogram(config.scale);
    Asn nextAsn = 10000;
    std::uint32_t poolCursor = 0x0A000000u;

    for (const auto& rirName : rirNames()) {
        // One /8-sized pool per RIR from a synthetic block. The trust
        // anchor signs one RC and one manifest update per leaf.
        std::size_t rirLeaves = 0;
        for (const auto& row : histogram) {
            if (row.rir == rirName) rirLeaves += row.leaves;
        }
        const int taHeight = std::max(
            4, static_cast<int>(std::ceil(std::log2(2.0 * (static_cast<double>(rirLeaves) + 4)))));
        ResourceSet pool;
        pool.addRangeV4(poolCursor, poolCursor + (1u << 24) - 1);
        consent::Authority& ta =
            dir.createTrustAnchor(rirName + "-c", pool, out.repository, 0, taHeight);
        out.trustAnchors.push_back(ta.cert());
        ++out.authorities;

        // Leaves straight under the trust anchor (intermediates carry no
        // signal for the sync-cost comparison), with the Table-8 AS mix.
        int leafIndex = 0;
        std::uint32_t leafCursor = poolCursor;
        for (const auto& row : histogram) {
            if (row.rir != rirName) continue;
            for (std::size_t i = 0; i < row.leaves; ++i, ++leafIndex) {
                const std::string leafName =
                    rirName + "-c-org" + std::to_string(leafIndex);
                const IpPrefix block = IpPrefix::v4(leafCursor, 16);
                leafCursor += 1u << 16;
                // Leaf key sized for its ROAs (one signature each) plus a
                // few manifest updates.
                const int leafHeight = std::max(
                    3, static_cast<int>(std::ceil(std::log2(row.asCount + 6))));
                consent::Authority& leaf =
                    dir.createChild(ta, leafName, ResourceSet::ofPrefixes({block}),
                                    out.repository, 0, leafHeight);
                ++out.authorities;
                // All of a leaf's ROAs go out in ONE manifest update, like
                // a fresh publication-point bring-up.
                std::vector<consent::Authority::RoaSpec> roas;
                for (int a = 0; a < row.asCount; ++a) {
                    const Asn asn = nextAsn++;
                    const std::uint32_t sub =
                        static_cast<std::uint32_t>(block.firstAddress().toU64()) +
                        (static_cast<std::uint32_t>(a % 256) << 8);
                    roas.push_back({"as" + std::to_string(asn), asn,
                                    {{IpPrefix::v4(sub, 24), 24}}});
                    ++out.roaObjects;
                }
                if (!roas.empty()) leaf.issueRoas(std::move(roas), out.repository, 0);
            }
        }
        poolCursor += 1u << 24;
    }
    return out;
}

}  // namespace rpkic::model
