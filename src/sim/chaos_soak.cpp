#include "sim/chaos_soak.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <sstream>

#include "util/errors.hpp"

namespace rpkic::sim {

namespace {

using rp::AlarmType;
using rp::RcStatus;
using rp::RelyingParty;
using rp::RpOptions;
using rp::SyncEngine;
using rp::SyncPolicy;

std::string roaKey(const Roa& r) {
    return r.uri + "|" + std::to_string(r.serial) + "|" + std::to_string(r.asn);
}

/// Scans a relying party for consent to the disappearance of `uri`
/// (simulation serials are small; mirror of the Theorem-5.1 test oracle).
bool sawAnyDeadFor(const RelyingParty& alice, const std::string& uri) {
    for (std::uint64_t s = 0; s < 64; ++s) {
        if (alice.sawDeadFor(uri, s)) return true;
    }
    return false;
}

bool hasUnilateralAlarmFor(const RelyingParty& alice, const std::string& uri) {
    for (const auto& a : alice.alarms().ofType(AlarmType::UnilateralRevocation)) {
        if (a.victim == uri) return true;
    }
    return false;
}

/// A takedown is consented-to or alarmed if the RC itself OR any cached
/// ancestor carries the evidence: the relying party invalidates whole
/// subtrees while the .dead / UnilateralRevocation alarm names only the
/// topmost victim (Deleted RC and Overwritten RC procedures).
bool takedownExcused(const RelyingParty& alice, const std::string& startUri) {
    std::string uri = startUri;
    for (int depth = 0; depth < 64 && !uri.empty(); ++depth) {
        if (sawAnyDeadFor(alice, uri)) return true;
        if (hasUnilateralAlarmFor(alice, uri)) return true;
        if (alice.successorOf(uri) != nullptr) return true;  // rollover completed
        const rp::RcRecord* rec = alice.findRc(uri);
        if (rec == nullptr) break;
        uri = rec->cert.parentUri;
    }
    return false;
}

/// True if the chaotic relying party's view of `startUri`'s delivery chain
/// is visibly behind the fault-free twin: an RC or publication point on
/// the chain is flagged stale, or the chaos-facing engine accepted an
/// older manifest than the twin for a chain point (a serve-stale pin that
/// passed the probe: indistinguishable from "no change" until the pinned
/// manifest expires, which is exactly the exposure §5.3.2 bounds with
/// manifest lifetimes). Under such lag the chaotic relying party may hold
/// mosaic state no honest global snapshot ever equalled; what it must
/// never do is differ from the twin while every chain point is current.
bool chainLagging(const RelyingParty& chaotic, const SyncEngine& engine,
                  const SyncEngine& twinEngine, const std::string& startUri) {
    const auto pointLags = [&](const std::string& p) {
        if (p.empty()) return false;
        if (chaotic.isPointStale(p)) return true;
        const rp::PointTelemetry* mine = engine.telemetryFor(p);
        const rp::PointTelemetry* theirs = twinEngine.telemetryFor(p);
        if (theirs == nullptr || !theirs->sawManifest) return false;
        return mine == nullptr || !mine->sawManifest ||
               mine->highestManifestNumber < theirs->highestManifestNumber;
    };
    std::string uri = startUri;
    for (int depth = 0; depth < 64 && !uri.empty(); ++depth) {
        const rp::RcRecord* rec = chaotic.findRc(uri);
        if (rec == nullptr) return true;  // incomplete chain: missing information
        if (rec->stale) return true;
        if (pointLags(rec->pointUri) || pointLags(rec->cert.pubPointUri)) return true;
        uri = rec->cert.parentUri;
    }
    return false;
}

struct Violations {
    std::vector<std::string>& out;
    std::uint64_t round;
    std::uint64_t seed = 0;
    obs::FlightRecorder* recorder = nullptr;
    const obs::Registry* registry = nullptr;
    std::vector<obs::CapturedBundle>* bundles = nullptr;

    /// At most this many invariant-failure bundles are captured per run
    /// (each snapshots the full ring + metrics digest; a cascade of
    /// violations should not balloon the result).
    static constexpr std::size_t kMaxBundles = 8;

    void add(const std::string& what) {
        std::ostringstream os;
        os << "round " << round << ": " << what;
        out.push_back(os.str());
        obs::flightRecord(recorder, obs::FlightKind::InvariantFail, "soak", os.str());
        if (recorder != nullptr && bundles != nullptr && bundles->size() < kMaxBundles) {
            obs::CapturedBundle bundle;
            bundle.trigger = "invariant-fail";
            bundle.label = "seed-" + std::to_string(seed) + "-violation-" +
                           std::to_string(out.size());
            bundle.bytes = obs::buildPostmortem(
                *recorder, registry, bundle.trigger,
                {{"seed", std::to_string(seed)},
                 {"round", std::to_string(round)},
                 {"violation", os.str()}});
            bundles->push_back(std::move(bundle));
        }
    }
};

/// Draws one fault for (pointUri, round) or nothing. Deterministic in rng.
std::optional<Fault> drawFault(Rng& rng, const SoakConfig& cfg, std::uint64_t round,
                               const std::string& pointUri, const FileMap& files) {
    if (!rng.nextBool(cfg.faultRate)) return std::nullopt;

    Fault f;
    f.pointUri = pointUri;
    f.round = round;

    const std::uint64_t roll = rng.nextBelow(100);
    if (roll < 25) {
        f.kind = FaultKind::DropFile;
    } else if (roll < 45) {
        f.kind = FaultKind::Corrupt;
    } else if (roll < 55) {
        f.kind = FaultKind::Truncate;
    } else if (roll < 70) {
        f.kind = FaultKind::DropPoint;
    } else if (roll < 80) {
        f.kind = FaultKind::WithholdManifest;
    } else if (roll < 95) {
        f.kind = FaultKind::ServeStale;
    } else {
        f.kind = FaultKind::Flap;
    }
    if (f.kind == FaultKind::ServeStale && round == 0) f.kind = FaultKind::DropPoint;

    switch (f.kind) {
        case FaultKind::DropFile:
        case FaultKind::Corrupt:
        case FaultKind::Truncate: {
            if (files.empty()) return std::nullopt;
            auto it = files.begin();
            std::advance(it, static_cast<long>(rng.nextBelow(files.size())));
            if (it->second.empty()) return std::nullopt;
            f.filename = it->first;
            if (f.kind == FaultKind::Corrupt) {
                f.param = rng.nextBelow(it->second.size() * 8);
            } else if (f.kind == FaultKind::Truncate) {
                f.param = rng.nextBelow(it->second.size());
            }
            break;
        }
        case FaultKind::ServeStale: {
            const std::uint64_t reach = std::min<std::uint64_t>(round, cfg.stallHorizon);
            f.param = round - 1 - rng.nextBelow(reach);
            break;
        }
        case FaultKind::Flap:
            f.param = 1 + rng.nextBelow(2);
            break;
        case FaultKind::DropPoint:
        case FaultKind::WithholdManifest:
            break;
        case FaultKind::OversizedObject:
        case FaultKind::InjectJunk:
        case FaultKind::ChainGraft:  // == kLast
            // Semantic kinds: scheduled only by adversary packs (their
            // parameters are scripted, not drawable), never by this soak.
            return std::nullopt;
    }

    if (f.kind == FaultKind::Flap) {
        f.rounds = 2 + static_cast<std::uint32_t>(rng.nextBelow(5));
        f.attempts = Fault::kAllAttempts;
    } else {
        f.rounds = rng.nextBool(0.6) ? 1 : 2 + static_cast<std::uint32_t>(rng.nextBelow(3));
        // Transient faults stay within the retry budget: the engine can
        // absorb them. Persistent ones survive every attempt.
        const bool transient = rng.nextBool(0.45);
        f.attempts = transient && cfg.retryBudget > 0
                         ? 1 + static_cast<std::uint32_t>(rng.nextBelow(cfg.retryBudget))
                         : Fault::kAllAttempts;
    }
    return f;
}

SoakResult runSoakImpl(const SoakConfig& cfg, const FaultPlan* replay) {
    RC_OBS_SPAN("soak.run", "soak");
    SoakResult result;
    result.seed = cfg.seed;

    // Run-local registry unless the caller wants the exposition: repeated
    // soaks in one process must each start from zero counters.
    obs::Registry localRegistry;
    obs::Registry* registry = cfg.registry != nullptr ? cfg.registry : &localRegistry;

    // Run-local flight recorder for the same reason: bundle bytes must
    // not depend on what earlier runs left in the ring.
    obs::FlightRecorder localRecorder;
    obs::FlightRecorder* recorder = cfg.recorder != nullptr ? cfg.recorder : &localRecorder;
    if (cfg.recorder == nullptr) localRecorder.attachMetrics(registry);
    obs::FlightScope runScope(recorder, "soak", "run seed=" + std::to_string(cfg.seed));

    const std::string statusPrefix = "soak/seed-" + std::to_string(cfg.seed) + "/";
    const auto publish = [&](const std::string& key, const std::string& value) {
        if (cfg.status != nullptr) cfg.status->set(statusPrefix + key, value);
    };
    publish("rounds-total", std::to_string(cfg.rounds));
    publish("state", "running");

    // --- world ---------------------------------------------------------------
    DriverConfig driverConfig;
    driverConfig.seed = cfg.seed;
    driverConfig.adversarialProbability = cfg.adversarialProbability;
    driverConfig.authority.manifestLifetime = static_cast<Duration>(cfg.rounds) + 50;
    RandomScheduleDriver driver(driverConfig);

    RepositorySource honest(driver.repo());

    FaultPlan header;
    if (replay != nullptr) {
        header = *replay;
    } else {
        header.seed = cfg.seed;
        header.rounds = cfg.rounds;
        header.retryBudget = cfg.retryBudget;
        header.adversarialPpm =
            static_cast<std::uint32_t>(std::llround(cfg.adversarialProbability * 1e6));
        header.stallHorizon = cfg.stallHorizon;
        header.crashEvery = cfg.crashEvery;
    }
    ChaosSource chaos(honest, std::move(header));

    // The chaotic relying party and its engine live in optionals: with
    // crashEvery > 0 an injected crash destroys the "process" and rebuilds
    // both from whatever the durable store recovered.
    const RpOptions rpOptions{.ts = 4, .tg = 8, .checkIntermediateStates = true};
    std::optional<RelyingParty> chaotic;
    chaotic.emplace("chaotic", driver.trustAnchors(), rpOptions, registry);
    chaotic->attachAlarmRecorder(recorder);
    RelyingParty twin("twin", driver.trustAnchors(), rpOptions, registry);
    twin.attachAlarmRecorder(recorder);

    SyncPolicy policy;
    policy.maxAttempts = cfg.retryBudget + 1;
    std::optional<SyncEngine> engine;
    engine.emplace(*chaotic, chaos, policy, registry);
    SyncEngine twinEngine(twin, honest, policy, registry);

    // --- serving-plane epoch publication --------------------------------------
    // Epochs are published at round commit and dump lines rendered right
    // away (publication-time capture survives ring eviction). Rounds a
    // crash forces the engine to redo would re-publish; the lastPublished
    // watermark keeps the serial sequence gapless and identical to a
    // crash-free run of the same seed.
    const bool captureEpochs = cfg.captureEpochs || cfg.rtrStore != nullptr;
    std::optional<serve::EpochStore> localEpochStore;
    serve::EpochStore* epochStore = cfg.rtrStore;
    if (captureEpochs && epochStore == nullptr) {
        localEpochStore.emplace();
        epochStore = &*localEpochStore;
    }
    std::uint64_t lastPublishedRound = 0;
    const auto attachEpochSink = [&]() {
        if (!captureEpochs) return;
        engine->attachEpochSink(
            [&](std::uint64_t round, std::shared_ptr<const RpkiState> state) {
                if (round <= lastPublishedRound) return;  // crash redo
                lastPublishedRound = round;
                const auto epoch = epochStore->publish(round, std::move(state));
                if (cfg.captureEpochs) {
                    result.epochDump += serve::epochDumpLine(cfg.seed, *epoch);
                }
                if (cfg.onEpochPublished) cfg.onEpochPublished();
            });
    };
    attachEpochSink();

    // --- durability layer (crashEvery > 0) -----------------------------------
    const bool durable = cfg.crashEvery > 0;
    std::optional<vfs::MemVfs> ownedVfs;
    vfs::Vfs* stateVfs = cfg.stateVfs;
    if (durable && stateVfs == nullptr) {
        ownedVfs.emplace(cfg.seed);  // deterministic torn writes per seed
        stateVfs = &*ownedVfs;
    }
    // Mid-instruction crashes can only be injected into a MemVfs backend;
    // on a DiskVfs the kill degenerates to a restart at the round boundary.
    vfs::MemVfs* memVfs = durable ? dynamic_cast<vfs::MemVfs*>(stateVfs) : nullptr;
    std::optional<rp::DurableStore> store;
    if (durable) {
        store.emplace(*stateVfs, cfg.stateDir, rp::StoreOptions{}, registry);
        store->attachRecorder(recorder);
        store->open();  // expects a fresh directory (tools pick one per run)
        engine->attachStore(&*store);
    }

    Rng faultRng(cfg.seed * 0x9e3779b97f4a7c15ull + 0xc4a05u);
    // Separate stream for crash-point placement: consumed identically when
    // generating and when replaying a plan, so `--plan` reruns crash at the
    // same VFS operations.
    Rng crashRng(cfg.seed * 0x9e3779b97f4a7c15ull + 0xc4a54u);
    std::vector<rp::SyncReport> allReports;  // across incarnations

    // --- oracles -------------------------------------------------------------
    std::set<std::string> twinEverValid;   // roaKey over all rounds
    std::set<std::string> chaoticWatched;  // RC uris ever Valid for chaotic
    std::size_t alarmsChecked = 0;         // I5 incremental cursor
    const bool honestWorld = cfg.adversarialProbability == 0.0;

    // Kill/restart: the "process" died mid-commit. Recover from the store,
    // prove the recovered bytes are a real committed state (I8), rebuild
    // the relying party + engine, and rerun whatever the crash wiped out
    // (I9). Returns false on an invariant violation.
    const auto restartFromStore = [&](Violations& v, std::uint64_t r, Time now) -> bool {
        ++result.stats.crashes;
        allReports.insert(allReports.end(), engine->reports().begin(), engine->reports().end());
        engine.reset();
        chaotic.reset();
        rp::RecoveryReport rec;
        try {
            rec = store->open();
        } catch (const std::exception& e) {
            v.add(std::string("store recovery failed after injected crash: ") + e.what());
            return false;
        }
        result.stats.storeTornBytes += rec.tornBytesDiscarded;
        if (rec.recovered) ++result.stats.storeRecoveries;
        obs::flightRecord(recorder, obs::FlightKind::CrashRealized, "soak",
                          "crash=" + std::to_string(result.stats.crashes) +
                              " round=" + std::to_string(r) + " " + rec.summary());
        if (result.postmortems.size() < Violations::kMaxBundles) {
            obs::CapturedBundle bundle;
            bundle.trigger = "crash-realized";
            bundle.label = "seed-" + std::to_string(cfg.seed) + "-crash-" +
                           std::to_string(result.stats.crashes);
            bundle.bytes = obs::buildPostmortem(
                *recorder, registry, bundle.trigger,
                {{"seed", std::to_string(cfg.seed)},
                 {"round", std::to_string(r)},
                 {"recovery", rec.summary()}});
            result.postmortems.push_back(std::move(bundle));
        }
        if (store->latest().has_value()) {
            const Bytes& blob = *store->latest();
            try {
                chaotic.emplace(RelyingParty::deserializeState(
                    ByteView(blob.data(), blob.size()), /*allowLegacy=*/false, registry));
            } catch (const std::exception& e) {
                v.add(std::string("recovered payload does not deserialize: ") + e.what());
                return false;
            }
            // I8: the store must return a state some commit produced — not
            // a near miss. Re-serializing the restored relying party has to
            // reproduce the recovered bytes exactly.
            if (!(chaotic->serializeState() == blob)) {
                v.add("recovered state does not re-serialize byte-identically (round " +
                      std::to_string(store->latestMeta()) + " payload)");
                return false;
            }
        } else {
            // Crashed before any commit became durable: a fresh process
            // starts from the trust anchors, exactly like round 0 did.
            chaotic.emplace("chaotic", driver.trustAnchors(), rpOptions, registry);
        }
        chaotic->attachAlarmRecorder(recorder);
        engine.emplace(*chaotic, chaos, policy, registry);
        engine->attachStore(&*store);
        attachEpochSink();
        if (store->latestMeta() > 0) engine->resumeAt(store->latestMeta());
        // The Stalloris regression floor is engine state, not relying-party
        // state; re-seed it from the restored manifests so the reborn
        // engine refuses the same stale serves the dead one refused.
        for (const auto& claim : chaotic->exportManifestClaims()) {
            engine->seedRegressionFloor(claim.pointUri, claim.number);
        }
        // Alarms raised after the durable state was written died with the
        // process; rewind the audit cursor to what survived.
        alarmsChecked = std::min(alarmsChecked, chaotic->alarms().all().size());
        // I9: rerun every round the crash wiped out. The durable meta is
        // the count of completed rounds, so this loop runs zero times (the
        // interrupted round's commit had already fsynced) or once.
        try {
            while (engine->round() <= r) {
                ++result.stats.roundsRedone;
                engine->syncRound(now);
            }
        } catch (const std::exception& e) {
            v.add(std::string("redo after restart failed: ") + e.what());
            return false;
        }
        return true;
    };

    for (std::uint64_t r = 0; r < cfg.rounds; ++r) {
        RC_OBS_SPAN("soak.round", "soak");
        obs::FlightScope roundScope(recorder, "soak", "round r=" + std::to_string(r));
        const Time now = static_cast<Time>(r);
        Violations v{result.violations, r, cfg.seed, recorder, registry,
                     &result.postmortems};
        publish("round", std::to_string(r));

        if (r > 0) driver.step(now);

        if (replay == nullptr) {
            // Schedule this round's faults against the points that exist
            // right now (std::map order keeps the draw deterministic).
            for (const auto& [uri, files] : driver.repo().snapshot().points) {
                auto f = drawFault(faultRng, cfg, r, uri, files);
                if (f.has_value()) chaos.addFault(std::move(*f));
            }
        }

        // Arm a kill inside the commit path: the crash fires a few VFS
        // operations ahead — mid-append, mid-fsync, or inside a checkpoint
        // fold, possibly in a later round. The rng draw happens in both
        // generate and replay mode so `--plan` reruns the same schedule.
        bool boundaryKill = false;
        if (durable && (r + 1) % cfg.crashEvery == 0) {
            const std::uint64_t ahead = 1 + crashRng.nextBelow(12);
            if (memVfs != nullptr) {
                memVfs->armCrashAt(memVfs->opCount() + ahead);
            } else {
                // Real filesystem: a mid-instruction crash cannot be
                // injected from userspace, so the kill degenerates to a
                // restart at the round boundary (still exercises recovery,
                // restore, and resume against actual disk state).
                boundaryKill = true;
            }
        }

        // --- I1: the pipeline must absorb anything the plan throws at it ---
        // (a CrashInjected is not an escape — it is the scheduled kill, and
        // the restart path must bring the relying party back: I8/I9).
        bool roundOk = true;
        try {
            engine->syncRound(now);
        } catch (const vfs::CrashInjected&) {
            roundOk = restartFromStore(v, r, now);
        } catch (const std::exception& e) {
            v.add(std::string("exception escaped chaotic sync: ") + e.what());
            roundOk = false;
        }
        if (roundOk && boundaryKill) roundOk = restartFromStore(v, r, now);
        try {
            twinEngine.syncRound(now);
        } catch (const std::exception& e) {
            v.add(std::string("exception escaped fault-free twin sync: ") + e.what());
            roundOk = false;
        }
        if (!roundOk) break;  // state after an escape is undefined; stop here

        const std::vector<Roa> twinValid = twin.validRoas();
        std::set<std::string> twinNow;
        for (const Roa& roa : twinValid) {
            twinNow.insert(roaKey(roa));
            twinEverValid.insert(roaKey(roa));
        }

        // --- I2 / I3: nothing fabricated; retained state is flagged ---
        // (after a crash the interrupted round's report may be absent: it
        // died before the commit, so the restarted incarnation re-ran it).
        const bool allDelivered = !engine->reports().empty() &&
                                  engine->reports().back().round == r &&
                                  engine->reports().back().pointsFailed == 0;
        for (const Roa& roa : chaotic->validRoas()) {
            const std::string key = roaKey(roa);
            if (twinNow.count(key) > 0) continue;
            // Not current in the twin: only a visibly lagging or stale
            // delivery chain may explain the difference (§5.3.2 — the
            // exposure window manifest expiry bounds). From fresh data the
            // chaotic relying party must agree with the twin.
            if (chainLagging(*chaotic, *engine, twinEngine, roa.parentUri)) continue;
            if (twinEverValid.count(key) == 0) {
                v.add("false-valid ROA " + key +
                      " from a current chain (never valid in the fault-free twin)");
            } else {
                v.add("silently retained ROA " + key +
                      " (twin dropped it; no stale flag or lag on its chain)");
            }
        }

        // --- I4: no silent takedown (Theorem 5.1 status oracle) ---
        for (const auto& [uri, rec] : chaotic->rcRecords()) {
            if (rec.status == RcStatus::Valid) chaoticWatched.insert(uri);
        }
        for (const std::string& uri : chaoticWatched) {
            const rp::RcRecord* rec = chaotic->findRc(uri);
            if (rec == nullptr) {
                v.add("watched RC record vanished: " + uri);
                continue;
            }
            if (rec->status != RcStatus::NoLongerValid) continue;
            if (takedownExcused(*chaotic, uri)) continue;
            v.add("silent takedown of " + uri +
                  " (NoLongerValid without .dead, alarm, or successor on its chain)");
        }

        // --- I7: twin and chaotic live in the same world ---
        if (cfg.globalCheckEvery > 0 && (r + 1) % cfg.globalCheckEvery == 0) {
            chaotic->globalConsistencyCheck(twin.exportManifestClaims(), now);
            twin.globalConsistencyCheck(chaotic->exportManifestClaims(), now);
        }

        // --- I5 / I6 / I7: alarm-class audit over the new alarms ---
        const auto& all = chaotic->alarms().all();
        for (; alarmsChecked < all.size(); ++alarmsChecked) {
            const rp::Alarm& a = all[alarmsChecked];
            switch (a.type) {
                case AlarmType::MissingInformation:
                    if (a.accountable || !a.perpetrator.empty()) {
                        v.add("missing-information alarm became accountable: " + a.str());
                    }
                    break;
                case AlarmType::InvalidSyntax:
                case AlarmType::ChildTooBroad:
                    if (!a.accountable || a.perpetrator.empty()) {
                        v.add("structural alarm lost its accountability: " + a.str());
                    }
                    break;
                case AlarmType::GlobalInconsistency:
                    if (a.accountable) {
                        v.add("accountable global inconsistency inside one world: " + a.str());
                    }
                    break;
                case AlarmType::BadKeyRollover:
                case AlarmType::UnilateralRevocation:
                    break;  // accountability legitimately depends on staleness
            }
            if (a.accountable && a.perpetrator.empty()) {
                v.add("accountable alarm names no perpetrator: " + a.str());
            }
            if (honestWorld && a.accountable) {
                v.add("chaos fabricated an accountable accusation in an honest world: " +
                      a.str());
            }
        }

        if (allDelivered && !(chaotic->roaState() == twin.roaState())) {
            ++result.stats.divergentCleanRounds;
        }

        publish("alarms", std::to_string(chaotic->alarms().count()));
        publish("violations", std::to_string(result.violations.size()));
        if (durable) publish("store-lsn", std::to_string(store->latestLsn()));
    }

    if (cfg.forceInvariantFail) {
        Violations forced{result.violations, cfg.rounds, cfg.seed, recorder, registry,
                          &result.postmortems};
        forced.add("forced invariant failure (--force-invariant-fail test hook)");
    }

    // --- stats ---------------------------------------------------------------
    // Engine totals/telemetry are materialized from the registry, so they
    // are cumulative across incarnations: a recreated engine re-binds the
    // same rc_sync_* counters (labels are stable per point).
    result.plan = chaos.plan();
    SoakStats& s = result.stats;
    s.faultsScheduled = result.plan.faults.size();
    s.faultApplications = chaos.faultApplications();
    s.attempts = engine->totals().attempts;
    s.retries = engine->totals().retries;
    s.faultsAbsorbed = engine->totals().faultsAbsorbed;
    s.pointRoundsFailed = engine->totals().pointRoundsFailed;
    for (const auto& [uri, pt] : engine->telemetry()) {
        s.maxStaleStreak = std::max(s.maxStaleStreak, pt.longestStaleStreak);
        s.recoveries += pt.recoveries;
        s.meanRecoveryRounds += static_cast<double>(pt.recoveryRoundsSum);
    }
    s.meanRecoveryRounds =
        s.recoveries == 0 ? 0.0 : s.meanRecoveryRounds / static_cast<double>(s.recoveries);
    s.alarms = chaotic->alarms().count();
    for (const auto& a : chaotic->alarms().all()) {
        if (a.accountable) ++s.accountableAlarms;
    }
    s.twinAlarms = twin.alarms().count();
    s.validRoasFinal = chaotic->validRoas().size();
    s.twinValidRoasFinal = twin.validRoas().size();
    if (durable) s.storeCommits = store->latestLsn();
    allReports.insert(allReports.end(), engine->reports().begin(), engine->reports().end());
    result.rounds = std::move(allReports);

    result.passed = result.violations.empty();
    publish("state", result.passed ? "passed" : "failed");
    return result;
}

}  // namespace

SoakConfig configFromPlan(const FaultPlan& plan) {
    SoakConfig cfg;
    cfg.seed = plan.seed;
    cfg.rounds = static_cast<std::uint32_t>(plan.rounds);
    cfg.retryBudget = plan.retryBudget;
    cfg.adversarialProbability = static_cast<double>(plan.adversarialPpm) / 1e6;
    cfg.stallHorizon = plan.stallHorizon;
    cfg.crashEvery = plan.crashEvery;
    cfg.faultRate = 0.0;  // faults come from the plan, not the generator
    return cfg;
}

SoakResult runSoak(const SoakConfig& cfg) {
    return runSoakImpl(cfg, nullptr);
}

SoakResult runSoakWithPlan(const FaultPlan& plan, obs::Registry* registry, vfs::Vfs* stateVfs,
                           const std::string& stateDir) {
    SoakConfig cfg = configFromPlan(plan);
    cfg.registry = registry;
    cfg.stateVfs = stateVfs;
    cfg.stateDir = stateDir;
    return runSoakImpl(cfg, &plan);
}

SoakResult runSoakWithPlan(const FaultPlan& plan, const SoakConfig& overrides) {
    SoakConfig cfg = overrides;
    const SoakConfig fromPlan = configFromPlan(plan);
    cfg.seed = fromPlan.seed;
    cfg.rounds = fromPlan.rounds;
    cfg.retryBudget = fromPlan.retryBudget;
    cfg.adversarialProbability = fromPlan.adversarialProbability;
    cfg.stallHorizon = fromPlan.stallHorizon;
    cfg.crashEvery = fromPlan.crashEvery;
    cfg.faultRate = fromPlan.faultRate;
    return runSoakImpl(cfg, &plan);
}

}  // namespace rpkic::sim
