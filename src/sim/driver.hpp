// Multi-party simulation driver for the redesigned RPKI.
//
// Builds a small authority hierarchy and plays randomized schedules of
// legal operations (ROA churn, broadening, consensual narrowing and
// revocation, key rollover) interleaved with adversarial ones (unilateral
// revocation/narrowing, oversized children). Relying parties sync against
// the evolving repository; the theorem oracles in tests/ assert that
// Theorem 5.1-5.3 guarantees hold on every schedule.
//
// Also provides the scripted attacks of §5.6 (Counterexamples 1 and 2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "consent/authority.hpp"
#include "rp/relying_party.hpp"
#include "util/rng.hpp"

namespace rpkic::sim {

struct OpLogEntry {
    Time at = 0;
    std::string description;
    bool adversarial = false;
    /// RC URIs whacked without consent by this op ("victims" for the
    /// Theorem 5.1 oracle).
    std::vector<std::string> unconsentedVictims;
};

struct DriverConfig {
    std::uint64_t seed = 1;
    consent::AuthorityOptions authority{.ts = 4, .signerHeight = 6, .manifestLifetime = 50};
    double adversarialProbability = 0.15;
};

/// Drives a three-level hierarchy (rir -> {isp1, isp2} -> {cust1 under
/// isp1}) through random op schedules.
class RandomScheduleDriver {
public:
    explicit RandomScheduleDriver(DriverConfig config);

    /// Performs one randomly chosen operation at `now`, publishing into the
    /// repository. Returns what happened.
    const OpLogEntry& step(Time now);

    Repository& repo() { return repo_; }
    consent::AuthorityDirectory& directory() { return dir_; }
    const std::vector<OpLogEntry>& log() const { return log_; }
    std::vector<ResourceCert> trustAnchors() const;

    /// True if any op so far whacked `rcUri` without consent.
    bool wasUnilaterallyWhacked(const std::string& rcUri) const;

private:
    consent::Authority* randomLiveAuthority(bool allowRoot);
    void record(Time now, std::string description, bool adversarial,
                std::vector<std::string> victims = {});
    /// Advances an in-flight key rollover (step 2 / step 3 once ts has
    /// elapsed). Returns true if it consumed this tick.
    bool continueRollover(Time now);

    struct RolloverInFlight {
        std::string parent;
        std::string child;
        int phase = 1;  // 1 = step1 done, 2 = step2 done
        Time lastStepAt = 0;
    };

    DriverConfig config_;
    Rng rng_;
    Repository repo_;
    consent::AuthorityDirectory dir_;
    std::vector<OpLogEntry> log_;
    int roaCounter_ = 0;
    int childCounter_ = 0;
    std::optional<RolloverInFlight> rollover_;
};

// ---------------------------------------------------------------------------
// Scripted attacks from §5.6.

struct CounterexampleResult {
    /// Alarms raised by a relying party running the FULL §5.4 procedures.
    std::size_t alarmsWithIntermediateChecks = 0;
    /// Alarms raised by a naive relying party that diffs only its previous
    /// and current states (no intermediate-state reconstruction).
    std::size_t alarmsWithoutIntermediateChecks = 0;
    /// Alarm log of the full relying party (for inspection).
    std::vector<rp::Alarm> alarms;
};

/// Counterexample 1: authority X alternates a child RC between Y and a
/// broadened Y'; Alice syncs only at odd steps. Without intermediate-state
/// checking she never notices the un-consented narrowing Y' -> Y.
CounterexampleResult runCounterexample1(std::uint64_t seed);

/// Counterexample 2: X logs an oversized (invalid) child; the manifest
/// "logs an invalid object" and must trigger an alarm even though the
/// object later becomes valid when X is broadened.
CounterexampleResult runCounterexample2(std::uint64_t seed);

}  // namespace rpkic::sim
