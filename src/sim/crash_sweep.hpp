// Exhaustive crash-point sweep over the durable relying-party store.
//
// The durable store's contract (rp/durable_store.hpp) is that recovery
// after a crash at ANY instruction yields exactly the pre-transaction or
// the post-transaction committed state — never a mixture. An argument to
// that effect lives in docs/DURABILITY.md; this harness *proves* it for a
// concrete workload by enumeration:
//
//  1. Reference run: a relying party syncs `rounds` rounds of a seeded
//     honest world through a SyncEngine with an attached DurableStore on
//     a MemVfs, fault-free. Every committed payload is recorded by its
//     meta (= completed-round count), along with the final serialized
//     state, and MemVfs::opCount() enumerates every mutating VFS
//     operation the workload performs.
//
//  2. For every operation index k in [0, opCount): rerun the identical
//     workload on a fresh MemVfs with a crash armed at k. When the crash
//     fires, reopen the store and assert
//       (a) the recovered payload is byte-identical to one of the
//           reference run's committed payloads — specifically the one
//           whose meta the store reports (pre- or post- the interrupted
//           transaction, nothing else), and
//       (b) after restoring the relying party from the recovered bytes
//           and resuming, the run converges: its final serialized state
//           is byte-identical to the never-crashed reference.
//
// Delivery faults are deliberately absent (the chaos soak owns those);
// the sweep isolates durability. Small rounds/checkpointEvery keep the
// op space tight while still crossing several WAL appends, fsyncs, and
// full checkpoint folds (write-temp, sync, rename, WAL reset, cleanup).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight/postmortem.hpp"
#include "obs/flight/recorder.hpp"
#include "obs/obs.hpp"

namespace rpkic::sim {

struct SweepConfig {
    std::uint64_t seed = 1;
    /// Simulated sync rounds per run (one commit per round).
    std::uint32_t rounds = 6;
    /// Store checkpoint cadence; small values make the sweep crash inside
    /// checkpoint folds, not just WAL appends.
    std::uint32_t checkpointEvery = 2;
    /// Driver misbehaviour probability (nonzero worlds exercise recovery
    /// of alarm logs and consent state, not just quiet caches).
    double adversarialProbability = 0.15;
    /// Metrics registry; nullptr = run-local (see SoakConfig::registry).
    obs::Registry* registry = nullptr;
    /// Flight recorder; nullptr = run-local (see SoakConfig::recorder).
    obs::FlightRecorder* recorder = nullptr;
};

struct SweepResult {
    std::uint64_t crashPoints = 0;    ///< VFS operations enumerated
    std::uint64_t crashesFired = 0;   ///< injected crashes observed
    std::uint64_t recoveredPre = 0;   ///< recoveries to the pre-crash commit
    std::uint64_t recoveredPost = 0;  ///< crash bracketed a durable commit
    std::uint64_t recoveredNone = 0;  ///< crash before any commit was durable
    std::uint64_t tornBytes = 0;      ///< WAL tail bytes recovery discarded
    std::uint64_t roundsResumed = 0;  ///< rounds rerun across all reruns
    bool passed = false;
    std::vector<std::string> violations;  ///< empty iff passed
    /// Postmortem bundles captured at invariant violations (capped; the
    /// sweep's realized crashes are the workload, not a trigger).
    std::vector<obs::CapturedBundle> postmortems;
};

/// Runs the reference workload plus one crashed rerun per VFS operation.
SweepResult runCrashSweep(const SweepConfig& cfg);

}  // namespace rpkic::sim
