#include "sim/crash_sweep.hpp"

#include <map>
#include <optional>
#include <sstream>

#include "rp/durable_store.hpp"
#include "rp/relying_party.hpp"
#include "rp/sync_engine.hpp"
#include "rpki/chaos.hpp"
#include "sim/driver.hpp"
#include "util/vfs.hpp"

namespace rpkic::sim {

namespace {

using rp::DurableStore;
using rp::RelyingParty;
using rp::RpOptions;
using rp::StoreOptions;
using rp::SyncEngine;
using rp::SyncPolicy;

constexpr const char* kStateDir = "sweep-state";

RpOptions sweepRpOptions() {
    return RpOptions{.ts = 4, .tg = 8, .checkIntermediateStates = true};
}

/// What the fault-free reference run produced: one committed payload per
/// meta (= completed-round count) plus the final serialized state.
struct Reference {
    std::map<std::uint64_t, Bytes> committed;
    Bytes finalState;
    std::uint64_t opCount = 0;
};

Reference runReference(const SweepConfig& cfg, obs::Registry* registry) {
    Reference ref;
    DriverConfig driverConfig;
    driverConfig.seed = cfg.seed;
    driverConfig.adversarialProbability = cfg.adversarialProbability;
    driverConfig.authority.manifestLifetime = static_cast<Duration>(cfg.rounds) + 50;
    RandomScheduleDriver driver(driverConfig);
    RepositorySource honest(driver.repo());

    vfs::MemVfs fs(cfg.seed);
    DurableStore store(fs, kStateDir, StoreOptions{cfg.checkpointEvery, "sweep"}, registry);
    store.open();

    RelyingParty alice("sweep", driver.trustAnchors(), sweepRpOptions(), registry);
    SyncEngine engine(alice, honest, SyncPolicy{}, registry);
    engine.attachStore(&store);

    for (std::uint32_t r = 0; r < cfg.rounds; ++r) {
        const Time now = static_cast<Time>(r);
        if (r > 0) driver.step(now);
        engine.syncRound(now);
        // One commit per round: record what recovery is allowed to return.
        ref.committed[store.latestMeta()] = *store.latest();
    }
    ref.finalState = alice.serializeState();
    ref.opCount = fs.opCount();
    return ref;
}

}  // namespace

SweepResult runCrashSweep(const SweepConfig& cfg) {
    RC_OBS_SPAN("sweep.run", "sweep");
    SweepResult result;

    obs::Registry localRegistry;
    obs::Registry* registry = cfg.registry != nullptr ? cfg.registry : &localRegistry;
    obs::FlightRecorder localRecorder;
    obs::FlightRecorder* recorder = cfg.recorder != nullptr ? cfg.recorder : &localRecorder;
    if (cfg.recorder == nullptr) localRecorder.attachMetrics(registry);
    obs::FlightScope sweepScope(recorder, "sweep",
                                "run seed=" + std::to_string(cfg.seed));
    const Reference ref = runReference(cfg, registry);
    result.crashPoints = ref.opCount;

    constexpr std::size_t kMaxBundles = 8;
    const auto violation = [&](std::uint64_t k, const std::string& what) {
        std::ostringstream os;
        os << "crash point " << k << ": " << what;
        result.violations.push_back(os.str());
        obs::flightRecord(recorder, obs::FlightKind::InvariantFail, "sweep", os.str());
        if (result.postmortems.size() < kMaxBundles) {
            obs::CapturedBundle bundle;
            bundle.trigger = "invariant-fail";
            bundle.label = "seed-" + std::to_string(cfg.seed) + "-violation-" +
                           std::to_string(result.violations.size());
            bundle.bytes = obs::buildPostmortem(
                *recorder, registry, bundle.trigger,
                {{"seed", std::to_string(cfg.seed)},
                 {"crash-point", std::to_string(k)},
                 {"violation", os.str()}});
            result.postmortems.push_back(std::move(bundle));
        }
    };

    for (std::uint64_t k = 0; k < ref.opCount; ++k) {
        // Fresh world, fresh filesystem (same seeds: identical behaviour up
        // to the crash), fresh run-local registry (rerun metrics are noise).
        obs::Registry rerunRegistry;
        DriverConfig driverConfig;
        driverConfig.seed = cfg.seed;
        driverConfig.adversarialProbability = cfg.adversarialProbability;
        driverConfig.authority.manifestLifetime = static_cast<Duration>(cfg.rounds) + 50;
        RandomScheduleDriver driver(driverConfig);
        RepositorySource honest(driver.repo());

        vfs::MemVfs fs(cfg.seed);
        std::optional<DurableStore> store;
        store.emplace(fs, kStateDir, StoreOptions{cfg.checkpointEvery, "sweep"},
                      &rerunRegistry);
        store->open();

        std::optional<RelyingParty> alice;
        alice.emplace("sweep", driver.trustAnchors(), sweepRpOptions(), &rerunRegistry);
        std::optional<SyncEngine> engine;
        engine.emplace(*alice, honest, SyncPolicy{}, &rerunRegistry);
        engine->attachStore(&*store);
        fs.armCrashAt(k);

        bool crashed = false;
        bool abandoned = false;
        for (std::uint32_t r = 0; r < cfg.rounds && !abandoned; ++r) {
            const Time now = static_cast<Time>(r);
            if (r > 0) driver.step(now);
            try {
                engine->syncRound(now);
            } catch (const vfs::CrashInjected&) {
                crashed = true;
                ++result.crashesFired;
                obs::flightRecord(recorder, obs::FlightKind::CrashRealized, "sweep",
                                  "crash-point=" + std::to_string(k) +
                                      " round=" + std::to_string(r));
                // The "process" died at op k. Drop every in-memory object
                // and recover from the surviving bytes.
                engine.reset();
                alice.reset();
                rp::RecoveryReport rec;
                try {
                    rec = store->open();
                } catch (const std::exception& e) {
                    violation(k, std::string("recovery threw: ") + e.what());
                    abandoned = true;
                    break;
                }
                result.tornBytes += rec.tornBytesDiscarded;

                // (a) pre-or-post: the recovered payload must be byte-
                // identical to the reference commit its meta names, and
                // that meta must bracket the interrupted round.
                const std::uint64_t meta = store->latestMeta();
                if (!store->latest().has_value()) {
                    if (r != 0) {
                        violation(k, "no payload recovered after round " + std::to_string(r));
                        abandoned = true;
                        break;
                    }
                    ++result.recoveredNone;
                    alice.emplace("sweep", driver.trustAnchors(), sweepRpOptions(),
                                  &rerunRegistry);
                } else {
                    if (meta != r && meta != r + 1) {
                        violation(k, "recovered meta " + std::to_string(meta) +
                                         " does not bracket crashed round " + std::to_string(r));
                        abandoned = true;
                        break;
                    }
                    const auto it = ref.committed.find(meta);
                    if (it == ref.committed.end() || !(*store->latest() == it->second)) {
                        violation(k, "recovered payload for meta " + std::to_string(meta) +
                                         " is not the reference commit (mixture state?)");
                        abandoned = true;
                        break;
                    }
                    if (meta == r + 1) {
                        ++result.recoveredPost;
                    } else {
                        ++result.recoveredPre;
                    }
                    alice.emplace(RelyingParty::deserializeState(
                        ByteView(store->latest()->data(), store->latest()->size()),
                        /*allowLegacy=*/false, &rerunRegistry));
                }

                // (b) resume: rebuild the engine on the recovered state and
                // rerun the interrupted round if its commit was lost.
                engine.emplace(*alice, honest, SyncPolicy{}, &rerunRegistry);
                engine->attachStore(&*store);
                if (store->latestMeta() > 0) engine->resumeAt(store->latestMeta());
                for (const auto& claim : alice->exportManifestClaims()) {
                    engine->seedRegressionFloor(claim.pointUri, claim.number);
                }
                try {
                    while (engine->round() <= r) {
                        ++result.roundsResumed;
                        engine->syncRound(now);
                    }
                } catch (const std::exception& e) {
                    violation(k, std::string("resume threw: ") + e.what());
                    abandoned = true;
                    break;
                }
            } catch (const std::exception& e) {
                violation(k, std::string("exception escaped round ") + std::to_string(r) +
                                 ": " + e.what());
                abandoned = true;
                break;
            }
        }
        if (abandoned) continue;
        if (!crashed) {
            violation(k, "armed crash never fired (op space shrank?)");
            continue;
        }
        // Convergence: the crashed-and-resumed run must end byte-identical
        // to the never-crashed reference.
        if (!(alice->serializeState() == ref.finalState)) {
            violation(k, "resumed run diverged from the never-crashed reference");
        }
    }

    result.passed = result.violations.empty();
    return result;
}

}  // namespace rpkic::sim
