// Chaos soak harness over the relying-party pipeline.
//
// Runs the randomized authority-hierarchy driver (sim/driver.hpp) with a
// seeded FaultPlan injected between the repository and a SyncEngine-backed
// relying party, and checks robustness invariants every round against a
// fault-free "twin" relying party syncing the same honest world:
//
//  I1  no exception escapes the sync pipeline;
//  I2  no fabrication from fresh data: a ROA the chaotic relying party
//      holds valid that was never valid for the fault-free twin must sit
//      behind a delivery chain that is visibly stale or lagging the twin
//      (serve-stale pins can assemble mosaic states; §5.3.2 bounds that
//      exposure with manifest expiry — from current data, never);
//  I3  graceful degradation is flagged: a retained ROA the twin no longer
//      holds valid must sit behind a stale or lagging chain (§5.3.2
//      "revert to an older set" is visible, not silent);
//  I4  no silent takedown (Theorem 5.1 status oracle): an RC that was
//      valid and is now NoLongerValid had a .dead consent, a
//      unilateral-revocation alarm, or a rollover successor somewhere on
//      its cached issuer chain (subtree invalidations name the topmost
//      victim);
//  I5  Table-7 accountability classes hold for every alarm (missing
//      information is never accountable and never names a perpetrator;
//      invalid-syntax and child-too-broad are always accountable; every
//      accountable alarm names its perpetrator);
//  I6  chaos fabricates no evidence: with an all-honest driver, the
//      chaotic relying party raises no accountable alarms at all;
//  I7  the twin and the chaotic relying party live in the same world: the
//      periodic global consistency check between them never raises an
//      *accountable* inconsistency (Theorems 5.2/5.3 under faults).
//
// With `crashEvery > 0` the soak additionally runs a kill/restart loop
// over the durable store (rp/durable_store.hpp): the chaotic relying
// party's state is commit()ted after every round, a crash is periodically
// injected into the store's VFS mid-commit, and the "process" — relying
// party plus sync engine — is destroyed and rebuilt from the surviving
// bytes. Two extra invariants then apply:
//
//  I8  recovery round-trips exactly: the payload the reopened store
//      returns deserializes, and re-serializing the restored relying
//      party reproduces it byte for byte;
//  I9  a crashed incarnation resumes: the restarted engine reruns the
//      interrupted round and the soak converges under I1-I7 exactly as
//      scheduled (the same fault plan drives both incarnations).
//
// A failing run returns its FaultPlan; `rpkic-soak --plan FILE` replays it
// and reproduces the identical alarm/invariant outcome (crash schedule
// included — the plan carries crashEvery).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/flight/postmortem.hpp"
#include "obs/flight/recorder.hpp"
#include "obs/obs.hpp"
#include "obs/serve/introspect.hpp"
#include "rpki/chaos.hpp"
#include "rp/durable_store.hpp"
#include "rp/sync_engine.hpp"
#include "serve/epoch.hpp"
#include "sim/driver.hpp"
#include "util/vfs.hpp"

namespace rpkic::sim {

struct SoakConfig {
    std::uint64_t seed = 1;
    std::uint32_t rounds = 40;
    /// Retries after the first attempt (SyncPolicy.maxAttempts = budget+1).
    std::uint32_t retryBudget = 2;
    /// Per-point per-round probability that a fault is scheduled.
    double faultRate = 0.35;
    /// Driver misbehaviour probability (0 = all-honest authorities, which
    /// arms invariant I6).
    double adversarialProbability = 0.15;
    /// Serve-stale pins reach at most this many rounds back.
    std::uint64_t stallHorizon = 8;
    /// Twin <-> chaotic global consistency check cadence (rounds).
    std::uint32_t globalCheckEvery = 5;
    /// Metrics registry the soak's engines record into. nullptr means a
    /// registry local to the run (each soak starts from zero counters, so
    /// repeated soaks in one process never bleed telemetry into each
    /// other and same-seed runs dump byte-identical expositions).
    obs::Registry* registry = nullptr;
    /// Kill/restart cadence: every `crashEvery` rounds a crash is armed
    /// inside the durable store's commit path and the chaotic relying
    /// party + engine are rebuilt from the recovered bytes. 0 disables
    /// the durability layer entirely (no store attached).
    std::uint32_t crashEvery = 0;
    /// Filesystem the durable store runs on. nullptr with crashEvery > 0
    /// means an internal MemVfs seeded from `seed` (deterministic torn
    /// writes). A DiskVfs here turns crash points into plain
    /// restart-at-round-boundary kills (real disks cannot be crashed
    /// mid-instruction from userspace).
    vfs::Vfs* stateVfs = nullptr;
    /// Directory for the store's WAL + checkpoints.
    std::string stateDir = "soak-state";
    /// Flight recorder for the run. nullptr means a recorder local to the
    /// run (same rationale as `registry`: postmortem bundles are then
    /// byte-identical across same-seed runs). Alarm/commit hooks also tee
    /// into the enabled global recorder for /flightz either way.
    obs::FlightRecorder* recorder = nullptr;
    /// Live /statusz rows (seed, round, alarms, store lsn) are published
    /// here under "soak/seed-<seed>/...". nullptr disables publication.
    obs::StatusBoard* status = nullptr;
    /// Test/CI hook: append one synthetic invariant violation at the end
    /// of the run, so the postmortem-capture path fires deterministically
    /// even on seeds that pass.
    bool forceInvariantFail = false;
    /// Serving-plane epoch publication: every committed round of the
    /// chaotic engine is published here as an RTR epoch (rounds redone
    /// after a crash are deduplicated, so the serial sequence is gapless
    /// and identical to a crash-free run). nullptr with captureEpochs
    /// true uses an EpochStore local to the run.
    serve::EpochStore* rtrStore = nullptr;
    /// Accumulate canonical epoch dump lines (epochDumpLine) in
    /// SoakResult::epochDump — the thread-count byte-identity artifact.
    bool captureEpochs = false;
    /// Called after each epoch publication (tools hook RtrServer::notify
    /// here to fan Serial Notify out to connected caches).
    std::function<void()> onEpochPublished;
};

/// Reconstructs the configuration a plan was generated under, so replays
/// run the identical experiment.
SoakConfig configFromPlan(const FaultPlan& plan);

struct SoakStats {
    std::uint64_t faultsScheduled = 0;     ///< plan entries
    std::uint64_t faultApplications = 0;   ///< fault hits across attempts
    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t faultsAbsorbed = 0;      ///< healed by retry, no alarm
    std::uint64_t pointRoundsFailed = 0;   ///< budget exhausted
    std::uint32_t maxStaleStreak = 0;      ///< worst consecutive failed rounds
    std::uint64_t recoveries = 0;
    double meanRecoveryRounds = 0.0;       ///< mean failed-streak before recovery
    std::uint64_t alarms = 0;              ///< chaotic relying party, total
    std::uint64_t accountableAlarms = 0;
    std::uint64_t twinAlarms = 0;          ///< fault-free baseline
    std::size_t validRoasFinal = 0;
    std::size_t twinValidRoasFinal = 0;
    /// Rounds where every point was delivered yet the chaotic and twin
    /// valid-ROA states differ (lag diagnostics; not an invariant).
    std::uint64_t divergentCleanRounds = 0;
    // --- durability (crashEvery > 0) ---
    std::uint64_t crashes = 0;            ///< injected kills survived
    std::uint64_t storeCommits = 0;       ///< rounds durably committed
    std::uint64_t storeRecoveries = 0;    ///< successful open() recoveries
    std::uint64_t storeTornBytes = 0;     ///< WAL tail bytes crashes tore off
    std::uint64_t roundsRedone = 0;       ///< rounds rerun after a restart
};

struct SoakResult {
    std::uint64_t seed = 0;
    bool passed = false;
    std::vector<std::string> violations;  ///< empty iff passed
    FaultPlan plan;                       ///< replayable schedule
    SoakStats stats;
    /// The chaotic engine's per-round sync reports (scoreboard data:
    /// delivered/failed/retries/alarms per round).
    std::vector<rp::SyncReport> rounds;
    /// Postmortem bundles captured when an invariant failed or a crash
    /// was realized (one per trigger; deterministic bytes per seed).
    std::vector<obs::CapturedBundle> postmortems;
    /// Canonical epoch dump (one line per published epoch; "" unless
    /// SoakConfig::captureEpochs). Byte-identical per seed at every
    /// thread count.
    std::string epochDump;
};

/// Runs one soak: generates a FaultPlan from cfg.seed round by round (so
/// faults target publication points that actually exist as the simulated
/// hierarchy evolves) and checks invariants I1-I7.
SoakResult runSoak(const SoakConfig& cfg);

/// Replays a serialized plan: no generation, identical outcome.
/// `registry` overrides the run-local metrics registry (see SoakConfig);
/// `stateVfs`/`stateDir` override the durable store's backing filesystem
/// when the plan carries a crashEvery cadence (nullptr = internal MemVfs,
/// which reproduces the generating run's crash points bit-identically).
SoakResult runSoakWithPlan(const FaultPlan& plan, obs::Registry* registry = nullptr,
                           vfs::Vfs* stateVfs = nullptr,
                           const std::string& stateDir = "soak-state");

/// Replay with a full config: plan-derived fields (seed, rounds, budgets,
/// crash cadence) come from the plan; everything else — registry, state
/// backend, status board, epoch capture / RTR store wiring — from
/// `overrides`.
SoakResult runSoakWithPlan(const FaultPlan& plan, const SoakConfig& overrides);

}  // namespace rpkic::sim
