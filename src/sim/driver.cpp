#include "sim/driver.hpp"

#include <algorithm>

#include "util/errors.hpp"

namespace rpkic::sim {

using consent::Authority;
using consent::AuthorityDirectory;

namespace {

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

/// The n-th /24 inside `base` (wrapping within the base's span).
IpPrefix nthSub24(const IpPrefix& base, int n) {
    const std::uint64_t span = static_cast<std::uint64_t>(base.addressCount()) >> 8;  // /24 blocks
    const std::uint64_t index = span == 0 ? 0 : static_cast<std::uint64_t>(n) % span;
    const std::uint32_t addr =
        static_cast<std::uint32_t>(base.firstAddress().toU64() + (index << 8));
    return IpPrefix::v4(addr, 24);
}

std::vector<std::string> subtreeUris(const Authority& a) {
    std::vector<std::string> out{a.cert().uri};
    for (const Authority* c : a.children()) {
        const auto sub = subtreeUris(*c);
        out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
}

}  // namespace

RandomScheduleDriver::RandomScheduleDriver(DriverConfig config)
    : config_(config), rng_(config.seed), dir_(config.seed, config.authority) {
    Authority& rir = dir_.createTrustAnchor(
        "rir", ResourceSet::ofPrefixes({pfx("10.0.0.0/8"), pfx("20.0.0.0/8")}), repo_, 0);
    Authority& isp1 =
        dir_.createChild(rir, "isp1", ResourceSet::ofPrefixes({pfx("10.0.0.0/9")}), repo_, 0);
    dir_.createChild(rir, "isp2", ResourceSet::ofPrefixes({pfx("10.128.0.0/9")}), repo_, 0);
    dir_.createChild(isp1, "cust1", ResourceSet::ofPrefixes({pfx("10.0.0.0/16")}), repo_, 0);
    record(0, "initial hierarchy", false);
}

std::vector<ResourceCert> RandomScheduleDriver::trustAnchors() const {
    return {dir_.find("rir")->cert()};
}

Authority* RandomScheduleDriver::randomLiveAuthority(bool allowRoot) {
    std::vector<Authority*> live;
    for (const auto& name : dir_.names()) {
        Authority& a = dir_.get(name);
        if (a.isRevoked() || a.hasConsentedToDeath() || !a.hasPublished()) continue;
        if (!allowRoot && a.parent() == nullptr) continue;
        if (a.name().find("#mirror") != std::string::npos) continue;
        live.push_back(&a);
    }
    if (live.empty()) return nullptr;
    return live[static_cast<std::size_t>(rng_.nextBelow(live.size()))];
}

void RandomScheduleDriver::record(Time now, std::string description, bool adversarial,
                                  std::vector<std::string> victims) {
    log_.push_back({now, std::move(description), adversarial, std::move(victims)});
}

bool RandomScheduleDriver::continueRollover(Time now) {
    if (!rollover_.has_value()) return false;
    if (now < rollover_->lastStepAt + config_.authority.ts) return false;
    try {
        Authority& parent = dir_.get(rollover_->parent);
        Authority& child = dir_.get(rollover_->child);
        if (child.isRevoked() || parent.isRevoked()) {
            record(now, "rollover abandoned: participant revoked", false);
            rollover_.reset();
            return true;
        }
        if (rollover_->phase == 1) {
            child.rolloverStep2Switch(repo_, now);
            rollover_->phase = 2;
            rollover_->lastStepAt = now;
            record(now, child.name() + " completes rollover step 2 (key switch)", false);
        } else {
            parent.rolloverStep3Finish(rollover_->child, repo_, now);
            record(now, parent.name() + " completes rollover step 3 (.roll published)",
                   false);
            rollover_.reset();
        }
        return true;
    } catch (const Error& e) {
        record(now, std::string("rollover abandoned: ") + e.what(), false);
        rollover_.reset();
        return true;
    }
}

const OpLogEntry& RandomScheduleDriver::step(Time now) {
    if (continueRollover(now)) return log_.back();
    const bool adversarial = rng_.nextBool(config_.adversarialProbability);
    try {
        if (adversarial) {
            // Pick an authority with at least one child and whack it.
            Authority* parent = randomLiveAuthority(/*allowRoot=*/true);
            if (parent != nullptr && !parent->children().empty()) {
                Authority* child = parent->children()[static_cast<std::size_t>(
                    rng_.nextBelow(parent->children().size()))];
                if (rng_.nextBool(0.5)) {
                    std::vector<std::string> victims = subtreeUris(*child);
                    const std::string desc =
                        parent->name() + " unilaterally revokes " + child->name();
                    parent->unsafeUnilateralRevokeChild(child->name(), repo_, now);
                    record(now, desc, true, std::move(victims));
                    return log_.back();
                }
                if (!child->cert().resources.isInherit()) {
                    // Narrow away half the child's space without consent.
                    const auto& v4 = child->cert().resources.v4();
                    if (!v4.empty()) {
                        const auto iv = v4.intervals().front();
                        ResourceSet removed;
                        removed.addRangeV4(iv.lo, iv.lo + (iv.hi - iv.lo) / 2);
                        const std::string desc =
                            parent->name() + " unilaterally narrows " + child->name();
                        parent->unsafeUnilateralNarrowChild(child->name(), removed, repo_, now);
                        record(now, desc, true, {child->cert().uri});
                        return log_.back();
                    }
                }
            }
            record(now, "adversarial op skipped (no target)", false);
            return log_.back();
        }

        // Legal operation.
        const int op = static_cast<int>(rng_.nextBelow(7));
        Authority* a = randomLiveAuthority(/*allowRoot=*/true);
        if (a == nullptr) {
            record(now, "no live authority", false);
            return log_.back();
        }
        switch (op) {
            case 0: {  // issue a ROA
                if (a->cert().resources.isInherit() || a->cert().resources.v4().empty()) break;
                const auto iv = a->cert().resources.v4().intervals().front();
                const IpPrefix base =
                    IpPrefix::v4(static_cast<std::uint32_t>(iv.lo), 16).canonicalized();
                const IpPrefix p = nthSub24(base, ++roaCounter_);
                a->issueRoa("roa" + std::to_string(roaCounter_),
                            static_cast<Asn>(64500 + roaCounter_), {{p, 24}}, repo_, now);
                record(now, a->name() + " issues ROA for " + p.str(), false);
                return log_.back();
            }
            case 1: {  // delete a ROA
                const auto labels = a->roaLabels();
                if (labels.empty()) break;
                const std::string label =
                    labels[static_cast<std::size_t>(rng_.nextBelow(labels.size()))];
                a->deleteRoa(label, repo_, now);
                record(now, a->name() + " deletes ROA " + label, false);
                return log_.back();
            }
            case 2: {  // broaden a child
                if (a->children().empty()) break;
                Authority* child = a->children()[static_cast<std::size_t>(
                    rng_.nextBelow(a->children().size()))];
                if (child->cert().resources.isInherit()) break;
                // Carve a fresh /20 out of 20.0.0.0/8 (only the root holds
                // it, so only root-issued children stay covered).
                if (a->parent() != nullptr) break;
                ResourceSet added;
                const std::uint32_t base =
                    0x14000000u + (static_cast<std::uint32_t>(++childCounter_) << 12);
                added.addPrefix(IpPrefix::v4(base, 20));
                a->broadenChild(child->name(), added, repo_, now);
                record(now, a->name() + " broadens " + child->name(), false);
                return log_.back();
            }
            case 3: {  // consensual revocation of a leaf
                if (a->children().empty()) break;
                Authority* child = a->children()[static_cast<std::size_t>(
                    rng_.nextBelow(a->children().size()))];
                const auto deads = dir_.collectRevocationConsent(*child);
                const std::string desc =
                    a->name() + " revokes " + child->name() + " WITH consent";
                a->revokeChild(child->name(), deads, repo_, now);
                record(now, desc, false);
                return log_.back();
            }
            case 4: {  // create a replacement child
                if (a->parent() != nullptr) break;  // only under the root, space is known
                const std::string name = "org" + std::to_string(++childCounter_);
                const std::uint32_t base =
                    0x14800000u + (static_cast<std::uint32_t>(childCounter_) << 12);
                dir_.createChild(*a, name,
                                 ResourceSet::ofPrefixes({IpPrefix::v4(base, 20)}), repo_, now);
                record(now, a->name() + " creates child " + name, false);
                return log_.back();
            }
            case 5: {  // heartbeat refresh
                a->refreshManifest(repo_, now);
                record(now, a->name() + " refreshes its manifest", false);
                return log_.back();
            }
            case 6: {  // begin a key rollover (continues over later steps)
                if (rollover_.has_value()) break;
                if (a->parent() == nullptr || a->isRevoked()) break;
                Authority* parent = a->parent();
                a->stageNewKey(repo_, now);
                parent->rolloverStep1IssueSuccessor(a->name(), repo_, now);
                rollover_ = RolloverInFlight{parent->name(), a->name(), 1, now};
                record(now, a->name() + " begins key rollover (step 1)", false);
                return log_.back();
            }
            default: break;
        }
        record(now, "op skipped (preconditions unmet)", false);
        return log_.back();
    } catch (const KeyExhaustedError&) {
        record(now, "key exhausted; operation skipped (rollover would be scheduled)", false);
        return log_.back();
    } catch (const Error& e) {
        // Precondition races (e.g. an op drawn against a child revoked
        // earlier in the schedule). Authority operations verify requireLive()
        // before mutating, so a throw here left no partial state; long soak
        // schedules must survive it.
        record(now, std::string("operation skipped: ") + e.what(), false);
        return log_.back();
    }
}

bool RandomScheduleDriver::wasUnilaterallyWhacked(const std::string& rcUri) const {
    for (const auto& entry : log_) {
        if (std::find(entry.unconsentedVictims.begin(), entry.unconsentedVictims.end(), rcUri) !=
            entry.unconsentedVictims.end()) {
            return true;
        }
    }
    return false;
}

// ===========================================================================
// Counterexamples (§5.6)

CounterexampleResult runCounterexample1(std::uint64_t seed) {
    // X issues Y; then alternates Y' (broadened) and Y (narrowed back,
    // without consent). Alice syncs only when Y is current.
    Repository repo;
    consent::AuthorityOptions opts{.ts = 10, .signerHeight = 6, .manifestLifetime = 100};
    AuthorityDirectory dir(seed, opts);
    SimClock clock;
    Authority& x = dir.createTrustAnchor("x", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                         repo, clock.now());
    dir.createChild(x, "y", ResourceSet::ofPrefixes({pfx("10.0.0.0/16")}), repo, clock.now());

    rp::RelyingParty alice("alice", {x.cert()},
                           rp::RpOptions{.ts = 10, .tg = 20, .checkIntermediateStates = true});
    rp::RelyingParty naive("naive", {x.cert()},
                           rp::RpOptions{.ts = 10, .tg = 20, .checkIntermediateStates = false});
    alice.sync(repo.snapshot(), clock.now());
    naive.sync(repo.snapshot(), clock.now());

    const ResourceSet broadened =
        ResourceSet::ofPrefixes({pfx("10.0.0.0/16"), pfx("10.99.0.0/16")});
    const ResourceSet narrow = ResourceSet::ofPrefixes({pfx("10.0.0.0/16")});
    for (int round = 0; round < 3; ++round) {
        clock.advance(1);
        x.unsafeOverwriteChild("y", broadened, repo, clock.now());  // even state: Y'
        clock.advance(1);
        x.unsafeOverwriteChild("y", narrow, repo, clock.now());  // odd state: Y (no .dead!)
        // Alice syncs only at odd states.
        alice.sync(repo.snapshot(), clock.now());
        naive.sync(repo.snapshot(), clock.now());
    }

    CounterexampleResult out;
    out.alarmsWithIntermediateChecks =
        alice.alarms().ofType(rp::AlarmType::UnilateralRevocation).size();
    out.alarmsWithoutIntermediateChecks =
        naive.alarms().ofType(rp::AlarmType::UnilateralRevocation).size();
    out.alarms = alice.alarms().all();
    return out;
}

CounterexampleResult runCounterexample2(std::uint64_t seed) {
    // X (small block) logs an oversized child Y; later X is broadened so Y
    // becomes valid. Relying parties that do not alarm on invalid logged
    // objects end up in mirror worlds depending on when they synced.
    Repository repo;
    consent::AuthorityOptions opts{.ts = 10, .signerHeight = 6, .manifestLifetime = 100};
    AuthorityDirectory dir(seed, opts);
    SimClock clock;
    Authority& root = dir.createTrustAnchor(
        "root", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}), repo, clock.now());
    Authority& x =
        dir.createChild(root, "x", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}), repo,
                        clock.now());

    rp::RelyingParty alice("alice", {root.cert()},
                           rp::RpOptions{.ts = 10, .tg = 20, .checkIntermediateStates = true});
    alice.sync(repo.snapshot(), clock.now());

    // t1: X logs an oversized child Y (10.0.0.0/12 > X's /16).
    clock.advance(1);
    const PublicKey yKey = Signer::generate(seed ^ 0x5a5a, 4).publicKey();
    x.unsafeIssueOversizedChild("y", yKey, ResourceSet::ofPrefixes({pfx("10.0.0.0/12")}), repo,
                                clock.now());
    alice.sync(repo.snapshot(), clock.now());

    CounterexampleResult out;
    out.alarmsWithIntermediateChecks = alice.alarms().ofType(rp::AlarmType::ChildTooBroad).size();
    // A relying party whose first sync happens after X gets broadened sees
    // Y as valid and never alarms — the mirror world the rule prevents.
    clock.advance(1);
    root.broadenChild("x", ResourceSet::ofPrefixes({pfx("10.0.0.0/12")}), repo, clock.now());
    rp::RelyingParty bob("bob", {root.cert()},
                         rp::RpOptions{.ts = 10, .tg = 20, .checkIntermediateStates = true});
    bob.sync(repo.snapshot(), clock.now());
    out.alarmsWithoutIntermediateChecks =
        bob.alarms().ofType(rp::AlarmType::ChildTooBroad).size();
    out.alarms = alice.alarms().all();
    return out;
}

}  // namespace rpkic::sim
