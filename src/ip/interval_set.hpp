// Sets of integers represented as sorted, disjoint, inclusive intervals.
//
// This is the workhorse of the paper's §4.1 detector: "we represent
// [triangles] using interval trees ... we can use interval trees to
// efficiently perform unions, intersections, and complements of sets of
// triangles". A sorted interval vector gives the same O(n log n) bounds
// with much better constants than a pointer-based tree.
//
// Intervals are inclusive [lo, hi] so that a full address space
// (e.g. [0, 2^128-1]) is representable without overflow.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/errors.hpp"

namespace rpkic {

template <typename T>
struct Interval {
    T lo{};
    T hi{};  // inclusive

    friend bool operator==(const Interval&, const Interval&) = default;
};

/// An immutable-style ordered set of T, stored as disjoint inclusive
/// intervals in ascending order. T must behave like an unsigned integer
/// (U128 or std::uint64_t).
template <typename T>
class IntervalSet {
public:
    IntervalSet() = default;

    static IntervalSet single(T lo, T hi) {
        if (hi < lo) throw UsageError("interval hi < lo");
        IntervalSet s;
        s.intervals_.push_back({lo, hi});
        return s;
    }

    bool empty() const { return intervals_.empty(); }
    std::size_t intervalCount() const { return intervals_.size(); }
    const std::vector<Interval<T>>& intervals() const { return intervals_; }

    bool contains(T x) const {
        auto it = std::upper_bound(intervals_.begin(), intervals_.end(), x,
                                   [](T v, const Interval<T>& iv) { return v < iv.lo; });
        if (it == intervals_.begin()) return false;
        --it;
        return !(it->hi < x);
    }

    /// True iff [lo, hi] is entirely inside one stored interval.
    bool containsRange(T lo, T hi) const {
        auto it = std::upper_bound(intervals_.begin(), intervals_.end(), lo,
                                   [](T v, const Interval<T>& iv) { return v < iv.lo; });
        if (it == intervals_.begin()) return false;
        --it;
        return !(it->hi < hi) && !(lo < it->lo);
    }

    /// True iff [lo, hi] intersects the set.
    bool intersectsRange(T lo, T hi) const {
        auto it = std::upper_bound(intervals_.begin(), intervals_.end(), hi,
                                   [](T v, const Interval<T>& iv) { return v < iv.lo; });
        if (it == intervals_.begin()) return false;
        --it;
        return !(it->hi < lo);
    }

    /// Builds a set from arbitrary (possibly overlapping, unordered)
    /// intervals in O(n log n). Preferred over repeated insert() for bulk
    /// construction, e.g. when the detector ingests every ROA of a state.
    static IntervalSet fromIntervals(std::vector<Interval<T>> raw) {
        std::sort(raw.begin(), raw.end(),
                  [](const Interval<T>& a, const Interval<T>& b) { return a.lo < b.lo; });
        IntervalSet out;
        out.intervals_.reserve(raw.size());
        for (const auto& iv : raw) {
            if (iv.hi < iv.lo) throw UsageError("interval hi < lo");
            if (!out.intervals_.empty()) {
                auto& back = out.intervals_.back();
                const bool mergeable =
                    !(back.hi < iv.lo) || (!(back.hi == maxValue()) && back.hi + T{1} == iv.lo);
                if (mergeable) {
                    back.hi = std::max(back.hi, iv.hi);
                    continue;
                }
            }
            out.intervals_.push_back(iv);
        }
        return out;
    }

    /// Adds [lo, hi], merging with adjacent/overlapping intervals.
    /// O(log n + merged) via binary search.
    void insert(T lo, T hi) {
        if (hi < lo) throw UsageError("interval hi < lo");
        // First interval whose hi >= lo (candidates for overlap), then step
        // back once to catch adjacency at lo-1 (guarding lo == 0 underflow).
        auto first = std::lower_bound(intervals_.begin(), intervals_.end(), lo,
                                      [](const Interval<T>& iv, T v) { return iv.hi < v; });
        if (first != intervals_.begin()) {
            auto prev = first - 1;
            if (!(lo == T{0}) && prev->hi == lo - T{1}) first = prev;
        }
        auto last = first;
        T newLo = lo;
        T newHi = hi;
        while (last != intervals_.end()) {
            const T l = last->lo;
            const bool mergeable = !(hi < l) || (!(hi == maxValue()) && l == hi + T{1});
            if (!mergeable) break;
            newLo = std::min(newLo, last->lo);
            newHi = std::max(newHi, last->hi);
            ++last;
        }
        if (first == last) {
            intervals_.insert(first, {newLo, newHi});
        } else {
            *first = {newLo, newHi};
            intervals_.erase(first + 1, last);
        }
    }

    /// Set union (linear merge).
    IntervalSet unionWith(const IntervalSet& other) const {
        IntervalSet out;
        auto a = intervals_.begin();
        auto b = other.intervals_.begin();
        auto take = [&out](const Interval<T>& iv) {
            if (!out.intervals_.empty()) {
                auto& back = out.intervals_.back();
                const bool mergeable =
                    !(back.hi < iv.lo) || (!(back.hi == maxValue()) && back.hi + T{1} == iv.lo);
                if (mergeable) {
                    back.hi = std::max(back.hi, iv.hi);
                    return;
                }
            }
            out.intervals_.push_back(iv);
        };
        while (a != intervals_.end() && b != other.intervals_.end()) {
            if (a->lo < b->lo || (a->lo == b->lo && a->hi < b->hi)) take(*a++);
            else take(*b++);
        }
        while (a != intervals_.end()) take(*a++);
        while (b != other.intervals_.end()) take(*b++);
        return out;
    }

    /// Set intersection (linear sweep).
    IntervalSet intersect(const IntervalSet& other) const {
        IntervalSet out;
        auto a = intervals_.begin();
        auto b = other.intervals_.begin();
        while (a != intervals_.end() && b != other.intervals_.end()) {
            const T lo = std::max(a->lo, b->lo);
            const T hi = std::min(a->hi, b->hi);
            if (!(hi < lo)) out.intervals_.push_back({lo, hi});
            if (a->hi < b->hi) ++a;
            else ++b;
        }
        return out;
    }

    /// Set difference: elements of *this not in `other` (linear sweep).
    IntervalSet subtract(const IntervalSet& other) const {
        IntervalSet out;
        auto b = other.intervals_.begin();
        for (const auto& iv : intervals_) {
            T cursor = iv.lo;
            bool exhausted = false;
            while (b != other.intervals_.end() && b->hi < cursor) ++b;
            auto bb = b;
            while (!exhausted && bb != other.intervals_.end() && !(iv.hi < bb->lo)) {
                if (cursor < bb->lo) out.intervals_.push_back({cursor, bb->lo - T{1}});
                if (iv.hi < bb->hi || iv.hi == bb->hi) {
                    exhausted = true;  // remainder of iv is covered
                } else {
                    cursor = bb->hi + T{1};
                    ++bb;
                }
            }
            if (!exhausted) out.intervals_.push_back({cursor, iv.hi});
        }
        return out;
    }

    /// Number of elements, as double (exact for IPv4-sized sets).
    double countDouble() const {
        double total = 0;
        for (const auto& iv : intervals_) {
            total += elementCount(iv);
        }
        return total;
    }

    /// Exact element count for sets known to fit in 64 bits.
    std::uint64_t countU64() const {
        std::uint64_t total = 0;
        for (const auto& iv : intervals_) {
            if constexpr (requires(T t) { t.toU64(); }) {
                total += (iv.hi - iv.lo).toU64() + 1;
            } else {
                total += static_cast<std::uint64_t>(iv.hi - iv.lo) + 1;
            }
        }
        return total;
    }

    friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

private:
    static constexpr T maxValue() {
        if constexpr (requires { T::max(); }) return T::max();
        else return ~T{0};
    }

    static double elementCount(const Interval<T>& iv) {
        if constexpr (requires(T t) { t.toDouble(); }) {
            return (iv.hi - iv.lo).toDouble() + 1.0;
        } else {
            return static_cast<double>(iv.hi - iv.lo) + 1.0;
        }
    }

    std::vector<Interval<T>> intervals_;
};

}  // namespace rpkic
