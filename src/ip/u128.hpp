// Portable 128-bit unsigned integer, sufficient for IPv6 address
// arithmetic. Implemented in ISO C++ (no __int128 extension) per the
// project's coding guidelines.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace rpkic {

struct U128 {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    constexpr U128() = default;
    constexpr U128(std::uint64_t high, std::uint64_t low) : hi(high), lo(low) {}

    /// Implicit widening from 64-bit, mirroring built-in integer behaviour.
    constexpr U128(std::uint64_t v) : hi(0), lo(v) {}  // NOLINT(google-explicit-constructor)

    constexpr auto operator<=>(const U128&) const = default;

    static constexpr U128 max() { return {~0ULL, ~0ULL}; }

    constexpr U128 operator+(const U128& o) const {
        U128 r{hi + o.hi, lo + o.lo};
        if (r.lo < lo) ++r.hi;
        return r;
    }
    constexpr U128 operator-(const U128& o) const {
        U128 r{hi - o.hi, lo - o.lo};
        if (lo < o.lo) --r.hi;
        return r;
    }
    constexpr U128 operator&(const U128& o) const { return {hi & o.hi, lo & o.lo}; }
    constexpr U128 operator|(const U128& o) const { return {hi | o.hi, lo | o.lo}; }
    constexpr U128 operator^(const U128& o) const { return {hi ^ o.hi, lo ^ o.lo}; }
    constexpr U128 operator~() const { return {~hi, ~lo}; }

    constexpr U128 operator<<(int n) const {
        if (n <= 0) return *this;
        if (n >= 128) return {0, 0};
        if (n >= 64) return {lo << (n - 64), 0};
        return {(hi << n) | (lo >> (64 - n)), lo << n};
    }
    constexpr U128 operator>>(int n) const {
        if (n <= 0) return *this;
        if (n >= 128) return {0, 0};
        if (n >= 64) return {0, hi >> (n - 64)};
        return {hi >> n, (lo >> n) | (hi << (64 - n))};
    }

    U128& operator+=(const U128& o) { return *this = *this + o; }
    U128& operator-=(const U128& o) { return *this = *this - o; }

    constexpr bool isZero() const { return hi == 0 && lo == 0; }

    /// Narrowing access; callers must know the value fits (e.g. IPv4 paths).
    constexpr std::uint64_t toU64() const { return lo; }

    /// Approximate conversion for counting/statistics on IPv6-sized sets.
    double toDouble() const {
        return static_cast<double>(hi) * 18446744073709551616.0 + static_cast<double>(lo);
    }

    std::string hex() const;
};

}  // namespace rpkic
