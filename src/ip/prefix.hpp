// IP prefixes and origin AS numbers — the vocabulary of the RPKI.
//
// An IpPrefix is (family, address, length). The central relation is
// *cover* (paper §2.1): P covers π iff P == π or π is a proper subset of
// the address space of P. E.g. 63.160.0.0/12 covers 63.160.1.0/24.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "ip/u128.hpp"

namespace rpkic {

/// Autonomous-system number.
using Asn = std::uint32_t;

enum class IpFamily : std::uint8_t { v4 = 4, v6 = 6 };

/// Address width in bits for a family (32 or 128).
constexpr int familyBits(IpFamily f) {
    return f == IpFamily::v4 ? 32 : 128;
}

struct IpPrefix {
    IpFamily family = IpFamily::v4;
    U128 addr;           // right-aligned integer value of the network address
    std::uint8_t length = 0;

    auto operator<=>(const IpPrefix&) const = default;

    int bits() const { return familyBits(family); }

    /// True iff the host bits below `length` are all zero (the canonical
    /// form required of prefixes in RPKI objects).
    bool isCanonical() const;

    /// Zeroes the host bits.
    IpPrefix canonicalized() const;

    /// First address of the prefix (== addr for canonical prefixes).
    U128 firstAddress() const;

    /// Last address of the prefix.
    U128 lastAddress() const;

    /// Number of addresses covered, as a double (exact for IPv4).
    double addressCount() const;

    /// Cover relation, paper §2.1: same family, this->length <= p.length,
    /// and p's address lies inside this prefix. Reflexive.
    bool covers(const IpPrefix& p) const;

    /// True if the two prefixes share any address space.
    bool overlaps(const IpPrefix& p) const;

    /// Direct child in the binary prefix tree: bit = 0 -> low half.
    IpPrefix child(int bit) const;

    std::string str() const;

    /// Parses "a.b.c.d/len" or an IPv6 literal with "::" compression plus
    /// "/len". Throws ParseError on malformed input.
    static IpPrefix parse(std::string_view text);

    /// Convenience for tests and generators: IPv4 from a 32-bit value.
    static IpPrefix v4(std::uint32_t addr, int length);

    /// IPv6 from a 128-bit value.
    static IpPrefix v6(U128 addr, int length);
};

/// A BGP route for our purposes (paper §2.2): an IP prefix and the AS that
/// originates it.
struct Route {
    IpPrefix prefix;
    Asn origin = 0;

    auto operator<=>(const Route&) const = default;

    std::string str() const;
};

/// The three route validation states of RFC 6483/6811 (paper §2.2).
enum class RouteValidity : std::uint8_t {
    Valid,    ///< a valid matching ROA exists
    Unknown,  ///< no valid covering ROA exists
    Invalid,  ///< covered by some ROA but no matching ROA
};

std::string_view toString(RouteValidity v);

}  // namespace rpkic
