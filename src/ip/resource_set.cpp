#include "ip/resource_set.hpp"

#include <cstdio>

#include "util/errors.hpp"

namespace rpkic {

ResourceSet ResourceSet::inherit() {
    ResourceSet r;
    r.inherit_ = true;
    return r;
}

ResourceSet ResourceSet::ofPrefixes(std::initializer_list<IpPrefix> prefixes) {
    ResourceSet r;
    for (const auto& p : prefixes) r.addPrefix(p);
    return r;
}

ResourceSet ResourceSet::ofPrefixes(const std::vector<IpPrefix>& prefixes) {
    ResourceSet r;
    for (const auto& p : prefixes) r.addPrefix(p);
    return r;
}

bool ResourceSet::empty() const {
    return !inherit_ && v4_.empty() && v6_.empty() && asns_.empty();
}

void ResourceSet::addPrefix(const IpPrefix& p) {
    if (inherit_) throw UsageError("cannot add resources to an inherit set");
    if (p.family == IpFamily::v4) {
        v4_.insert(p.firstAddress().toU64(), p.lastAddress().toU64());
    } else {
        v6_.insert(p.firstAddress(), p.lastAddress());
    }
}

void ResourceSet::addRangeV4(std::uint64_t lo, std::uint64_t hi) {
    if (inherit_) throw UsageError("cannot add resources to an inherit set");
    v4_.insert(lo, hi);
}

void ResourceSet::addRangeV6(const U128& lo, const U128& hi) {
    if (inherit_) throw UsageError("cannot add resources to an inherit set");
    v6_.insert(lo, hi);
}

void ResourceSet::addAsn(Asn asn) {
    addAsnRange(asn, asn);
}

void ResourceSet::addAsnRange(Asn lo, Asn hi) {
    if (inherit_) throw UsageError("cannot add resources to an inherit set");
    asns_.insert(lo, hi);
}

bool ResourceSet::containsPrefix(const IpPrefix& p) const {
    if (inherit_) throw UsageError("inherit set has no resources of its own");
    if (p.family == IpFamily::v4) {
        return v4_.containsRange(p.firstAddress().toU64(), p.lastAddress().toU64());
    }
    return v6_.containsRange(p.firstAddress(), p.lastAddress());
}

bool ResourceSet::containsAsn(Asn asn) const {
    if (inherit_) throw UsageError("inherit set has no resources of its own");
    return asns_.contains(asn);
}

namespace {
template <typename T>
bool setSubset(const IntervalSet<T>& a, const IntervalSet<T>& b) {
    return a.subtract(b).empty();
}
}  // namespace

bool ResourceSet::subsetOf(const ResourceSet& parent) const {
    if (inherit_) return true;
    if (parent.inherit_) return false;
    return setSubset(v4_, parent.v4_) && setSubset(v6_, parent.v6_) &&
           setSubset(asns_, parent.asns_);
}

bool ResourceSet::overlaps(const ResourceSet& other) const {
    if (inherit_ || other.inherit_) {
        throw UsageError("overlap is undefined for inherit sets; resolve them first");
    }
    return !v4_.intersect(other.v4_).empty() || !v6_.intersect(other.v6_).empty() ||
           !asns_.intersect(other.asns_).empty();
}

ResourceSet ResourceSet::unionWith(const ResourceSet& other) const {
    if (inherit_ || other.inherit_) throw UsageError("cannot union inherit sets");
    ResourceSet r;
    r.v4_ = v4_.unionWith(other.v4_);
    r.v6_ = v6_.unionWith(other.v6_);
    r.asns_ = asns_.unionWith(other.asns_);
    return r;
}

ResourceSet ResourceSet::intersect(const ResourceSet& other) const {
    if (inherit_ || other.inherit_) throw UsageError("cannot intersect inherit sets");
    ResourceSet r;
    r.v4_ = v4_.intersect(other.v4_);
    r.v6_ = v6_.intersect(other.v6_);
    r.asns_ = asns_.intersect(other.asns_);
    return r;
}

ResourceSet ResourceSet::subtract(const ResourceSet& other) const {
    if (inherit_ || other.inherit_) throw UsageError("cannot subtract inherit sets");
    ResourceSet r;
    r.v4_ = v4_.subtract(other.v4_);
    r.v6_ = v6_.subtract(other.v6_);
    r.asns_ = asns_.subtract(other.asns_);
    return r;
}

std::string ResourceSet::str() const {
    if (inherit_) return "{inherit}";
    std::string out = "{";
    bool first = true;
    auto append = [&out, &first](const std::string& piece) {
        if (!first) out += ", ";
        out += piece;
        first = false;
    };
    for (const auto& iv : v4_.intervals()) {
        const auto lo = static_cast<std::uint32_t>(iv.lo);
        const auto hi = static_cast<std::uint32_t>(iv.hi);
        char buf[48];
        std::snprintf(buf, sizeof buf, "%u.%u.%u.%u-%u.%u.%u.%u", (lo >> 24) & 0xff,
                      (lo >> 16) & 0xff, (lo >> 8) & 0xff, lo & 0xff, (hi >> 24) & 0xff,
                      (hi >> 16) & 0xff, (hi >> 8) & 0xff, hi & 0xff);
        append(buf);
    }
    for (const auto& iv : v6_.intervals()) {
        append("v6:" + iv.lo.hex() + "-" + iv.hi.hex());
    }
    for (const auto& iv : asns_.intervals()) {
        if (iv.lo == iv.hi) append("AS" + std::to_string(iv.lo));
        else append("AS" + std::to_string(iv.lo) + "-AS" + std::to_string(iv.hi));
    }
    out += "}";
    return out;
}

const ResourceSet& effectiveResources(const ResourceSet& own,
                                      const ResourceSet& parentEffective) {
    return own.isInherit() ? parentEffective : own;
}

}  // namespace rpkic
