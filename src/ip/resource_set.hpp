// The resource payload of an RPKI certificate: IP address space plus AS
// numbers, with RFC 3779 subset semantics and the "inherit" attribute
// (paper §5.3.1).
//
// Subset checks are *address-range based*, independent of prefix lengths:
// a child holding 10.0.0.0/9 and 10.128.0.0/9 is within a parent holding
// 10.0.0.0/8.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "ip/interval_set.hpp"
#include "ip/prefix.hpp"

namespace rpkic {

class ResourceSet {
public:
    ResourceSet() = default;

    /// The "inherit" resource set: the holder has exactly its issuer's
    /// resources (paper §5.3.1, RFC 6487 §2).
    static ResourceSet inherit();

    static ResourceSet ofPrefixes(std::initializer_list<IpPrefix> prefixes);
    static ResourceSet ofPrefixes(const std::vector<IpPrefix>& prefixes);

    bool isInherit() const { return inherit_; }
    bool empty() const;

    void addPrefix(const IpPrefix& p);
    void addAsn(Asn asn);
    void addAsnRange(Asn lo, Asn hi);

    /// Raw address ranges, used by the decoder and by generators that work
    /// with ranges rather than prefixes.
    void addRangeV4(std::uint64_t lo, std::uint64_t hi);
    void addRangeV6(const U128& lo, const U128& hi);

    bool containsPrefix(const IpPrefix& p) const;
    bool containsAsn(Asn asn) const;

    /// RFC 3779 subset check. An inherit set is a subset of anything (its
    /// effective resources are defined by the parent); nothing but another
    /// inherit set is a subset of an inherit set.
    bool subsetOf(const ResourceSet& parent) const;

    bool overlaps(const ResourceSet& other) const;

    ResourceSet unionWith(const ResourceSet& other) const;
    ResourceSet intersect(const ResourceSet& other) const;
    /// Resources in *this that are not in `other`.
    ResourceSet subtract(const ResourceSet& other) const;

    const IntervalSet<std::uint64_t>& v4() const { return v4_; }
    const IntervalSet<U128>& v6() const { return v6_; }
    const IntervalSet<std::uint64_t>& asns() const { return asns_; }

    /// Total IPv4 addresses held (for overhead statistics).
    std::uint64_t v4AddressCount() const { return v4_.countU64(); }

    friend bool operator==(const ResourceSet&, const ResourceSet&) = default;

    std::string str() const;

private:
    bool inherit_ = false;
    IntervalSet<std::uint64_t> v4_;   // IPv4 addresses as [0, 2^32) integers
    IntervalSet<U128> v6_;            // IPv6 addresses
    IntervalSet<std::uint64_t> asns_; // AS numbers
};

/// Resolves the effective resources of a certificate holding `own` under a
/// parent whose effective resources are `parentEffective`: inherit means
/// "same as parent".
const ResourceSet& effectiveResources(const ResourceSet& own,
                                      const ResourceSet& parentEffective);

}  // namespace rpkic
