#include "ip/prefix.hpp"

#include <charconv>
#include <cstdio>
#include <vector>

#include "util/errors.hpp"

namespace rpkic {

std::string U128::hex() const {
    char buf[36];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(hi), static_cast<unsigned long long>(lo));
    return buf;
}

namespace {

/// Mask with the top `length` bits (of a `bits`-wide address) set.
U128 networkMask(int bits, int length) {
    if (length <= 0) return U128{0, 0};
    // Shift an all-ones value left so only `length` leading bits survive,
    // within a `bits`-wide field that is right-aligned in the U128.
    U128 ones = (bits == 128) ? U128::max() : (U128{0, 1} << bits) - U128{0, 1};
    return (ones >> (bits - length)) << (bits - length);
}

std::uint32_t parseDecimal(std::string_view s, std::uint32_t maxValue, const char* what) {
    std::uint32_t value = 0;
    if (s.empty()) throw ParseError(std::string("empty ") + what);
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc{} || ptr != s.data() + s.size() || value > maxValue) {
        throw ParseError(std::string("bad ") + what + ": '" + std::string(s) + "'");
    }
    return value;
}

IpPrefix parseV4(std::string_view addrPart, int length) {
    std::uint32_t addr = 0;
    int octets = 0;
    std::size_t pos = 0;
    for (;;) {
        const std::size_t dot = addrPart.find('.', pos);
        const std::string_view piece = (dot == std::string_view::npos)
                                           ? addrPart.substr(pos)
                                           : addrPart.substr(pos, dot - pos);
        if (octets == 4) throw ParseError("too many IPv4 octets: '" + std::string(addrPart) + "'");
        addr = (addr << 8) | parseDecimal(piece, 255, "IPv4 octet");
        ++octets;
        if (dot == std::string_view::npos) break;
        pos = dot + 1;
    }
    if (octets != 4) throw ParseError("IPv4 address needs 4 octets: '" + std::string(addrPart) + "'");
    if (length < 0 || length > 32) throw ParseError("IPv4 prefix length out of range");
    return IpPrefix::v4(addr, length);
}

std::uint16_t parseHexGroup(std::string_view s) {
    if (s.empty() || s.size() > 4) throw ParseError("bad IPv6 group: '" + std::string(s) + "'");
    std::uint16_t value = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value, 16);
    if (ec != std::errc{} || ptr != s.data() + s.size()) {
        throw ParseError("bad IPv6 group: '" + std::string(s) + "'");
    }
    return value;
}

IpPrefix parseV6(std::string_view addrPart, int length) {
    // Split on "::" (at most one occurrence).
    std::vector<std::uint16_t> head;
    std::vector<std::uint16_t> tail;
    const std::size_t gap = addrPart.find("::");
    auto parseGroups = [](std::string_view part, std::vector<std::uint16_t>& out) {
        if (part.empty()) return;
        std::size_t pos = 0;
        for (;;) {
            const std::size_t colon = part.find(':', pos);
            const std::string_view piece = (colon == std::string_view::npos)
                                               ? part.substr(pos)
                                               : part.substr(pos, colon - pos);
            out.push_back(parseHexGroup(piece));
            if (colon == std::string_view::npos) break;
            pos = colon + 1;
        }
    };
    if (gap == std::string_view::npos) {
        parseGroups(addrPart, head);
        if (head.size() != 8) throw ParseError("IPv6 address needs 8 groups without '::'");
    } else {
        if (addrPart.find("::", gap + 1) != std::string_view::npos) {
            throw ParseError("IPv6 address may contain '::' only once");
        }
        parseGroups(addrPart.substr(0, gap), head);
        parseGroups(addrPart.substr(gap + 2), tail);
        if (head.size() + tail.size() > 7) throw ParseError("too many IPv6 groups around '::'");
    }
    std::uint16_t groups[8] = {};
    for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
    for (std::size_t i = 0; i < tail.size(); ++i) groups[8 - tail.size() + i] = tail[i];

    U128 addr{0, 0};
    for (int i = 0; i < 8; ++i) addr = (addr << 16) | U128{0, groups[i]};
    if (length < 0 || length > 128) throw ParseError("IPv6 prefix length out of range");
    return IpPrefix::v6(addr, length);
}

}  // namespace

bool IpPrefix::isCanonical() const {
    return (addr & ~networkMask(bits(), length)).isZero();
}

IpPrefix IpPrefix::canonicalized() const {
    IpPrefix p = *this;
    p.addr = addr & networkMask(bits(), length);
    return p;
}

U128 IpPrefix::firstAddress() const {
    return addr & networkMask(bits(), length);
}

U128 IpPrefix::lastAddress() const {
    const U128 widthMask =
        (bits() == 128) ? U128::max() : (U128{0, 1} << bits()) - U128{0, 1};
    return firstAddress() | (~networkMask(bits(), length) & widthMask);
}

double IpPrefix::addressCount() const {
    const int hostBits = bits() - length;
    if (hostBits >= 128) return U128::max().toDouble() + 1.0;
    return ((U128{0, 1} << hostBits)).toDouble();
}

bool IpPrefix::covers(const IpPrefix& p) const {
    if (family != p.family || length > p.length) return false;
    const U128 mask = networkMask(bits(), length);
    return (addr & mask) == (p.addr & mask);
}

bool IpPrefix::overlaps(const IpPrefix& p) const {
    return covers(p) || p.covers(*this);
}

IpPrefix IpPrefix::child(int bit) const {
    if (length >= bits()) throw UsageError("prefix has no children at maximum length");
    IpPrefix c = canonicalized();
    c.length = static_cast<std::uint8_t>(length + 1);
    if (bit) c.addr = c.addr | (U128{0, 1} << (bits() - c.length));
    return c;
}

std::string IpPrefix::str() const {
    char buf[64];
    if (family == IpFamily::v4) {
        const auto a = static_cast<std::uint32_t>(addr.toU64());
        std::snprintf(buf, sizeof buf, "%u.%u.%u.%u/%u", (a >> 24) & 0xff, (a >> 16) & 0xff,
                      (a >> 8) & 0xff, a & 0xff, length);
        return buf;
    }
    // IPv6: full form without compression except collapsing trailing zeros
    // into "::" when possible, which covers the documentation prefixes the
    // paper mentions (e.g. 2c0f:f668::/32).
    std::uint16_t groups[8];
    for (int i = 0; i < 8; ++i) {
        groups[i] = static_cast<std::uint16_t>((addr >> (112 - 16 * i)).toU64() & 0xffff);
    }
    int lastNonZero = -1;
    for (int i = 0; i < 8; ++i)
        if (groups[i] != 0) lastNonZero = i;
    std::string out;
    if (lastNonZero == -1) {
        out = "::";
    } else if (lastNonZero <= 6) {
        for (int i = 0; i <= lastNonZero; ++i) {
            std::snprintf(buf, sizeof buf, "%x", groups[i]);
            out += buf;
            out += ':';
        }
        out += ':';
    } else {
        for (int i = 0; i < 8; ++i) {
            std::snprintf(buf, sizeof buf, "%x", groups[i]);
            out += buf;
            if (i != 7) out += ':';
        }
    }
    std::snprintf(buf, sizeof buf, "/%u", length);
    out += buf;
    return out;
}

IpPrefix IpPrefix::parse(std::string_view text) {
    const std::size_t slash = text.rfind('/');
    if (slash == std::string_view::npos) throw ParseError("prefix needs '/length': '" + std::string(text) + "'");
    const std::string_view addrPart = text.substr(0, slash);
    const int length = static_cast<int>(parseDecimal(text.substr(slash + 1), 128, "prefix length"));
    if (addrPart.find(':') != std::string_view::npos) return parseV6(addrPart, length);
    return parseV4(addrPart, length);
}

IpPrefix IpPrefix::v4(std::uint32_t addr, int length) {
    if (length < 0 || length > 32) throw UsageError("IPv4 prefix length out of range");
    IpPrefix p;
    p.family = IpFamily::v4;
    p.addr = U128{0, addr};
    p.length = static_cast<std::uint8_t>(length);
    return p.canonicalized();
}

IpPrefix IpPrefix::v6(U128 addr, int length) {
    if (length < 0 || length > 128) throw UsageError("IPv6 prefix length out of range");
    IpPrefix p;
    p.family = IpFamily::v6;
    p.addr = addr;
    p.length = static_cast<std::uint8_t>(length);
    return p.canonicalized();
}

std::string Route::str() const {
    return prefix.str() + " AS" + std::to_string(origin);
}

std::string_view toString(RouteValidity v) {
    switch (v) {
        case RouteValidity::Valid: return "valid";
        case RouteValidity::Unknown: return "unknown";
        case RouteValidity::Invalid: return "invalid";
    }
    return "?";
}

}  // namespace rpkic
