// rpkic-demo: writes a self-contained demo to DIR so the whole monitoring
// pipeline can be driven from a shell:
//
//   rpkic-demo /tmp/demo
//   rpkic-validate /tmp/demo/repo-day0 --ta /tmp/demo/ta.cer --out day0.state
//   rpkic-validate /tmp/demo/repo-day1 --ta /tmp/demo/ta.cer --out day1.state --now 1
//   rpkic-detector day0.state day1.state
//   rpkic-viz day0.state day1.state --root 79.139.96.0/20 --as 51813 --svg cs2.svg
//
// The demo reproduces the paper's Case Study 2: day 0 holds a ROA for
// (79.139.96.0/24, AS 51813) plus a covering ROA (79.139.96.0/19-20,
// AS 43782); on day 1 the /24 ROA is deleted, downgrading the route from
// valid to INVALID.
// With --consent, the demo instead writes a REDESIGNED-RPKI scenario for
// rpkic-audit: day 0 is healthy, day 1 contains a unilateral (no .dead)
// revocation that the audit flags as accountable:
//
//   rpkic-demo --consent /tmp/cdemo
//   rpkic-audit --ta /tmp/cdemo/ta.cer /tmp/cdemo/snap-day0 /tmp/cdemo/snap-day1
#include <cstdio>
#include <string>

#include "consent/authority.hpp"
#include "rpki/fs_repository.hpp"
#include "util/errors.hpp"
#include "vanilla/classic_tree.hpp"

using namespace rpkic;

namespace {

int writeConsentDemo(const std::string& dir) {
    Repository repo;
    consent::AuthorityDirectory authorities(
        2026, consent::AuthorityOptions{.ts = 4, .signerHeight = 6, .manifestLifetime = 50});
    SimClock clock;
    auto& rir = authorities.createTrustAnchor(
        "rir", ResourceSet::ofPrefixes({IpPrefix::parse("79.0.0.0/8")}), repo, clock.now());
    auto& isp = authorities.createChild(
        rir, "ru-isp", ResourceSet::ofPrefixes({IpPrefix::parse("79.139.96.0/19")}), repo,
        clock.now());
    auto& customer = authorities.createChild(
        isp, "customer", ResourceSet::ofPrefixes({IpPrefix::parse("79.139.96.0/24")}), repo,
        clock.now());
    customer.issueRoa("site", 51813, {{IpPrefix::parse("79.139.96.0/24"), 24}}, repo,
                      clock.now());
    writeSnapshotToDisk(repo.snapshot(), dir + "/snap-day0");

    // Day 1: the ISP takes its customer down WITHOUT consent.
    clock.advance(1);
    isp.unsafeUnilateralRevokeChild("customer", repo, clock.now());
    writeSnapshotToDisk(repo.snapshot(), dir + "/snap-day1");

    writeTrustAnchorFile(rir.cert(), dir + "/ta.cer");
    std::printf("wrote %s/snap-day0, %s/snap-day1 and %s/ta.cer\n", dir.c_str(), dir.c_str(),
                dir.c_str());
    std::printf("next:\n  rpkic-audit --ta %s/ta.cer %s/snap-day0 %s/snap-day1\n", dir.c_str(),
                dir.c_str(), dir.c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    bool consentMode = false;
    std::string dir;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--consent") consentMode = true;
        else if (dir.empty()) dir = arg;
    }
    if (dir.empty()) {
        std::fprintf(stderr, "usage: rpkic-demo [--consent] OUTPUT_DIR\n");
        return 1;
    }

    try {
        if (consentMode) return writeConsentDemo(dir);
        vanilla::ClassicTree tree;
        tree.addTrustAnchor("ripe", ResourceSet::ofPrefixes({IpPrefix::parse("79.0.0.0/8")}));
        tree.addChild("ripe", "ru-isp",
                      ResourceSet::ofPrefixes({IpPrefix::parse("79.139.96.0/19")}));
        tree.addRoa("ru-isp", "covering", 43782, {{IpPrefix::parse("79.139.96.0/19"), 20}});
        tree.addRoa("ru-isp", "victim", 51813, {{IpPrefix::parse("79.139.96.0/24"), 24}});

        Repository repo;
        tree.publish(repo, 0);
        writeSnapshotToDisk(repo.snapshot(), dir + "/repo-day0");

        // Day 1: the victim ROA is silently deleted (Case Study 2).
        tree.deleteRoa("ru-isp", "victim");
        tree.publish(repo, 1);
        writeSnapshotToDisk(repo.snapshot(), dir + "/repo-day1");

        writeTrustAnchorFile(tree.trustAnchors()[0], dir + "/ta.cer");

        std::printf("wrote %s/repo-day0, %s/repo-day1 and %s/ta.cer\n", dir.c_str(),
                    dir.c_str(), dir.c_str());
        std::printf("next:\n"
                    "  rpkic-validate %s/repo-day0 --ta %s/ta.cer --out day0.state\n"
                    "  rpkic-validate %s/repo-day1 --ta %s/ta.cer --now 1 --out day1.state\n"
                    "  rpkic-detector day0.state day1.state\n",
                    dir.c_str(), dir.c_str(), dir.c_str(), dir.c_str());
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "rpkic-demo: %s\n", e.what());
        return 1;
    }
}
