// rpkic-scrape: a zero-dependency HTTP client for the introspection
// endpoints (obs/serve/). CI and tests use it to pull /metrics, /statusz
// or /flightz from a live rpkic-soak / rpkic-detector without needing
// curl inside the container:
//
//   rpkic-scrape http://127.0.0.1:9105/metrics --lint
//   rpkic-scrape 127.0.0.1:9105/statusz --out statusz.txt
//   rpkic-scrape http://127.0.0.1:9105/metrics --retry 50 --timeout-ms 2000
//
// Options:
//   --out FILE       write the response body to FILE (default: stdout)
//   --lint           run the Prometheus exposition linter over the body
//                    (the same lintPrometheus() check CI runs over
//                    --metrics-out artifacts); problems exit 2
//   --retry N        connection attempts before giving up (default 1);
//                    retries sleep 100 ms, so a scraper can start before
//                    the server has bound
//   --timeout-ms MS  per-attempt connect/send/receive timeout (default
//                    5000)
//   --quiet          body still goes to --out/stdout, no status chatter
//
// Exit status: 0 = HTTP 200 (and lint clean if --lint), 2 = non-200
// response or lint problems, 1 = usage/connection error.
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include "obs/metrics.hpp"

using namespace rpkic;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: rpkic-scrape URL [--out FILE] [--lint] [--retry N]\n"
                 "                    [--timeout-ms MS] [--quiet]\n"
                 "  URL: http://HOST:PORT/PATH (the http:// prefix is optional)\n");
    return 1;
}

struct Url {
    std::string host;
    std::string port;
    std::string path;
};

bool parseUrl(std::string url, Url* out) {
    const std::string prefix = "http://";
    if (url.rfind(prefix, 0) == 0) url = url.substr(prefix.size());
    const std::size_t slash = url.find('/');
    std::string hostPort = slash == std::string::npos ? url : url.substr(0, slash);
    out->path = slash == std::string::npos ? "/" : url.substr(slash);
    const std::size_t colon = hostPort.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= hostPort.size()) return false;
    out->host = hostPort.substr(0, colon);
    out->port = hostPort.substr(colon + 1);
    return true;
}

/// One blocking GET over a fresh connection ("Connection: close", so EOF
/// delimits the body). Returns false with *error on transport failure;
/// HTTP status goes to *status.
bool fetchOnce(const Url& url, int timeoutMs, std::string* body, int* status,
               std::string* error) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int gai = ::getaddrinfo(url.host.c_str(), url.port.c_str(), &hints, &res);
    if (gai != 0) {
        *error = std::string("resolve: ") + ::gai_strerror(gai);
        return false;
    }

    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) continue;
        timeval tv{};
        tv.tv_sec = timeoutMs / 1000;
        tv.tv_usec = (timeoutMs % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        *error = std::string("connect: ") + std::strerror(errno);
        return false;
    }

    const std::string request = "GET " + url.path + " HTTP/1.1\r\nHost: " + url.host +
                                "\r\nConnection: close\r\nUser-Agent: rpkic-scrape\r\n\r\n";
    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
        if (n <= 0) {
            *error = std::string("send: ") + std::strerror(errno);
            ::close(fd);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }

    std::string response;
    char buf[16384];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0) {
            *error = std::string("recv: ") + std::strerror(errno);
            ::close(fd);
            return false;
        }
        if (n == 0) break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    // Minimal response parse: status line, then body after the blank line.
    if (response.rfind("HTTP/", 0) != 0) {
        *error = "malformed response (no HTTP status line)";
        return false;
    }
    const std::size_t sp = response.find(' ');
    if (sp == std::string::npos || sp + 4 > response.size()) {
        *error = "malformed status line";
        return false;
    }
    *status = std::atoi(response.c_str() + sp + 1);
    const std::size_t headerEnd = response.find("\r\n\r\n");
    if (headerEnd == std::string::npos) {
        *error = "malformed response (no header terminator)";
        return false;
    }
    *body = response.substr(headerEnd + 4);
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    std::string urlArg;
    std::string outPath;
    bool lint = false;
    int retries = 1;
    int timeoutMs = 5000;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--lint") {
            lint = true;
        } else if (arg == "--retry" && i + 1 < argc) {
            retries = std::atoi(argv[++i]);
        } else if (arg == "--timeout-ms" && i + 1 < argc) {
            timeoutMs = std::atoi(argv[++i]);
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (urlArg.empty() && !arg.empty() && arg[0] != '-') {
            urlArg = arg;
        } else {
            return usage();
        }
    }
    if (urlArg.empty() || retries < 1 || timeoutMs < 1) return usage();

    Url url;
    if (!parseUrl(urlArg, &url)) {
        std::fprintf(stderr, "rpkic-scrape: cannot parse URL (want HOST:PORT/PATH): %s\n",
                     urlArg.c_str());
        return 1;
    }

    std::string body;
    int status = 0;
    std::string error;
    bool fetched = false;
    for (int attempt = 0; attempt < retries; ++attempt) {
        if (attempt > 0) std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (fetchOnce(url, timeoutMs, &body, &status, &error)) {
            fetched = true;
            break;
        }
    }
    if (!fetched) {
        std::fprintf(stderr, "rpkic-scrape: %s (%d attempt%s)\n", error.c_str(), retries,
                     retries == 1 ? "" : "s");
        return 1;
    }

    if (!outPath.empty()) {
        std::ofstream out(outPath, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "rpkic-scrape: cannot write %s\n", outPath.c_str());
            return 1;
        }
        out << body;
    } else {
        std::fwrite(body.data(), 1, body.size(), stdout);
    }

    if (!quiet) {
        std::fprintf(stderr, "rpkic-scrape: HTTP %d, %zu bytes from %s\n", status, body.size(),
                     urlArg.c_str());
    }
    if (status != 200) return 2;

    if (lint) {
        const std::vector<std::string> problems = obs::lintPrometheus(body);
        for (const std::string& p : problems) {
            std::fprintf(stderr, "rpkic-scrape: lint: %s\n", p.c_str());
        }
        if (!problems.empty()) return 2;
        if (!quiet) std::fprintf(stderr, "rpkic-scrape: lint clean\n");
    }
    return 0;
}
