// rclint entry point: all logic lives in lint.cpp so the golden-fixture
// tests (tests/rclint_test.cpp) can drive the exact CLI in-process.
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    return rclint::runCli(args, std::cout, std::cerr);
}
