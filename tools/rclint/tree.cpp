#include "tree.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <thread>

namespace rclint {

namespace {

bool isSourceExt(const std::string& ext) {
    return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" || ext == ".hh" ||
           ext == ".h";
}

bool isHeaderExt(const std::string& ext) {
    return ext == ".hpp" || ext == ".hh" || ext == ".h";
}

/// Directories the tree walk never descends into: build output, hidden
/// dirs, fuzz corpora, and golden-fixture trees (tests/fixtures/** holds
/// deliberately-violating sources the gate must not lint).
bool skippableDir(const std::string& name) {
    return name.empty() || name[0] == '.' || name.rfind("build", 0) == 0 ||
           name == "CMakeFiles" || name == "corpus" || name == "fixtures";
}

bool readFile(const std::string& path, std::string* out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/// Parses `#include` specs out of the directive lines.
std::vector<IncludeSpec> parseIncludes(const Lexed& lx) {
    std::vector<IncludeSpec> out;
    for (const DirectiveLine& d : lx.directives) {
        if (d.text.rfind("include", 0) != 0) continue;
        std::string spec = d.text.substr(7);
        const std::size_t b = spec.find_first_not_of(" \t");
        if (b == std::string::npos) continue;
        spec = spec.substr(b);
        const std::size_t cpos = std::min(spec.find("//"), spec.find("/*"));
        if (cpos != std::string::npos) spec = spec.substr(0, cpos);
        const std::size_t e = spec.find_last_not_of(" \t");
        spec = e == std::string::npos ? "" : spec.substr(0, e + 1);
        if (spec.size() < 2) continue;
        IncludeSpec inc;
        inc.quoted = spec[0] == '"';
        inc.inner = spec.substr(1, spec.size() - 2);
        inc.line = d.line;
        out.push_back(std::move(inc));
    }
    return out;
}

void analyzeOne(FileUnit* u) {
    std::string source;
    if (!readFile(u->path, &source)) {
        u->error = "cannot read '" + u->path + "'";
        return;
    }
    u->lx = lex(source);
    u->sup = collectSuppressions(u->lx);
    u->findings = lintLexed(u->path, u->lx, u->sup, u->isHeader);
    checkNondetPerFile(u->path, u->lx, u->sup, &u->findings);
    std::sort(u->findings.begin(), u->findings.end());
    u->metrics = collectMetricNames(u->path, u->lx);
    u->includes = parseIncludes(u->lx);
    u->nondet = extractNondetFacts(u->lx);
    u->lockEdges = extractLockEdges(u->path, u->lx, u->sup);
}

std::string dirname(const std::string& p) {
    const std::size_t pos = p.find_last_of('/');
    return pos == std::string::npos ? "" : p.substr(0, pos);
}

}  // namespace

bool collectFiles(const std::vector<std::string>& paths, std::vector<std::string>* files,
                  std::string* err) {
    namespace fs = std::filesystem;
    std::error_code ec;
    for (const std::string& p : paths) {
        if (fs::is_directory(p, ec)) {
            for (auto it = fs::recursive_directory_iterator(p, ec);
                 it != fs::recursive_directory_iterator(); it.increment(ec)) {
                if (ec) break;
                if (it->is_directory() && skippableDir(it->path().filename().string())) {
                    it.disable_recursion_pending();
                    continue;
                }
                if (it->is_regular_file() && isSourceExt(it->path().extension().string())) {
                    files->push_back(it->path().generic_string());
                }
            }
        } else if (fs::is_regular_file(p, ec)) {
            files->push_back(p);
        } else {
            *err = "cannot read '" + p + "'";
            return false;
        }
    }
    std::sort(files->begin(), files->end());
    files->erase(std::unique(files->begin(), files->end()), files->end());
    return true;
}

std::vector<FileUnit> loadUnits(const std::vector<std::string>& files, int threads) {
    std::vector<FileUnit> units(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
        units[i].path = files[i];
        units[i].isHeader = isHeaderExt(std::filesystem::path(files[i]).extension().string());
    }
    const int workers =
        std::max(1, std::min<int>(threads, static_cast<int>(units.size())));
    if (workers <= 1) {
        for (FileUnit& u : units) analyzeOne(&u);
        return units;
    }
    // Index-stride fan-out: worker w owns slots w, w+N, w+2N, ... Each
    // slot is written by exactly one thread; the merge is the untouched
    // `units` order, so output is byte-identical at every thread count.
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&units, w, workers] {
            for (std::size_t i = static_cast<std::size_t>(w); i < units.size();
                 i += static_cast<std::size_t>(workers)) {
                analyzeOne(&units[i]);
            }
        });
    }
    for (std::thread& t : pool) t.join();
    return units;
}

std::vector<IncludeEdge> resolveIncludes(const std::vector<FileUnit>& units) {
    // Index scanned files by basename for cheap suffix matching.
    std::map<std::string, std::vector<std::string>> byBase;
    for (const FileUnit& u : units) {
        const std::size_t pos = u.path.find_last_of('/');
        byBase[pos == std::string::npos ? u.path : u.path.substr(pos + 1)].push_back(u.path);
    }
    for (auto& [base, paths] : byBase) std::sort(paths.begin(), paths.end());

    std::vector<IncludeEdge> edges;
    for (const FileUnit& u : units) {
        for (const IncludeSpec& inc : u.includes) {
            if (!inc.quoted || inc.inner.empty()) continue;
            const std::size_t pos = inc.inner.find_last_of('/');
            const std::string base =
                pos == std::string::npos ? inc.inner : inc.inner.substr(pos + 1);
            const auto it = byBase.find(base);
            if (it == byBase.end()) continue;
            const std::string sameDir = dirname(u.path) + "/" + inc.inner;
            std::string resolved;
            for (const std::string& cand : it->second) {
                const bool suffixMatch =
                    cand.size() > inc.inner.size() + 1 &&
                    cand.compare(cand.size() - inc.inner.size() - 1, inc.inner.size() + 1,
                                 "/" + inc.inner) == 0;
                if (cand != u.path && (cand == sameDir || cand == inc.inner || suffixMatch)) {
                    // Same-directory resolution wins outright; otherwise
                    // the first (smallest) suffix match.
                    if (cand == sameDir) {
                        resolved = cand;
                        break;
                    }
                    if (resolved.empty()) resolved = cand;
                }
            }
            if (!resolved.empty()) edges.push_back({u.path, resolved, inc.line});
        }
    }
    return edges;
}

std::map<std::string, std::vector<std::string>> unorderedClosure(
    const std::vector<FileUnit>& units, const std::vector<IncludeEdge>& edges) {
    std::map<std::string, std::vector<std::string>> adj;
    for (const IncludeEdge& e : edges) adj[e.from].push_back(e.to);
    std::map<std::string, const FileUnit*> byPath;
    for (const FileUnit& u : units) byPath[u.path] = &u;

    std::map<std::string, std::set<std::string>> memo;
    // Iterative DFS with a visiting guard (include cycles must not hang
    // the closure even though they are themselves findings).
    std::set<std::string> visiting;
    std::function<const std::set<std::string>&(const std::string&)> closure =
        [&](const std::string& path) -> const std::set<std::string>& {
        const auto found = memo.find(path);
        if (found != memo.end()) return found->second;
        std::set<std::string>& mine = memo[path];
        if (!visiting.insert(path).second) return mine;
        const auto unit = byPath.find(path);
        if (unit != byPath.end()) {
            mine.insert(unit->second->nondet.unorderedIdents.begin(),
                        unit->second->nondet.unorderedIdents.end());
        }
        const auto children = adj.find(path);
        if (children != adj.end()) {
            for (const std::string& child : children->second) {
                const std::set<std::string>& sub = closure(child);
                mine.insert(sub.begin(), sub.end());
            }
        }
        visiting.erase(path);
        return mine;
    };

    std::map<std::string, std::vector<std::string>> out;
    for (const FileUnit& u : units) {
        const std::set<std::string>& s = closure(u.path);
        out[u.path] = std::vector<std::string>(s.begin(), s.end());
    }
    return out;
}

}  // namespace rclint
