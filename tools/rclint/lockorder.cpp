#include "lockorder.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace rclint {

namespace {

/// Joins the guard's argument tokens into a stable mutex key:
/// `this -> mutex_` -> "mutex_", `state_ . mu_` -> "state_.mu_".
std::string mutexKey(const std::vector<Token>& toks, std::size_t from, std::size_t to) {
    std::string key;
    for (std::size_t k = from; k < to; ++k) key += toks[k].text;
    if (key.rfind("this->", 0) == 0) key = key.substr(6);
    while (!key.empty() && (key.front() == '*' || key.front() == '&')) key = key.substr(1);
    return key;
}

struct ActiveGuard {
    std::string key;
    int depth = 0;  // brace depth the guard was declared at
};

}  // namespace

std::vector<LockEdge> extractLockEdges(const std::string& path, const Lexed& lx,
                                       const Suppressions& sup) {
    const auto& toks = lx.tokens;
    std::vector<LockEdge> edges;
    std::vector<ActiveGuard> active;
    int depth = 0;

    for (std::size_t k = 0; k < toks.size(); ++k) {
        const Token& t = toks[k];
        if (t.kind == Token::Kind::Punct) {
            if (t.text == "{") ++depth;
            if (t.text == "}") {
                --depth;
                while (!active.empty() && active.back().depth > depth) active.pop_back();
            }
            continue;
        }
        // rc::LockGuard name(mutexExpr);  — also bare LockGuard in files
        // that `using` the namespace.
        if (t.kind == Token::Kind::Ident && t.text == "LockGuard" && k + 2 < toks.size() &&
            toks[k + 1].kind == Token::Kind::Ident && toks[k + 2].text == "(") {
            const std::size_t close = matchForward(toks, k + 2, "(", ")");
            if (close == toks.size()) continue;
            const std::string key = mutexKey(toks, k + 3, close);
            if (key.empty()) continue;
            if (!suppressed(sup, t.line, "lock-order")) {
                for (const ActiveGuard& g : active) {
                    edges.push_back({g.key, key, path, t.line, t.col});
                }
            }
            active.push_back({key, depth});
            k = close;
        }
    }
    return edges;
}

std::vector<Finding> checkLockOrder(const std::vector<LockEdge>& allEdges) {
    // Dedupe edges by (held, acquired), keeping the first site in sorted
    // order so the anchor is deterministic.
    std::vector<LockEdge> edges = allEdges;
    std::sort(edges.begin(), edges.end());
    std::map<std::pair<std::string, std::string>, const LockEdge*> uniq;
    for (const LockEdge& e : edges) {
        uniq.emplace(std::make_pair(e.held, e.acquired), &e);
    }

    std::map<std::string, std::vector<std::string>> adj;
    std::set<std::string> nodes;
    for (const auto& [key, edge] : uniq) {
        adj[key.first].push_back(key.second);
        nodes.insert(key.first);
        nodes.insert(key.second);
    }

    // Iterative DFS with colors; the adjacency lists are sorted (map of
    // sorted inserts), so the first cycle found per start node is stable.
    std::vector<Finding> out;
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::set<std::set<std::string>> reported;

    for (const std::string& start : nodes) {
        if (color[start] != 0) continue;
        std::vector<std::pair<std::string, std::size_t>> stack;  // node, next-child index
        std::vector<std::string> pathStack;
        stack.emplace_back(start, 0);
        color[start] = 1;
        pathStack.push_back(start);
        while (!stack.empty()) {
            auto& [node, childIdx] = stack.back();
            const auto& children = adj[node];
            if (childIdx >= children.size()) {
                color[node] = 2;
                stack.pop_back();
                pathStack.pop_back();
                continue;
            }
            const std::string next = children[childIdx++];
            if (color[next] == 1) {
                // Back edge: pathStack from `next` onward is the cycle.
                const auto it = std::find(pathStack.begin(), pathStack.end(), next);
                std::vector<std::string> cycle(it, pathStack.end());
                std::set<std::string> keySet(cycle.begin(), cycle.end());
                if (reported.insert(keySet).second) {
                    // Rotate so the lexicographically smallest mutex leads.
                    const auto minIt = std::min_element(cycle.begin(), cycle.end());
                    std::rotate(cycle.begin(), minIt, cycle.end());
                    std::string desc;
                    for (const std::string& m : cycle) desc += m + " -> ";
                    desc += cycle.front();
                    // Anchor at the edge leaving the smallest mutex.
                    const LockEdge* site =
                        uniq.at({cycle.front(), cycle.size() > 1 ? cycle[1] : cycle.front()});
                    out.push_back({site->path, site->line, site->col, "lock-order",
                                   "lock-order cycle: " + desc +
                                       " — nested acquisition inverts an order taken "
                                       "elsewhere; a concurrent interleaving deadlocks"});
                }
            } else if (color[next] == 0) {
                color[next] = 1;
                stack.emplace_back(next, 0);
                pathStack.push_back(next);
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace rclint
