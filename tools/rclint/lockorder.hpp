// Lock-order analysis (rule id: lock-order).
//
// Every mutex in the tree is a thread-safety-annotated rc::Mutex taken
// through rc::LockGuard scopes (util/mutex.hpp), which makes lock
// acquisition *lexically visible*: a nested guard is a token pattern, not
// a dataflow problem. This pass extracts every nested LockGuard pair per
// file ("while holding A, acquired B"), merges them into one global
// lock-order graph keyed by the normalized mutex expression, and fails on
// cycles — the static complement of the TSan runs, which can only catch
// an inversion that actually interleaves.
//
// The mutex key is the guard's argument expression with `this->` stripped
// (`mutex_`, `state_.mu_`, ...). Two classes that both name a member
// `mutex_` therefore share a node: the analysis over-approximates, and a
// textual cycle across unrelated classes is suppressible at the edge site
// with rclint:allow(lock-order). A cycle finding escalates the process
// exit code to 2 — a potential deadlock is a harder failure than a style
// finding (see docs/STATIC_ANALYSIS.md).
#pragma once

#include <string>
#include <vector>

#include "lex.hpp"
#include "lint.hpp"

namespace rclint {

/// One observed nested acquisition: `held` was locked when `acquired`
/// was taken at path:line.
struct LockEdge {
    std::string held;
    std::string acquired;
    std::string path;
    int line = 0;
    int col = 0;

    auto operator<=>(const LockEdge&) const = default;
};

/// Extracts nested rc::LockGuard scopes from one token stream. Guard
/// lifetime is tracked by brace depth, so sibling scopes in one function
/// and guards in different functions never pair up.
std::vector<LockEdge> extractLockEdges(const std::string& path, const Lexed& lx,
                                       const Suppressions& sup);

/// Builds the global lock-order graph from all files' edges and reports
/// one `lock-order` finding per cycle, anchored at the edge that closes
/// it. Deterministic: edges are processed in sorted order.
std::vector<Finding> checkLockOrder(const std::vector<LockEdge>& edges);

}  // namespace rclint
