// Per-file rules. The lexer lives in lex.cpp; the cross-file pipeline
// (include graph, layering, determinism closure, lock order) lives in
// tree.cpp / graph.cpp / nondet.cpp / lockorder.cpp; the CLI that wires
// them together lives in cli.cpp.
#include "lint.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

namespace rclint {

namespace {

// ---------------------------------------------------------------------------
// Rule tables

struct BannedFn {
    const char* name;
    const char* why;
};
constexpr BannedFn kBannedFns[] = {
    {"strcpy", "unbounded copy; use std::string or std::copy"},
    {"strcat", "unbounded append; use std::string"},
    {"sprintf", "unbounded format; use std::snprintf"},
    {"vsprintf", "unbounded format; use std::vsnprintf"},
    {"gets", "unbounded read; use std::getline"},
    {"rand", "hidden global state breaks seeded reproducibility; use rpkic::Rng"},
    {"srand", "hidden global state breaks seeded reproducibility; use rpkic::Rng"},
};

const BannedFn* bannedFn(const std::string& name) {
    for (const BannedFn& b : kBannedFns) {
        if (name == b.name) return &b;
    }
    return nullptr;
}

/// C-compat headers and their C++ replacements.
const std::map<std::string, std::string>& cCompatHeaders() {
    static const std::map<std::string, std::string> kMap = {
        {"assert.h", "cassert"}, {"ctype.h", "cctype"},     {"errno.h", "cerrno"},
        {"float.h", "cfloat"},   {"inttypes.h", "cinttypes"}, {"limits.h", "climits"},
        {"locale.h", "clocale"}, {"math.h", "cmath"},       {"setjmp.h", "csetjmp"},
        {"signal.h", "csignal"}, {"stdarg.h", "cstdarg"},   {"stddef.h", "cstddef"},
        {"stdint.h", "cstdint"}, {"stdio.h", "cstdio"},     {"stdlib.h", "cstdlib"},
        {"string.h", "cstring"}, {"time.h", "ctime"},       {"wchar.h", "cwchar"},
    };
    return kMap;
}

bool isMetricName(const std::string& s) {
    // rc_ prefix, lower-case snake with digits, at least rc_x_y.
    if (s.rfind("rc_", 0) != 0 || s.size() < 6) return false;
    int segments = 0;
    std::size_t segLen = 0;
    for (std::size_t k = 3; k < s.size(); ++k) {
        const char c = s[k];
        if (c == '_') {
            if (segLen == 0) return false;
            ++segments;
            segLen = 0;
        } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
            ++segLen;
        } else {
            return false;
        }
    }
    if (segLen == 0) return false;
    return segments >= 1;  // two or more segments after rc_
}

// ---------------------------------------------------------------------------
// Per-file rules

void checkTokens(const std::string& path, const Lexed& lx, const Suppressions& sup,
                 std::vector<Finding>* out) {
    const auto& toks = lx.tokens;
    auto add = [&](int line, int col, const std::string& rule, const std::string& msg) {
        if (!suppressed(sup, line, rule)) out->push_back({path, line, col, rule, msg});
    };
    auto text = [&](std::size_t k) -> const std::string& {
        static const std::string kEmpty;
        return k < toks.size() ? toks[k].text : kEmpty;
    };

    for (std::size_t k = 0; k < toks.size(); ++k) {
        const Token& t = toks[k];
        if (t.kind != Token::Kind::Ident) continue;
        const std::string& prev = k > 0 ? toks[k - 1].text : text(toks.size());
        const std::string& next = text(k + 1);

        if (const BannedFn* b = bannedFn(t.text); b != nullptr && next == "(") {
            const bool member = prev == "." || prev == "->";
            const bool qualified = prev == "::";
            const bool stdQualified = qualified && k >= 2 && toks[k - 2].text == "std";
            if (!member && (!qualified || stdQualified)) {
                add(t.line, t.col, "banned-function",
                    std::string(b->name) + ": " + b->why);
            }
        }

        if (t.text == "new" && prev != "operator") {
            add(t.line, t.col, "banned-new-delete",
                "raw new: use std::make_unique, containers, or values");
        }
        if (t.text == "delete" && prev != "operator" && prev != "=") {
            add(t.line, t.col, "banned-new-delete",
                "raw delete: ownership belongs in RAII types");
        }

        // registry.counter("name", ...) — the literal must end in _total
        // (the registry throws at runtime; catch it at lint time).
        if (t.text == "counter" && prev == "." && next == "(" && k + 2 < toks.size() &&
            toks[k + 2].kind == Token::Kind::String) {
            const std::string& name = toks[k + 2].text;
            if (isMetricName(name) && !name.ends_with("_total")) {
                add(toks[k + 2].line, toks[k + 2].col, "metric-name",
                    "counter '" + name + "' must end in _total");
            }
        }
    }
}

void checkDirectives(const std::string& path, const Lexed& lx, const Suppressions& sup,
                     bool isHeader, std::vector<Finding>* out) {
    auto add = [&](int line, const std::string& rule, const std::string& msg) {
        if (!suppressed(sup, line, rule)) out->push_back({path, line, 1, rule, msg});
    };

    // pragma-once: headers start with `#pragma once`, exactly once, before
    // any other directive.
    if (isHeader) {
        int pragmaCount = 0;
        int firstDirectiveLine = 0;
        bool firstIsPragmaOnce = false;
        for (const DirectiveLine& d : lx.directives) {
            std::string norm;
            for (const char c : d.text) {
                if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                    if (!norm.empty() && norm.back() != ' ') norm += ' ';
                } else {
                    norm += c;
                }
            }
            const bool isPragmaOnce = norm == "pragma once";
            if (firstDirectiveLine == 0) {
                firstDirectiveLine = d.line;
                firstIsPragmaOnce = isPragmaOnce;
            }
            if (isPragmaOnce) {
                ++pragmaCount;
                if (pragmaCount == 2) {
                    add(d.line, "pragma-once", "duplicate #pragma once");
                }
            }
        }
        if (pragmaCount == 0) {
            add(firstDirectiveLine == 0 ? 1 : firstDirectiveLine, "pragma-once",
                "header is missing #pragma once");
        } else if (!firstIsPragmaOnce) {
            add(firstDirectiveLine, "pragma-once",
                "#pragma once must be the first preprocessing directive");
        }
    }

    // include-hygiene.
    std::set<std::string> seen;
    for (const DirectiveLine& d : lx.directives) {
        if (d.text.rfind("include", 0) != 0) continue;
        std::string spec = d.text.substr(7);
        const std::size_t b = spec.find_first_not_of(" \t");
        if (b == std::string::npos) continue;
        spec = spec.substr(b);
        // Trim a trailing comment, then trailing whitespace.
        const std::size_t cpos = std::min(spec.find("//"), spec.find("/*"));
        if (cpos != std::string::npos) spec = spec.substr(0, cpos);
        const std::size_t e = spec.find_last_not_of(" \t");
        spec = e == std::string::npos ? "" : spec.substr(0, e + 1);
        if (spec.size() < 2) continue;

        if (!seen.insert(spec).second) {
            add(d.line, "include-hygiene", "duplicate include " + spec);
        }
        const std::string inner = spec.substr(1, spec.size() - 2);
        if (spec[0] == '"' && inner.find("../") != std::string::npos) {
            add(d.line, "include-hygiene",
                "parent-relative include " + spec + ": include project-root-relative paths");
        }
        if (spec[0] == '<') {
            const auto it = cCompatHeaders().find(inner);
            if (it != cCompatHeaders().end()) {
                add(d.line, "include-hygiene",
                    "C-compat header <" + inner + ">: use <" + it->second + ">");
            }
        }
    }
}

void checkComments(const std::string& path, const Lexed& lx, const Suppressions& sup,
                   std::vector<Finding>* out) {
    auto add = [&](int line, int col, const std::string& msg) {
        if (!suppressed(sup, line, "todo-format")) {
            out->push_back({path, line, col, "todo-format", msg});
        }
    };
    const std::string kTodo = "TODO";
    const std::string kFixme = "FIXME";
    const std::string kXxx = "XXX";
    for (const CommentSpan& cs : lx.comments) {
        // Track line offsets inside multi-line block comments.
        auto lineAt = [&](std::size_t off) {
            int l = cs.line;
            for (std::size_t k = 0; k < off && k < cs.text.size(); ++k) {
                if (cs.text[k] == '\n') ++l;
            }
            return l;
        };
        auto isWordAt = [&](std::size_t pos, const std::string& word) {
            if (pos > 0 && isIdentChar(cs.text[pos - 1])) return false;
            const std::size_t end = pos + word.size();
            if (end < cs.text.size() && isIdentChar(cs.text[end])) return false;
            return true;
        };
        for (const std::string* word : {&kFixme, &kXxx}) {
            for (std::size_t pos = cs.text.find(*word); pos != std::string::npos;
                 pos = cs.text.find(*word, pos + 1)) {
                if (isWordAt(pos, *word)) {
                    add(lineAt(pos), cs.col, *word + ": use TODO(owner): instead");
                }
            }
        }
        for (std::size_t pos = cs.text.find(kTodo); pos != std::string::npos;
             pos = cs.text.find(kTodo, pos + 1)) {
            if (!isWordAt(pos, kTodo)) continue;
            // Must match TODO(owner): …
            std::size_t k = pos + kTodo.size();
            bool ok = false;
            if (k < cs.text.size() && cs.text[k] == '(') {
                const std::size_t close = cs.text.find(')', k);
                if (close != std::string::npos && close > k + 1 &&
                    close + 1 < cs.text.size() && cs.text[close + 1] == ':') {
                    ok = true;
                }
            }
            if (!ok) {
                add(lineAt(pos), cs.col, "malformed TODO: write TODO(owner): description");
            }
        }
    }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface

std::vector<Finding> lintLexed(const std::string& path, const Lexed& lx,
                               const Suppressions& sup, bool isHeader) {
    std::vector<Finding> out;
    checkTokens(path, lx, sup, &out);
    checkDirectives(path, lx, sup, isHeader, &out);
    checkComments(path, lx, sup, &out);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Finding> lintSource(const std::string& path, const std::string& source,
                                bool isHeader) {
    const Lexed lx = lex(source);
    const Suppressions sup = collectSuppressions(lx);
    return lintLexed(path, lx, sup, isHeader);
}

std::vector<MetricUse> collectMetricNames(const std::string& path, const Lexed& lx) {
    std::vector<MetricUse> out;
    for (const Token& t : lx.tokens) {
        if (t.kind == Token::Kind::String && isMetricName(t.text)) {
            out.push_back({path, t.line, t.col, t.text});
        }
    }
    return out;
}

std::vector<MetricUse> collectMetricNames(const std::string& path, const std::string& source) {
    return collectMetricNames(path, lex(source));
}

std::vector<std::pair<std::string, int>> docMetricNames(const std::string& docText) {
    std::vector<std::pair<std::string, int>> out;
    std::set<std::string> seen;
    int line = 1;
    std::size_t i = 0;
    while (i < docText.size()) {
        const char c = docText[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (c == '`') {
            const std::size_t close = docText.find('`', i + 1);
            if (close == std::string::npos) break;
            const std::string span = docText.substr(i + 1, close - i - 1);
            if (span.find('\n') == std::string::npos && isMetricName(span) &&
                seen.insert(span).second) {
                out.emplace_back(span, line);
            }
            i = close + 1;
            continue;
        }
        ++i;
    }
    return out;
}

std::vector<Finding> lintMetricDrift(const std::vector<MetricUse>& uses,
                                     const std::string& docPath, const std::string& docText) {
    std::vector<Finding> out;
    const auto docNames = docMetricNames(docText);
    std::set<std::string> documented;
    for (const auto& [name, line] : docNames) documented.insert(name);

    std::set<std::string> used;
    std::set<std::string> reported;
    for (const MetricUse& u : uses) {
        used.insert(u.name);
        if (documented.count(u.name) == 0 && reported.insert(u.name).second) {
            out.push_back({u.path, u.line, u.col, "metric-doc-drift",
                           "metric '" + u.name + "' is not catalogued in " + docPath});
        }
    }
    for (const auto& [name, line] : docNames) {
        if (used.count(name) == 0) {
            out.push_back({docPath, line, 1, "metric-doc-drift",
                           "documented metric '" + name + "' is never used in src/"});
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string renderFinding(const Finding& f, const std::string& format) {
    if (format == "github") {
        std::string escaped;
        for (const char c : f.message) {
            switch (c) {
                case '%': escaped += "%25"; break;
                case '\n': escaped += "%0A"; break;
                case '\r': escaped += "%0D"; break;
                default: escaped += c;
            }
        }
        return "::error file=" + f.path + ",line=" + std::to_string(f.line) +
               ",col=" + std::to_string(f.col) + ",title=rclint " + f.rule + "::" + escaped;
    }
    return f.path + ":" + std::to_string(f.line) + ":" + std::to_string(f.col) + ": [" +
           f.rule + "] " + f.message;
}

}  // namespace rclint
