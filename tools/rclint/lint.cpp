#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>

namespace rclint {

namespace {

// ---------------------------------------------------------------------------
// Lexer: a comment/string-aware token stream. No preprocessing, no
// semantics — just enough structure that rules never fire inside
// comments, string literals, or preprocessor directives.

struct Token {
    enum class Kind { Ident, String, Char, Number, Punct };
    Kind kind = Kind::Punct;
    std::string text;  // for String: the inner text (raw, escapes kept)
    int line = 1;
    int col = 1;
};

struct CommentSpan {
    std::string text;
    int line = 1;  // line the comment starts on
    int col = 1;
};

struct DirectiveLine {
    std::string text;  // after '#', continuations joined, trimmed
    int line = 1;
};

struct Lexed {
    std::vector<Token> tokens;
    std::vector<CommentSpan> comments;
    std::vector<DirectiveLine> directives;
};

bool isIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool isIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Lexed lex(const std::string& src) {
    Lexed out;
    std::size_t i = 0;
    int line = 1;
    int col = 1;
    bool lineHasToken = false;  // anything but whitespace seen on this line

    auto advance = [&](std::size_t n = 1) {
        for (std::size_t k = 0; k < n && i < src.size(); ++k) {
            if (src[i] == '\n') {
                ++line;
                col = 1;
                lineHasToken = false;
            } else {
                ++col;
            }
            ++i;
        }
    };
    auto peek = [&](std::size_t off = 0) -> char {
        return i + off < src.size() ? src[i + off] : '\0';
    };

    while (i < src.size()) {
        const char c = src[i];

        if (c == '\n' || std::isspace(static_cast<unsigned char>(c)) != 0) {
            advance();
            continue;
        }

        // Line comment.
        if (c == '/' && peek(1) == '/') {
            CommentSpan cs{"", line, col};
            while (i < src.size() && src[i] != '\n') {
                cs.text += src[i];
                advance();
            }
            out.comments.push_back(cs);
            continue;
        }
        // Block comment.
        if (c == '/' && peek(1) == '*') {
            CommentSpan cs{"", line, col};
            advance(2);
            cs.text = "/*";
            while (i < src.size() && !(src[i] == '*' && peek(1) == '/')) {
                cs.text += src[i];
                advance();
            }
            cs.text += "*/";
            advance(2);
            out.comments.push_back(cs);
            continue;
        }

        // Preprocessor directive: '#' first on the (logical) line.
        if (c == '#' && !lineHasToken) {
            DirectiveLine d{"", line};
            advance();  // consume '#'
            while (i < src.size()) {
                if (src[i] == '\\' && (peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n'))) {
                    d.text += ' ';
                    advance(peek(1) == '\n' ? 2 : 3);
                    continue;
                }
                if (src[i] == '\n') break;
                d.text += src[i];
                advance();
            }
            // Trim and collapse leading whitespace.
            const std::size_t b = d.text.find_first_not_of(" \t");
            d.text = b == std::string::npos ? "" : d.text.substr(b);
            out.directives.push_back(d);
            continue;
        }

        lineHasToken = true;

        // Number (handles digit separators: 1'000'000ull).
        if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
            Token t{Token::Kind::Number, "", line, col};
            while (i < src.size()) {
                const char d = src[i];
                if (isIdentChar(d) || d == '.' || d == '\'' ||
                    ((d == '+' || d == '-') && !t.text.empty() &&
                     (t.text.back() == 'e' || t.text.back() == 'E' || t.text.back() == 'p' ||
                      t.text.back() == 'P'))) {
                    t.text += d;
                    advance();
                } else {
                    break;
                }
            }
            out.tokens.push_back(t);
            continue;
        }

        // Identifier (possibly a string-literal prefix: R"(, u8"...).
        if (isIdentStart(c)) {
            Token t{Token::Kind::Ident, "", line, col};
            while (i < src.size() && isIdentChar(src[i])) {
                t.text += src[i];
                advance();
            }
            if (peek() == '"' && !t.text.empty() && t.text.back() == 'R') {
                // Raw string: R"delim( ... )delim"
                Token s{Token::Kind::String, "", line, col};
                advance();  // the quote
                std::string delim;
                while (i < src.size() && src[i] != '(') {
                    delim += src[i];
                    advance();
                }
                advance();  // '('
                const std::string closer = ")" + delim + "\"";
                while (i < src.size() && src.compare(i, closer.size(), closer) != 0) {
                    s.text += src[i];
                    advance();
                }
                advance(closer.size());
                out.tokens.push_back(s);
                continue;
            }
            if (peek() == '"' &&
                (t.text == "u8" || t.text == "u" || t.text == "U" || t.text == "L")) {
                // Prefixed ordinary string; fall through to the string path
                // below by not emitting the prefix as an identifier.
            } else {
                out.tokens.push_back(t);
                continue;
            }
        }

        // String literal.
        if (peek() == '"' || c == '"') {
            Token t{Token::Kind::String, "", line, col};
            advance();  // opening quote
            while (i < src.size() && src[i] != '"' && src[i] != '\n') {
                if (src[i] == '\\' && i + 1 < src.size()) {
                    t.text += src[i];
                    advance();
                }
                t.text += src[i];
                advance();
            }
            advance();  // closing quote
            out.tokens.push_back(t);
            continue;
        }

        // Character literal.
        if (c == '\'') {
            Token t{Token::Kind::Char, "", line, col};
            advance();
            while (i < src.size() && src[i] != '\'' && src[i] != '\n') {
                if (src[i] == '\\' && i + 1 < src.size()) advance();
                t.text += src[i];
                advance();
            }
            advance();
            out.tokens.push_back(t);
            continue;
        }

        // Punctuation; '->' and '::' are kept whole (the banned-function
        // rule needs to see qualified/member access as one token).
        {
            Token t{Token::Kind::Punct, std::string(1, c), line, col};
            if (c == '-' && peek(1) == '>') {
                t.text = "->";
                advance(2);
            } else if (c == ':' && peek(1) == ':') {
                t.text = "::";
                advance(2);
            } else {
                advance();
            }
            out.tokens.push_back(t);
            continue;
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Suppressions

struct Suppressions {
    std::set<std::string> fileRules;              // rclint:allow-file(...)
    std::map<int, std::set<std::string>> byLine;  // line -> rules (covers line and line+1)
};

void parseAllowList(const std::string& text, std::size_t open, std::set<std::string>* into) {
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) return;
    std::string inner = text.substr(open + 1, close - open - 1);
    std::stringstream ss(inner);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
        const std::size_t b = rule.find_first_not_of(" \t");
        const std::size_t e = rule.find_last_not_of(" \t");
        if (b != std::string::npos) into->insert(rule.substr(b, e - b + 1));
    }
}

Suppressions collectSuppressions(const Lexed& lx) {
    Suppressions out;
    for (const CommentSpan& cs : lx.comments) {
        static const std::string kAllow = "rclint:allow(";
        static const std::string kAllowFile = "rclint:allow-file(";
        std::size_t pos = cs.text.find(kAllowFile);
        if (pos != std::string::npos) {
            parseAllowList(cs.text, pos + kAllowFile.size() - 1, &out.fileRules);
            continue;
        }
        pos = cs.text.find(kAllow);
        if (pos != std::string::npos) {
            parseAllowList(cs.text, pos + kAllow.size() - 1, &out.byLine[cs.line]);
        }
    }
    return out;
}

bool suppressed(const Suppressions& sup, int line, const std::string& rule) {
    if (sup.fileRules.count(rule) > 0) return true;
    for (const int l : {line, line - 1}) {
        const auto it = sup.byLine.find(l);
        if (it != sup.byLine.end() && it->second.count(rule) > 0) return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Rule tables

struct BannedFn {
    const char* name;
    const char* why;
};
constexpr BannedFn kBannedFns[] = {
    {"strcpy", "unbounded copy; use std::string or std::copy"},
    {"strcat", "unbounded append; use std::string"},
    {"sprintf", "unbounded format; use std::snprintf"},
    {"vsprintf", "unbounded format; use std::vsnprintf"},
    {"gets", "unbounded read; use std::getline"},
    {"rand", "hidden global state breaks seeded reproducibility; use rpkic::Rng"},
    {"srand", "hidden global state breaks seeded reproducibility; use rpkic::Rng"},
};

const BannedFn* bannedFn(const std::string& name) {
    for (const BannedFn& b : kBannedFns) {
        if (name == b.name) return &b;
    }
    return nullptr;
}

/// C-compat headers and their C++ replacements.
const std::map<std::string, std::string>& cCompatHeaders() {
    static const std::map<std::string, std::string> kMap = {
        {"assert.h", "cassert"}, {"ctype.h", "cctype"},     {"errno.h", "cerrno"},
        {"float.h", "cfloat"},   {"inttypes.h", "cinttypes"}, {"limits.h", "climits"},
        {"locale.h", "clocale"}, {"math.h", "cmath"},       {"setjmp.h", "csetjmp"},
        {"signal.h", "csignal"}, {"stdarg.h", "cstdarg"},   {"stddef.h", "cstddef"},
        {"stdint.h", "cstdint"}, {"stdio.h", "cstdio"},     {"stdlib.h", "cstdlib"},
        {"string.h", "cstring"}, {"time.h", "ctime"},       {"wchar.h", "cwchar"},
    };
    return kMap;
}

bool isMetricName(const std::string& s) {
    // rc_ prefix, lower-case snake with digits, at least rc_x_y.
    if (s.rfind("rc_", 0) != 0 || s.size() < 6) return false;
    int segments = 0;
    std::size_t segLen = 0;
    for (std::size_t k = 3; k < s.size(); ++k) {
        const char c = s[k];
        if (c == '_') {
            if (segLen == 0) return false;
            ++segments;
            segLen = 0;
        } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
            ++segLen;
        } else {
            return false;
        }
    }
    if (segLen == 0) return false;
    return segments >= 1;  // two or more segments after rc_
}

// ---------------------------------------------------------------------------
// Per-file rules

void checkTokens(const std::string& path, const Lexed& lx, const Suppressions& sup,
                 std::vector<Finding>* out) {
    const auto& toks = lx.tokens;
    auto add = [&](int line, int col, const std::string& rule, const std::string& msg) {
        if (!suppressed(sup, line, rule)) out->push_back({path, line, col, rule, msg});
    };
    auto text = [&](std::size_t k) -> const std::string& {
        static const std::string kEmpty;
        return k < toks.size() ? toks[k].text : kEmpty;
    };

    for (std::size_t k = 0; k < toks.size(); ++k) {
        const Token& t = toks[k];
        if (t.kind != Token::Kind::Ident) continue;
        const std::string& prev = k > 0 ? toks[k - 1].text : text(toks.size());
        const std::string& next = text(k + 1);

        if (const BannedFn* b = bannedFn(t.text); b != nullptr && next == "(") {
            const bool member = prev == "." || prev == "->";
            const bool qualified = prev == "::";
            const bool stdQualified = qualified && k >= 2 && toks[k - 2].text == "std";
            if (!member && (!qualified || stdQualified)) {
                add(t.line, t.col, "banned-function",
                    std::string(b->name) + ": " + b->why);
            }
        }

        if (t.text == "new" && prev != "operator") {
            add(t.line, t.col, "banned-new-delete",
                "raw new: use std::make_unique, containers, or values");
        }
        if (t.text == "delete" && prev != "operator" && prev != "=") {
            add(t.line, t.col, "banned-new-delete",
                "raw delete: ownership belongs in RAII types");
        }

        // registry.counter("name", ...) — the literal must end in _total
        // (the registry throws at runtime; catch it at lint time).
        if (t.text == "counter" && prev == "." && next == "(" && k + 2 < toks.size() &&
            toks[k + 2].kind == Token::Kind::String) {
            const std::string& name = toks[k + 2].text;
            if (isMetricName(name) && !name.ends_with("_total")) {
                add(toks[k + 2].line, toks[k + 2].col, "metric-name",
                    "counter '" + name + "' must end in _total");
            }
        }
    }
}

void checkDirectives(const std::string& path, const Lexed& lx, const Suppressions& sup,
                     bool isHeader, std::vector<Finding>* out) {
    auto add = [&](int line, const std::string& rule, const std::string& msg) {
        if (!suppressed(sup, line, rule)) out->push_back({path, line, 1, rule, msg});
    };

    // pragma-once: headers start with `#pragma once`, exactly once, before
    // any other directive.
    if (isHeader) {
        int pragmaCount = 0;
        int firstDirectiveLine = 0;
        bool firstIsPragmaOnce = false;
        for (const DirectiveLine& d : lx.directives) {
            std::string norm;
            for (const char c : d.text) {
                if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                    if (!norm.empty() && norm.back() != ' ') norm += ' ';
                } else {
                    norm += c;
                }
            }
            const bool isPragmaOnce = norm == "pragma once";
            if (firstDirectiveLine == 0) {
                firstDirectiveLine = d.line;
                firstIsPragmaOnce = isPragmaOnce;
            }
            if (isPragmaOnce) {
                ++pragmaCount;
                if (pragmaCount == 2) {
                    add(d.line, "pragma-once", "duplicate #pragma once");
                }
            }
        }
        if (pragmaCount == 0) {
            add(firstDirectiveLine == 0 ? 1 : firstDirectiveLine, "pragma-once",
                "header is missing #pragma once");
        } else if (!firstIsPragmaOnce) {
            add(firstDirectiveLine, "pragma-once",
                "#pragma once must be the first preprocessing directive");
        }
    }

    // include-hygiene.
    std::set<std::string> seen;
    for (const DirectiveLine& d : lx.directives) {
        if (d.text.rfind("include", 0) != 0) continue;
        std::string spec = d.text.substr(7);
        const std::size_t b = spec.find_first_not_of(" \t");
        if (b == std::string::npos) continue;
        spec = spec.substr(b);
        // Trim a trailing comment, then trailing whitespace.
        const std::size_t cpos = std::min(spec.find("//"), spec.find("/*"));
        if (cpos != std::string::npos) spec = spec.substr(0, cpos);
        const std::size_t e = spec.find_last_not_of(" \t");
        spec = e == std::string::npos ? "" : spec.substr(0, e + 1);
        if (spec.size() < 2) continue;

        if (!seen.insert(spec).second) {
            add(d.line, "include-hygiene", "duplicate include " + spec);
        }
        const std::string inner = spec.substr(1, spec.size() - 2);
        if (spec[0] == '"' && inner.find("../") != std::string::npos) {
            add(d.line, "include-hygiene",
                "parent-relative include " + spec + ": include project-root-relative paths");
        }
        if (spec[0] == '<') {
            const auto it = cCompatHeaders().find(inner);
            if (it != cCompatHeaders().end()) {
                add(d.line, "include-hygiene",
                    "C-compat header <" + inner + ">: use <" + it->second + ">");
            }
        }
    }
}

void checkComments(const std::string& path, const Lexed& lx, const Suppressions& sup,
                   std::vector<Finding>* out) {
    auto add = [&](int line, int col, const std::string& msg) {
        if (!suppressed(sup, line, "todo-format")) {
            out->push_back({path, line, col, "todo-format", msg});
        }
    };
    const std::string kTodo = "TODO";
    const std::string kFixme = "FIXME";
    const std::string kXxx = "XXX";
    for (const CommentSpan& cs : lx.comments) {
        // Track line offsets inside multi-line block comments.
        auto lineAt = [&](std::size_t off) {
            int l = cs.line;
            for (std::size_t k = 0; k < off && k < cs.text.size(); ++k) {
                if (cs.text[k] == '\n') ++l;
            }
            return l;
        };
        auto isWordAt = [&](std::size_t pos, const std::string& word) {
            if (pos > 0 && isIdentChar(cs.text[pos - 1])) return false;
            const std::size_t end = pos + word.size();
            if (end < cs.text.size() && isIdentChar(cs.text[end])) return false;
            return true;
        };
        for (const std::string* word : {&kFixme, &kXxx}) {
            for (std::size_t pos = cs.text.find(*word); pos != std::string::npos;
                 pos = cs.text.find(*word, pos + 1)) {
                if (isWordAt(pos, *word)) {
                    add(lineAt(pos), cs.col, *word + ": use TODO(owner): instead");
                }
            }
        }
        for (std::size_t pos = cs.text.find(kTodo); pos != std::string::npos;
             pos = cs.text.find(kTodo, pos + 1)) {
            if (!isWordAt(pos, kTodo)) continue;
            // Must match TODO(owner): …
            std::size_t k = pos + kTodo.size();
            bool ok = false;
            if (k < cs.text.size() && cs.text[k] == '(') {
                const std::size_t close = cs.text.find(')', k);
                if (close != std::string::npos && close > k + 1 &&
                    close + 1 < cs.text.size() && cs.text[close + 1] == ':') {
                    ok = true;
                }
            }
            if (!ok) {
                add(lineAt(pos), cs.col, "malformed TODO: write TODO(owner): description");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CLI helpers

bool isSourceExt(const std::string& ext) {
    return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" || ext == ".hh" ||
           ext == ".h";
}

bool isHeaderExt(const std::string& ext) {
    return ext == ".hpp" || ext == ".hh" || ext == ".h";
}

bool skippableDir(const std::string& name) {
    return name.empty() || name[0] == '.' || name.rfind("build", 0) == 0 ||
           name == "CMakeFiles" || name == "corpus";
}

bool underSrc(const std::string& path) {
    return path == "src" || path.rfind("src/", 0) == 0 || path.find("/src/") != std::string::npos;
}

bool readFile(const std::string& path, std::string* out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

std::string githubEscape(const std::string& s) {
    std::string out;
    for (const char c : s) {
        switch (c) {
            case '%': out += "%25"; break;
            case '\n': out += "%0A"; break;
            case '\r': out += "%0D"; break;
            default: out += c;
        }
    }
    return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface

std::vector<Finding> lintSource(const std::string& path, const std::string& source,
                                bool isHeader) {
    const Lexed lx = lex(source);
    const Suppressions sup = collectSuppressions(lx);
    std::vector<Finding> out;
    checkTokens(path, lx, sup, &out);
    checkDirectives(path, lx, sup, isHeader, &out);
    checkComments(path, lx, sup, &out);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<MetricUse> collectMetricNames(const std::string& path, const std::string& source) {
    const Lexed lx = lex(source);
    std::vector<MetricUse> out;
    for (const Token& t : lx.tokens) {
        if (t.kind == Token::Kind::String && isMetricName(t.text)) {
            out.push_back({path, t.line, t.col, t.text});
        }
    }
    return out;
}

std::vector<std::pair<std::string, int>> docMetricNames(const std::string& docText) {
    std::vector<std::pair<std::string, int>> out;
    std::set<std::string> seen;
    int line = 1;
    std::size_t i = 0;
    while (i < docText.size()) {
        const char c = docText[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (c == '`') {
            const std::size_t close = docText.find('`', i + 1);
            if (close == std::string::npos) break;
            const std::string span = docText.substr(i + 1, close - i - 1);
            if (span.find('\n') == std::string::npos && isMetricName(span) &&
                seen.insert(span).second) {
                out.emplace_back(span, line);
            }
            i = close + 1;
            continue;
        }
        ++i;
    }
    return out;
}

std::vector<Finding> lintMetricDrift(const std::vector<MetricUse>& uses,
                                     const std::string& docPath, const std::string& docText) {
    std::vector<Finding> out;
    const auto docNames = docMetricNames(docText);
    std::set<std::string> documented;
    for (const auto& [name, line] : docNames) documented.insert(name);

    std::set<std::string> used;
    std::set<std::string> reported;
    for (const MetricUse& u : uses) {
        used.insert(u.name);
        if (documented.count(u.name) == 0 && reported.insert(u.name).second) {
            out.push_back({u.path, u.line, u.col, "metric-doc-drift",
                           "metric '" + u.name + "' is not catalogued in " + docPath});
        }
    }
    for (const auto& [name, line] : docNames) {
        if (used.count(name) == 0) {
            out.push_back({docPath, line, 1, "metric-doc-drift",
                           "documented metric '" + name + "' is never used in src/"});
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string renderFinding(const Finding& f, const std::string& format) {
    if (format == "github") {
        return "::error file=" + f.path + ",line=" + std::to_string(f.line) +
               ",col=" + std::to_string(f.col) + ",title=rclint " + f.rule +
               "::" + githubEscape(f.message);
    }
    return f.path + ":" + std::to_string(f.line) + ":" + std::to_string(f.col) + ": [" +
           f.rule + "] " + f.message;
}

int runCli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
    std::string format = "text";
    std::string metricsDoc;
    bool metricCheck = true;
    std::vector<std::string> paths;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "--help" || a == "-h") {
            out << "usage: rclint [--format=text|github] [--metrics-doc PATH]\n"
                   "              [--no-metric-check] [--list-rules] PATH...\n"
                   "Lints .cpp/.hpp files (directories are walked recursively).\n"
                   "Exit: 0 clean, 1 findings, 2 usage/IO error.\n";
            return 0;
        }
        if (a == "--list-rules") {
            out << "banned-function    strcpy/strcat/sprintf/vsprintf/gets/rand/srand\n"
                   "banned-new-delete  raw new/delete outside RAII types\n"
                   "pragma-once        headers start with #pragma once, exactly once\n"
                   "include-hygiene    duplicate/parent-relative/C-compat includes\n"
                   "todo-format        TODO(owner): description; FIXME/XXX banned\n"
                   "metric-name        counter literals must end in _total\n"
                   "metric-doc-drift   rc_* literals in src/ <-> docs catalogue\n";
            return 0;
        }
        if (a.rfind("--format=", 0) == 0) {
            format = a.substr(9);
            if (format != "text" && format != "github") {
                err << "rclint: unknown format '" << format << "'\n";
                return 2;
            }
            continue;
        }
        if (a == "--metrics-doc") {
            if (i + 1 >= args.size()) {
                err << "rclint: --metrics-doc needs a path\n";
                return 2;
            }
            metricsDoc = args[++i];
            continue;
        }
        if (a.rfind("--metrics-doc=", 0) == 0) {
            metricsDoc = a.substr(14);
            continue;
        }
        if (a == "--no-metric-check") {
            metricCheck = false;
            continue;
        }
        if (a.rfind("--", 0) == 0) {
            err << "rclint: unknown option '" << a << "'\n";
            return 2;
        }
        paths.push_back(a);
    }

    if (paths.empty()) {
        err << "rclint: no input paths (try --help)\n";
        return 2;
    }

    // Collect files.
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    std::error_code ec;
    for (const std::string& p : paths) {
        if (fs::is_directory(p, ec)) {
            for (auto it = fs::recursive_directory_iterator(p, ec);
                 it != fs::recursive_directory_iterator(); it.increment(ec)) {
                if (ec) break;
                if (it->is_directory() && skippableDir(it->path().filename().string())) {
                    it.disable_recursion_pending();
                    continue;
                }
                if (it->is_regular_file() && isSourceExt(it->path().extension().string())) {
                    files.push_back(it->path().generic_string());
                }
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        } else {
            err << "rclint: cannot read '" << p << "'\n";
            return 2;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Finding> findings;
    std::vector<MetricUse> metricUses;
    for (const std::string& f : files) {
        std::string source;
        if (!readFile(f, &source)) {
            err << "rclint: cannot read '" << f << "'\n";
            return 2;
        }
        const std::string ext = fs::path(f).extension().string();
        std::vector<Finding> fileFindings = lintSource(f, source, isHeaderExt(ext));
        findings.insert(findings.end(), fileFindings.begin(), fileFindings.end());
        if (metricCheck && underSrc(f)) {
            std::vector<MetricUse> uses = collectMetricNames(f, source);
            metricUses.insert(metricUses.end(), uses.begin(), uses.end());
        }
    }

    if (metricCheck && !metricsDoc.empty()) {
        std::string docText;
        if (!readFile(metricsDoc, &docText)) {
            err << "rclint: cannot read metrics doc '" << metricsDoc << "'\n";
            return 2;
        }
        std::vector<Finding> drift = lintMetricDrift(metricUses, metricsDoc, docText);
        findings.insert(findings.end(), drift.begin(), drift.end());
    }

    std::sort(findings.begin(), findings.end());
    for (const Finding& f : findings) {
        out << renderFinding(f, format) << "\n";
    }
    if (!findings.empty()) {
        out << "rclint: " << findings.size() << " finding" << (findings.size() == 1 ? "" : "s")
            << " in " << files.size() << " files\n";
        return 1;
    }
    return 0;
}

}  // namespace rclint
