// rclint's lexer: a comment/string/preprocessor-aware C++ token stream.
//
// This is the shared substrate of the whole analysis pipeline. Every rule
// family — the per-file rules in lint.cpp, the determinism lints in
// nondet.cpp, the lock-order extraction in lockorder.cpp, and the include
// graph in tree.cpp — operates on the same Lexed view, so a file is read
// and tokenized exactly once per run even when a dozen analyses walk it.
//
// The lexer does no preprocessing and no semantics: it only guarantees
// that rules never fire inside comments, string/char literals (including
// raw strings), or preprocessor directives, and that `::` and `->` are
// kept whole so qualified/member access reads as one token.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace rclint {

struct Token {
    enum class Kind { Ident, String, Char, Number, Punct };
    Kind kind = Kind::Punct;
    std::string text;  // for String: the inner text (raw, escapes kept)
    int line = 1;
    int col = 1;
};

struct CommentSpan {
    std::string text;
    int line = 1;  // line the comment starts on
    int col = 1;
};

struct DirectiveLine {
    std::string text;  // after '#', continuations joined, trimmed
    int line = 1;
};

struct Lexed {
    std::vector<Token> tokens;
    std::vector<CommentSpan> comments;
    std::vector<DirectiveLine> directives;
};

Lexed lex(const std::string& src);

bool isIdentStart(char c);
bool isIdentChar(char c);

/// Given tokens[open] == `open` (e.g. "<", "(", "{"), returns the index
/// of the matching `close` token, or tokens.size() if unbalanced.
std::size_t matchForward(const std::vector<Token>& tokens, std::size_t open,
                         const std::string& openText, const std::string& closeText);

// ---------------------------------------------------------------------------
// Suppressions: // rclint:allow(rule[,rule...]) covers its own line and
// the line below; // rclint:allow-file(rule[,...]) covers the whole file.

struct Suppressions {
    std::set<std::string> fileRules;              // rclint:allow-file(...)
    std::map<int, std::set<std::string>> byLine;  // line -> rules (covers line and line+1)
};

Suppressions collectSuppressions(const Lexed& lx);

bool suppressed(const Suppressions& sup, int line, const std::string& rule);

}  // namespace rclint
