#include "lex.hpp"

#include <cctype>
#include <sstream>

namespace rclint {

bool isIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool isIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Lexed lex(const std::string& src) {
    Lexed out;
    std::size_t i = 0;
    int line = 1;
    int col = 1;
    bool lineHasToken = false;  // anything but whitespace seen on this line

    auto advance = [&](std::size_t n = 1) {
        for (std::size_t k = 0; k < n && i < src.size(); ++k) {
            if (src[i] == '\n') {
                ++line;
                col = 1;
                lineHasToken = false;
            } else {
                ++col;
            }
            ++i;
        }
    };
    auto peek = [&](std::size_t off = 0) -> char {
        return i + off < src.size() ? src[i + off] : '\0';
    };

    while (i < src.size()) {
        const char c = src[i];

        if (c == '\n' || std::isspace(static_cast<unsigned char>(c)) != 0) {
            advance();
            continue;
        }

        // Line comment.
        if (c == '/' && peek(1) == '/') {
            CommentSpan cs{"", line, col};
            while (i < src.size() && src[i] != '\n') {
                cs.text += src[i];
                advance();
            }
            out.comments.push_back(cs);
            continue;
        }
        // Block comment.
        if (c == '/' && peek(1) == '*') {
            CommentSpan cs{"", line, col};
            advance(2);
            cs.text = "/*";
            while (i < src.size() && !(src[i] == '*' && peek(1) == '/')) {
                cs.text += src[i];
                advance();
            }
            cs.text += "*/";
            advance(2);
            out.comments.push_back(cs);
            continue;
        }

        // Preprocessor directive: '#' first on the (logical) line.
        if (c == '#' && !lineHasToken) {
            DirectiveLine d{"", line};
            advance();  // consume '#'
            while (i < src.size()) {
                if (src[i] == '\\' && (peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n'))) {
                    d.text += ' ';
                    advance(peek(1) == '\n' ? 2 : 3);
                    continue;
                }
                if (src[i] == '\n') break;
                d.text += src[i];
                advance();
            }
            // Trim and collapse leading whitespace.
            const std::size_t b = d.text.find_first_not_of(" \t");
            d.text = b == std::string::npos ? "" : d.text.substr(b);
            out.directives.push_back(d);
            continue;
        }

        lineHasToken = true;

        // Number (handles digit separators: 1'000'000ull).
        if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
            Token t{Token::Kind::Number, "", line, col};
            while (i < src.size()) {
                const char d = src[i];
                if (isIdentChar(d) || d == '.' || d == '\'' ||
                    ((d == '+' || d == '-') && !t.text.empty() &&
                     (t.text.back() == 'e' || t.text.back() == 'E' || t.text.back() == 'p' ||
                      t.text.back() == 'P'))) {
                    t.text += d;
                    advance();
                } else {
                    break;
                }
            }
            out.tokens.push_back(t);
            continue;
        }

        // Identifier (possibly a string-literal prefix: R"(, u8"...).
        if (isIdentStart(c)) {
            Token t{Token::Kind::Ident, "", line, col};
            while (i < src.size() && isIdentChar(src[i])) {
                t.text += src[i];
                advance();
            }
            if (peek() == '"' && !t.text.empty() && t.text.back() == 'R') {
                // Raw string: R"delim( ... )delim"
                Token s{Token::Kind::String, "", line, col};
                advance();  // the quote
                std::string delim;
                while (i < src.size() && src[i] != '(') {
                    delim += src[i];
                    advance();
                }
                advance();  // '('
                const std::string closer = ")" + delim + "\"";
                while (i < src.size() && src.compare(i, closer.size(), closer) != 0) {
                    s.text += src[i];
                    advance();
                }
                advance(closer.size());
                out.tokens.push_back(s);
                continue;
            }
            if (peek() == '"' &&
                (t.text == "u8" || t.text == "u" || t.text == "U" || t.text == "L")) {
                // Prefixed ordinary string; fall through to the string path
                // below by not emitting the prefix as an identifier.
            } else {
                out.tokens.push_back(t);
                continue;
            }
        }

        // String literal.
        if (peek() == '"' || c == '"') {
            Token t{Token::Kind::String, "", line, col};
            advance();  // opening quote
            while (i < src.size() && src[i] != '"' && src[i] != '\n') {
                if (src[i] == '\\' && i + 1 < src.size()) {
                    t.text += src[i];
                    advance();
                }
                t.text += src[i];
                advance();
            }
            advance();  // closing quote
            out.tokens.push_back(t);
            continue;
        }

        // Character literal.
        if (c == '\'') {
            Token t{Token::Kind::Char, "", line, col};
            advance();
            while (i < src.size() && src[i] != '\'' && src[i] != '\n') {
                if (src[i] == '\\' && i + 1 < src.size()) advance();
                t.text += src[i];
                advance();
            }
            advance();
            out.tokens.push_back(t);
            continue;
        }

        // Punctuation; '->' and '::' are kept whole (the banned-function
        // rule needs to see qualified/member access as one token).
        {
            const int tokLine = line;
            const int tokCol = col;
            const bool arrow = c == '-' && peek(1) == '>';
            const bool scope = c == ':' && peek(1) == ':';
            std::string text = arrow ? std::string("->")
                               : scope ? std::string("::")
                                       : std::string(1, c);
            advance(arrow || scope ? 2 : 1);
            out.tokens.push_back({Token::Kind::Punct, std::move(text), tokLine, tokCol});
            continue;
        }
    }
    return out;
}

std::size_t matchForward(const std::vector<Token>& tokens, std::size_t open,
                         const std::string& openText, const std::string& closeText) {
    int depth = 0;
    for (std::size_t k = open; k < tokens.size(); ++k) {
        if (tokens[k].kind != Token::Kind::Punct) continue;
        if (tokens[k].text == openText) {
            ++depth;
        } else if (tokens[k].text == closeText) {
            --depth;
            if (depth == 0) return k;
        }
    }
    return tokens.size();
}

// ---------------------------------------------------------------------------
// Suppressions

namespace {

void parseAllowList(const std::string& text, std::size_t open, std::set<std::string>* into) {
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) return;
    std::string inner = text.substr(open + 1, close - open - 1);
    std::stringstream ss(inner);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
        const std::size_t b = rule.find_first_not_of(" \t");
        const std::size_t e = rule.find_last_not_of(" \t");
        if (b != std::string::npos) into->insert(rule.substr(b, e - b + 1));
    }
}

}  // namespace

Suppressions collectSuppressions(const Lexed& lx) {
    Suppressions out;
    for (const CommentSpan& cs : lx.comments) {
        static const std::string kAllow = "rclint:allow(";
        static const std::string kAllowFile = "rclint:allow-file(";
        std::size_t pos = cs.text.find(kAllowFile);
        if (pos != std::string::npos) {
            parseAllowList(cs.text, pos + kAllowFile.size() - 1, &out.fileRules);
            continue;
        }
        pos = cs.text.find(kAllow);
        if (pos != std::string::npos) {
            parseAllowList(cs.text, pos + kAllow.size() - 1, &out.byLine[cs.line]);
        }
    }
    return out;
}

bool suppressed(const Suppressions& sup, int line, const std::string& rule) {
    if (sup.fileRules.count(rule) > 0) return true;
    for (const int l : {line, line - 1}) {
        const auto it = sup.byLine.find(l);
        if (it != sup.byLine.end() && it->second.count(rule) > 0) return true;
    }
    return false;
}

}  // namespace rclint
