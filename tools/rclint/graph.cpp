#include "graph.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace rclint {

namespace {

std::vector<std::string> splitWords(const std::string& s) {
    std::vector<std::string> out;
    std::istringstream ss(s);
    std::string w;
    while (ss >> w) out.push_back(w);
    return out;
}

/// True when `path` lies under directory prefix `prefix`, treating the
/// prefix as whole path segments: "src/util" matches "src/util/x.hpp" and
/// "/repo/src/util/x.hpp" but not "src/utility/x.hpp".
bool underPrefix(const std::string& path, const std::string& prefix) {
    if (path.rfind(prefix + "/", 0) == 0 || path == prefix) return true;
    return path.find("/" + prefix + "/") != std::string::npos;
}

bool fileSuppressed(const std::map<std::string, const Suppressions*>& fileSup,
                    const std::string& path, int line, const std::string& rule) {
    const auto it = fileSup.find(path);
    return it != fileSup.end() && it->second != nullptr && suppressed(*it->second, line, rule);
}

std::string dirname(const std::string& p) {
    const std::size_t pos = p.find_last_of('/');
    return pos == std::string::npos ? "" : p.substr(0, pos);
}

}  // namespace

bool parseLayerManifest(const std::string& text, LayerManifest* out, std::string* err) {
    std::istringstream in(text);
    std::string rawLine;
    int lineNo = 0;
    while (std::getline(in, rawLine)) {
        ++lineNo;
        std::string line = rawLine;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line = line.substr(0, hash);
        // `layer 2: ip obs` / `module util: src/util` — the colon is
        // optional decoration.
        std::replace(line.begin(), line.end(), ':', ' ');
        std::vector<std::string> words = splitWords(line);
        if (words.empty()) continue;
        if (words[0] == "layer") {
            if (words.size() < 3) {
                *err = "layers.conf:" + std::to_string(lineNo) +
                       ": expected `layer <rank> <module>...`";
                return false;
            }
            int rank = 0;
            try {
                rank = std::stoi(words[1]);
            } catch (...) {
                *err = "layers.conf:" + std::to_string(lineNo) + ": bad rank '" + words[1] + "'";
                return false;
            }
            for (std::size_t k = 2; k < words.size(); ++k) out->rankOf[words[k]] = rank;
        } else if (words[0] == "module") {
            if (words.size() < 3) {
                *err = "layers.conf:" + std::to_string(lineNo) +
                       ": expected `module <name> <dir-prefix>...`";
                return false;
            }
            for (std::size_t k = 2; k < words.size(); ++k) {
                out->prefixesOf[words[1]].push_back(words[k]);
            }
        } else {
            *err = "layers.conf:" + std::to_string(lineNo) + ": unknown directive '" +
                   words[0] + "'";
            return false;
        }
    }
    for (const auto& [name, prefixes] : out->prefixesOf) {
        if (out->rankOf.count(name) == 0) {
            *err = "layers.conf: module '" + name + "' has no layer rank";
            return false;
        }
    }
    return true;
}

std::string moduleOf(const LayerManifest& m, const std::string& path) {
    std::string best;
    std::size_t bestLen = 0;
    for (const auto& [name, prefixes] : m.prefixesOf) {
        for (const std::string& prefix : prefixes) {
            if (prefix.size() > bestLen && underPrefix(path, prefix)) {
                best = name;
                bestLen = prefix.size();
            }
        }
    }
    return best;
}

std::vector<Finding> checkLayering(const LayerManifest& m, const std::vector<IncludeEdge>& edges,
                                   const std::map<std::string, const Suppressions*>& fileSup) {
    std::vector<Finding> out;
    for (const IncludeEdge& e : edges) {
        const std::string fromMod = moduleOf(m, e.from);
        const std::string toMod = moduleOf(m, e.to);
        if (fromMod.empty() || toMod.empty() || fromMod == toMod) continue;
        const int fromRank = m.rankOf.at(fromMod);
        const int toRank = m.rankOf.at(toMod);
        if (toRank <= fromRank) continue;
        if (fileSuppressed(fileSup, e.from, e.line, "layer-violation")) continue;
        out.push_back({e.from, e.line, 1, "layer-violation",
                       "module '" + fromMod + "' (layer " + std::to_string(fromRank) +
                           ") must not include '" + toMod + "' (layer " +
                           std::to_string(toRank) + "): " + e.to});
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Finding> checkIncludeCycles(const std::vector<IncludeEdge>& edges,
                                        const std::map<std::string, const Suppressions*>& fileSup) {
    // Edge map with first-in-sorted-order anchors.
    std::map<std::pair<std::string, std::string>, int> edgeLine;
    std::map<std::string, std::vector<std::string>> adj;
    std::set<std::string> nodes;
    for (const IncludeEdge& e : edges) {
        if (edgeLine.emplace(std::make_pair(e.from, e.to), e.line).second) {
            adj[e.from].push_back(e.to);
        }
        nodes.insert(e.from);
        nodes.insert(e.to);
    }
    for (auto& [from, tos] : adj) std::sort(tos.begin(), tos.end());

    std::vector<Finding> out;
    std::map<std::string, int> color;
    std::set<std::set<std::string>> reported;
    for (const std::string& start : nodes) {
        if (color[start] != 0) continue;
        std::vector<std::pair<std::string, std::size_t>> stack{{start, 0}};
        std::vector<std::string> pathStack{start};
        color[start] = 1;
        while (!stack.empty()) {
            auto& [node, childIdx] = stack.back();
            const auto& children = adj[node];
            if (childIdx >= children.size()) {
                color[node] = 2;
                stack.pop_back();
                pathStack.pop_back();
                continue;
            }
            const std::string next = children[childIdx++];
            if (color[next] == 1) {
                const auto it = std::find(pathStack.begin(), pathStack.end(), next);
                std::vector<std::string> cycle(it, pathStack.end());
                std::set<std::string> keySet(cycle.begin(), cycle.end());
                if (reported.insert(keySet).second) {
                    const auto minIt = std::min_element(cycle.begin(), cycle.end());
                    std::rotate(cycle.begin(), minIt, cycle.end());
                    std::string desc;
                    for (const std::string& f : cycle) desc += f + " -> ";
                    desc += cycle.front();
                    const std::string& anchor = cycle.front();
                    const std::string& target = cycle.size() > 1 ? cycle[1] : cycle.front();
                    const int line = edgeLine.at({anchor, target});
                    if (!fileSuppressed(fileSup, anchor, line, "include-cycle")) {
                        out.push_back({anchor, line, 1, "include-cycle",
                                       "include cycle: " + desc});
                    }
                }
            } else if (color[next] == 0) {
                color[next] = 1;
                stack.emplace_back(next, 0);
                pathStack.push_back(next);
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string renderIncludeGraphDot(const std::vector<std::string>& files,
                                  const std::vector<IncludeEdge>& edges,
                                  const LayerManifest* manifest) {
    // Shorten node labels by the longest common directory prefix.
    std::string common;
    for (const std::string& f : files) {
        const std::string dir = dirname(f) + "/";
        if (common.empty()) {
            common = dir;
        } else {
            std::size_t k = 0;
            while (k < common.size() && k < dir.size() && common[k] == dir[k]) ++k;
            // Back off to a directory boundary.
            while (k > 0 && common[k - 1] != '/') --k;
            common = common.substr(0, k);
        }
    }
    auto shorten = [&](const std::string& p) {
        return p.rfind(common, 0) == 0 ? p.substr(common.size()) : p;
    };

    std::ostringstream dot;
    dot << "// generated by rclint --graph-out; render with `dot -Tsvg`\n";
    dot << "digraph includes {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";

    std::vector<std::string> sorted = files;
    std::sort(sorted.begin(), sorted.end());
    if (manifest != nullptr && !manifest->empty()) {
        std::map<std::string, std::vector<std::string>> byModule;
        for (const std::string& f : sorted) byModule[moduleOf(*manifest, f)].push_back(f);
        for (const auto& [mod, members] : byModule) {
            if (mod.empty()) continue;
            dot << "  subgraph cluster_" << mod << " {\n    label=\"" << mod << " (layer "
                << manifest->rankOf.at(mod) << ")\";\n";
            for (const std::string& f : members) dot << "    \"" << shorten(f) << "\";\n";
            dot << "  }\n";
        }
        for (const std::string& f : byModule[""]) dot << "  \"" << shorten(f) << "\";\n";
    } else {
        for (const std::string& f : sorted) dot << "  \"" << shorten(f) << "\";\n";
    }

    std::vector<std::pair<std::string, std::string>> uniq;
    for (const IncludeEdge& e : edges) uniq.emplace_back(shorten(e.from), shorten(e.to));
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (const auto& [from, to] : uniq) {
        dot << "  \"" << from << "\" -> \"" << to << "\";\n";
    }
    dot << "}\n";
    return dot.str();
}

}  // namespace rclint
