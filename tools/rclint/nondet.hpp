// Determinism lints (the "nondet" rule family).
//
// Every PR since the chaos engine has defended one invariant: reports,
// transcripts, and postmortem bundles are byte-identical per seed at
// every thread count. These rules statically reject the code shapes that
// break it:
//
//   nondet-iteration      range-for / .begin() iteration over a
//                         std::unordered_map/set in a TU that also calls
//                         a serialize/transcript/hash-emit function.
//                         A *sorted drain* — the loop only pushes into a
//                         local container that is std::sort-ed later in
//                         the same TU — is recognized and allowed.
//                         Cross-file: containers declared in any
//                         transitively included project header count.
//   nondet-time           std::chrono::system_clock, and calls to time()
//                         / clock(): wall-clock reads outside the
//                         injectable obs clock (src/obs/clock.hpp).
//                         steady_clock is allowed (monotonic measurement,
//                         routed through obs::TimeSource).
//   nondet-pointer-order  std::less<T*> / std::hash<T*>, and lambda
//                         comparators that order two raw-pointer
//                         parameters with `<` — address order varies run
//                         to run under ASLR and allocator choice.
//
// All three are heuristic token-level analyses (see docs/STATIC_ANALYSIS.md
// for the exact shapes recognized); `rclint:allow(...)` applies as usual.
#pragma once

#include <string>
#include <vector>

#include "lex.hpp"
#include "lint.hpp"

namespace rclint {

/// One iteration site over a possibly-unordered container.
struct IterationSite {
    int line = 0;
    int col = 0;
    std::vector<std::string> exprIdents;  // identifiers in the range expression
    bool sortedDrain = false;             // loop fills a container that is sorted later
    bool beginCall = false;               // `x.begin()` iterator loop, not a range-for
};

/// Per-file facts the cross-file nondet-iteration pass consumes.
struct NondetFacts {
    /// Identifiers declared in this file with an unordered container type
    /// (variables, members, and functions returning one).
    std::vector<std::string> unorderedIdents;
    /// True when the file calls a serialize/transcript/hash-emit-shaped
    /// function — the gate for nondet-iteration.
    bool emits = false;
    std::vector<IterationSite> iterations;
};

/// Extracts declaration/emit/iteration facts from one token stream.
NondetFacts extractNondetFacts(const Lexed& lx);

/// Per-file rules: nondet-time and nondet-pointer-order. Appends findings.
void checkNondetPerFile(const std::string& path, const Lexed& lx, const Suppressions& sup,
                        std::vector<Finding>* out);

/// Cross-file rule: flags iteration sites in `facts` whose range
/// expression names an identifier in `unordered` (this file's own
/// declarations plus everything from its transitive include closure),
/// unless the site drains into a sorted container or is suppressed.
void checkNondetIteration(const std::string& path, const NondetFacts& facts,
                          const std::vector<std::string>& unordered, const Suppressions& sup,
                          std::vector<Finding>* out);

}  // namespace rclint
