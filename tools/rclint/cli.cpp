// The rclint command line: argument parsing and the orchestration of the
// whole-tree pipeline (tree.hpp). Kept apart from the analyses so the
// golden tests can drive the exact CLI in-process through runCli.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph.hpp"
#include "lint.hpp"
#include "lockorder.hpp"
#include "nondet.hpp"
#include "tree.hpp"

namespace rclint {

namespace {

bool underSrc(const std::string& path) {
    return path == "src" || path.rfind("src/", 0) == 0 || path.find("/src/") != std::string::npos;
}

bool readFile(const std::string& path, std::string* out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

struct Options {
    std::string format = "text";
    std::string metricsDoc;
    std::string layersPath;
    std::string graphOut;
    std::string benchJson;
    double benchBudgetMs = 0.0;  // 0: no budget
    int threads = 0;             // 0: hardware concurrency
    bool metricCheck = true;
    std::vector<std::string> paths;
};

/// Everything one full tree analysis produces. Rendered output is built
/// from this alone, so two results with equal fields render identically —
/// the property the --bench-json self-check asserts across thread counts.
struct TreeResult {
    std::vector<std::string> files;
    std::vector<Finding> findings;
    std::vector<IncludeEdge> edges;
    std::string error;  // non-empty: I/O failure, exit 2
};

TreeResult analyzeTree(const Options& opt, const LayerManifest* manifest, int threads) {
    TreeResult res;
    if (!collectFiles(opt.paths, &res.files, &res.error)) return res;

    std::vector<FileUnit> units = loadUnits(res.files, threads);
    for (const FileUnit& u : units) {
        if (!u.error.empty()) {
            res.error = u.error;
            return res;
        }
    }

    std::vector<MetricUse> metricUses;
    std::map<std::string, const Suppressions*> fileSup;
    for (const FileUnit& u : units) {
        res.findings.insert(res.findings.end(), u.findings.begin(), u.findings.end());
        if (opt.metricCheck && underSrc(u.path)) {
            metricUses.insert(metricUses.end(), u.metrics.begin(), u.metrics.end());
        }
        fileSup[u.path] = &u.sup;
    }

    if (opt.metricCheck && !opt.metricsDoc.empty()) {
        std::string docText;
        if (!readFile(opt.metricsDoc, &docText)) {
            res.error = "cannot read metrics doc '" + opt.metricsDoc + "'";
            return res;
        }
        std::vector<Finding> drift = lintMetricDrift(metricUses, opt.metricsDoc, docText);
        res.findings.insert(res.findings.end(), drift.begin(), drift.end());
    }

    // Cross-file analyses over the resolved include graph.
    res.edges = resolveIncludes(units);
    {
        std::vector<Finding> cyc = checkIncludeCycles(res.edges, fileSup);
        res.findings.insert(res.findings.end(), cyc.begin(), cyc.end());
    }
    if (manifest != nullptr && !manifest->empty()) {
        std::vector<Finding> lay = checkLayering(*manifest, res.edges, fileSup);
        res.findings.insert(res.findings.end(), lay.begin(), lay.end());
    }

    // Determinism lint: each file sees unordered declarations from its own
    // text plus every transitively included scanned header.
    const auto closure = unorderedClosure(units, res.edges);
    for (const FileUnit& u : units) {
        const auto it = closure.find(u.path);
        static const std::vector<std::string> kNone;
        checkNondetIteration(u.path, u.nondet, it == closure.end() ? kNone : it->second, u.sup,
                             &res.findings);
    }

    // Lock-order: merge every file's nested-guard edges into one graph.
    std::vector<LockEdge> lockEdges;
    for (const FileUnit& u : units) {
        lockEdges.insert(lockEdges.end(), u.lockEdges.begin(), u.lockEdges.end());
    }
    {
        std::vector<Finding> lo = checkLockOrder(lockEdges);
        res.findings.insert(res.findings.end(), lo.begin(), lo.end());
    }

    std::sort(res.findings.begin(), res.findings.end());
    return res;
}

std::string renderResult(const TreeResult& res, const std::string& format) {
    std::ostringstream out;
    for (const Finding& f : res.findings) {
        out << renderFinding(f, format) << "\n";
    }
    if (!res.findings.empty()) {
        out << "rclint: " << res.findings.size() << " finding"
            << (res.findings.size() == 1 ? "" : "s") << " in " << res.files.size() << " files\n";
    }
    return out.str();
}

int exitCode(const TreeResult& res) {
    if (res.findings.empty()) return 0;
    for (const Finding& f : res.findings) {
        // A potential deadlock is a harder failure than a style finding.
        if (f.rule == "lock-order") return 2;
    }
    return 1;
}

double msSince(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

int runCli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
    Options opt;

    auto takeValue = [&](const std::string& a, const std::string& flag, std::size_t* i,
                         std::string* value) {
        if (a == flag) {
            if (*i + 1 >= args.size()) {
                err << "rclint: " << flag << " needs a value\n";
                return 2;
            }
            *value = args[++*i];
            return 1;
        }
        if (a.rfind(flag + "=", 0) == 0) {
            *value = a.substr(flag.size() + 1);
            return 1;
        }
        return 0;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "--help" || a == "-h") {
            out << "usage: rclint [--format=text|github] [--metrics-doc PATH]\n"
                   "              [--layers PATH] [--graph-out PATH] [--threads N]\n"
                   "              [--bench-json PATH] [--bench-budget-ms N]\n"
                   "              [--no-metric-check] [--list-rules] PATH...\n"
                   "Lints .cpp/.hpp files (directories are walked recursively).\n"
                   "Exit: 0 clean, 1 findings, 2 usage/IO error or lock-order cycle.\n";
            return 0;
        }
        if (a == "--list-rules") {
            out << "banned-function    strcpy/strcat/sprintf/vsprintf/gets/rand/srand\n"
                   "banned-new-delete  raw new/delete outside RAII types\n"
                   "pragma-once        headers start with #pragma once, exactly once\n"
                   "include-hygiene    duplicate/parent-relative/C-compat includes\n"
                   "todo-format        TODO(owner): description; FIXME/XXX banned\n"
                   "metric-name        counter literals must end in _total\n"
                   "metric-doc-drift   rc_* literals in src/ <-> docs catalogue\n"
                   "layer-violation    include crosses the --layers manifest upward\n"
                   "include-cycle      cycle in the quoted-include graph\n"
                   "nondet-iteration   unordered iteration in a serializing TU\n"
                   "nondet-time        system_clock/time()/clock() wall-clock reads\n"
                   "nondet-pointer-order  ordering or hashing raw pointers\n"
                   "lock-order         cycle in the LockGuard nesting graph (exit 2)\n";
            return 0;
        }
        if (a.rfind("--format=", 0) == 0) {
            opt.format = a.substr(9);
            if (opt.format != "text" && opt.format != "github") {
                err << "rclint: unknown format '" << opt.format << "'\n";
                return 2;
            }
            continue;
        }
        int r = takeValue(a, "--metrics-doc", &i, &opt.metricsDoc);
        if (r == 2) return 2;
        if (r == 1) continue;
        r = takeValue(a, "--layers", &i, &opt.layersPath);
        if (r == 2) return 2;
        if (r == 1) continue;
        r = takeValue(a, "--graph-out", &i, &opt.graphOut);
        if (r == 2) return 2;
        if (r == 1) continue;
        r = takeValue(a, "--bench-json", &i, &opt.benchJson);
        if (r == 2) return 2;
        if (r == 1) continue;
        std::string num;
        r = takeValue(a, "--threads", &i, &num);
        if (r == 2) return 2;
        if (r == 1) {
            try {
                opt.threads = std::stoi(num);
            } catch (...) {
                opt.threads = -1;
            }
            if (opt.threads < 1) {
                err << "rclint: --threads needs a positive integer\n";
                return 2;
            }
            continue;
        }
        r = takeValue(a, "--bench-budget-ms", &i, &num);
        if (r == 2) return 2;
        if (r == 1) {
            try {
                opt.benchBudgetMs = std::stod(num);
            } catch (...) {
                opt.benchBudgetMs = -1.0;
            }
            if (opt.benchBudgetMs <= 0.0) {
                err << "rclint: --bench-budget-ms needs a positive number\n";
                return 2;
            }
            continue;
        }
        if (a == "--no-metric-check") {
            opt.metricCheck = false;
            continue;
        }
        if (a.rfind("--", 0) == 0) {
            err << "rclint: unknown option '" << a << "'\n";
            return 2;
        }
        opt.paths.push_back(a);
    }

    if (opt.paths.empty()) {
        err << "rclint: no input paths (try --help)\n";
        return 2;
    }

    LayerManifest manifest;
    if (!opt.layersPath.empty()) {
        std::string text;
        if (!readFile(opt.layersPath, &text)) {
            err << "rclint: cannot read layer manifest '" << opt.layersPath << "'\n";
            return 2;
        }
        std::string perr;
        if (!parseLayerManifest(text, &manifest, &perr)) {
            err << "rclint: " << perr << "\n";
            return 2;
        }
    }

    const unsigned hw = std::thread::hardware_concurrency();
    const int defaultThreads = hw == 0 ? 1 : static_cast<int>(hw);
    const int threads = opt.threads > 0 ? opt.threads : defaultThreads;

    TreeResult res;
    if (!opt.benchJson.empty()) {
        // Bench guard: run the identical analysis sequentially and fanned
        // out, assert byte-identical renderings, and record both timings.
        const auto t0 = std::chrono::steady_clock::now();
        const TreeResult seq = analyzeTree(opt, &manifest, 1);
        const double seqMs = msSince(t0);
        if (!seq.error.empty()) {
            err << "rclint: " << seq.error << "\n";
            return 2;
        }
        const auto t1 = std::chrono::steady_clock::now();
        res = analyzeTree(opt, &manifest, threads);
        const double thrMs = msSince(t1);
        if (!res.error.empty()) {
            err << "rclint: " << res.error << "\n";
            return 2;
        }
        const bool identical = renderResult(seq, opt.format) == renderResult(res, opt.format);
        std::ofstream js(opt.benchJson, std::ios::binary | std::ios::trunc);
        if (!js) {
            err << "rclint: cannot write '" << opt.benchJson << "'\n";
            return 2;
        }
        js << "{\n"
           << "  \"bench\": \"rclint_tree_scan\",\n"
           << "  \"files\": " << res.files.size() << ",\n"
           << "  \"threads\": " << threads << ",\n"
           << "  \"sequential_ms\": " << static_cast<long long>(seqMs * 100.0 + 0.5) / 100.0
           << ",\n"
           << "  \"threaded_ms\": " << static_cast<long long>(thrMs * 100.0 + 0.5) / 100.0
           << ",\n"
           << "  \"identical_output\": " << (identical ? "true" : "false") << "\n"
           << "}\n";
        js.close();
        if (!identical) {
            err << "rclint: threaded output diverged from sequential output\n";
            return 2;
        }
        if (opt.benchBudgetMs > 0.0 && thrMs > opt.benchBudgetMs) {
            err << "rclint: threaded scan took " << thrMs << " ms, over the "
                << opt.benchBudgetMs << " ms budget\n";
            return 2;
        }
    } else {
        res = analyzeTree(opt, &manifest, threads);
        if (!res.error.empty()) {
            err << "rclint: " << res.error << "\n";
            return 2;
        }
    }

    if (!opt.graphOut.empty()) {
        std::ofstream dot(opt.graphOut, std::ios::binary | std::ios::trunc);
        if (!dot) {
            err << "rclint: cannot write '" << opt.graphOut << "'\n";
            return 2;
        }
        dot << renderIncludeGraphDot(res.files, res.edges,
                                     manifest.empty() ? nullptr : &manifest);
    }

    out << renderResult(res, opt.format);
    return exitCode(res);
}

}  // namespace rclint
