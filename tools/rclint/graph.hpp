// Layering conformance and include-graph analysis.
//
// The manifest (tools/rclint/layers.conf) declares the tree's layer
// architecture as data:
//
//   # lower ranks must not include higher ranks
//   layer 1: util
//   layer 2: ip obs
//   ...
//   module util: src/util
//   module tools: tools
//
// A `module` line assigns files to a module by directory prefix (matched
// as a path-segment prefix, so absolute and relative invocations agree).
// A `layer` line assigns each module its rank. Rules:
//
//   layer-violation   a file in module A includes a file in module B with
//                     rank(B) > rank(A). Same-rank peer includes are
//                     allowed (ip and obs are siblings); the finding is
//                     anchored at the include directive, so the usual
//                     rclint:allow(layer-violation) applies there.
//   include-cycle     a strongly connected component in the file-level
//                     `#include "..."` graph (independent of the
//                     manifest; runs whenever more than one file is
//                     analyzed). One finding per cycle.
//
// `--graph-out FILE` writes the resolved include graph as Graphviz DOT,
// clustered by module when a manifest is loaded — the generated figure
// referenced from docs/STATIC_ANALYSIS.md.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lex.hpp"
#include "lint.hpp"

namespace rclint {

struct LayerManifest {
    /// module name -> rank (1 = bottom).
    std::map<std::string, int> rankOf;
    /// module name -> directory prefixes.
    std::map<std::string, std::vector<std::string>> prefixesOf;

    bool empty() const { return rankOf.empty(); }
};

/// Parses layers.conf text. On malformed input returns false and sets
/// `err` to a one-line description.
bool parseLayerManifest(const std::string& text, LayerManifest* out, std::string* err);

/// Module owning `path` under the manifest (longest matching prefix), or
/// "" when no prefix matches.
std::string moduleOf(const LayerManifest& m, const std::string& path);

/// One resolved include edge: includer file -> included file.
struct IncludeEdge {
    std::string from;
    std::string to;
    int line = 0;  // line of the #include in `from`
};

/// layer-violation findings over resolved edges. `fileSup` provides the
/// per-file suppressions (keyed by path) so allows at the include line work.
std::vector<Finding> checkLayering(const LayerManifest& m, const std::vector<IncludeEdge>& edges,
                                   const std::map<std::string, const Suppressions*>& fileSup);

/// include-cycle findings: one per strongly connected component of the
/// file graph (including self-loops).
std::vector<Finding> checkIncludeCycles(const std::vector<IncludeEdge>& edges,
                                        const std::map<std::string, const Suppressions*>& fileSup);

/// Renders the include graph as deterministic Graphviz DOT. Node names
/// are shortened by the longest common directory prefix; when `manifest`
/// is non-null, nodes are grouped into per-module clusters labeled with
/// their rank.
std::string renderIncludeGraphDot(const std::vector<std::string>& files,
                                  const std::vector<IncludeEdge>& edges,
                                  const LayerManifest* manifest);

}  // namespace rclint
