#include "nondet.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace rclint {

namespace {

bool isUnorderedContainer(const std::string& s) {
    return s == "unordered_map" || s == "unordered_set" || s == "unordered_multimap" ||
           s == "unordered_multiset";
}

std::string toLower(const std::string& s) {
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

/// Function-name shapes that turn per-process state into output the
/// differential tests compare byte-for-byte. Substring match, lowercase.
constexpr const char* kEmitShapes[] = {
    "serialize", "serialise", "transcript", "postmortem", "render",
    "digest",    "sha256",    "dump",       "emit",       "write",
    "print",     "report",    "hash",
};

bool isEmitName(const std::string& ident) {
    const std::string low = toLower(ident);
    for (const char* shape : kEmitShapes) {
        if (low.find(shape) != std::string::npos) return true;
    }
    return false;
}

bool isDrainMethod(const std::string& s) {
    return s == "push_back" || s == "emplace_back" || s == "insert" || s == "emplace" ||
           s == "append" || s == "push";
}

/// True when `sort` is called later in the token stream (from `from`)
/// with any of `targets` inside its argument list.
bool sortedLater(const std::vector<Token>& toks, std::size_t from,
                 const std::set<std::string>& targets) {
    if (targets.empty()) return false;
    for (std::size_t k = from; k + 1 < toks.size(); ++k) {
        if (toks[k].kind != Token::Kind::Ident || toks[k].text != "sort") continue;
        if (toks[k + 1].text != "(") continue;
        const std::size_t close = matchForward(toks, k + 1, "(", ")");
        for (std::size_t a = k + 2; a < close && a < toks.size(); ++a) {
            if (toks[a].kind == Token::Kind::Ident && targets.count(toks[a].text) > 0) {
                return true;
            }
        }
    }
    return false;
}

/// End index (exclusive) of the loop body that starts right after the
/// closing paren at `closeParen`: a balanced {...} block or one statement.
std::size_t bodyEnd(const std::vector<Token>& toks, std::size_t closeParen) {
    const std::size_t t = closeParen + 1;
    if (t >= toks.size()) return toks.size();
    if (toks[t].kind == Token::Kind::Punct && toks[t].text == "{") {
        const std::size_t close = matchForward(toks, t, "{", "}");
        return close == toks.size() ? toks.size() : close + 1;
    }
    int depth = 0;
    for (std::size_t k = t; k < toks.size(); ++k) {
        if (toks[k].kind != Token::Kind::Punct) continue;
        if (toks[k].text == "(" || toks[k].text == "{" || toks[k].text == "[") ++depth;
        if (toks[k].text == ")" || toks[k].text == "}" || toks[k].text == "]") --depth;
        if (toks[k].text == ";" && depth == 0) return k + 1;
    }
    return toks.size();
}

/// Containers the span [from, to) fills via push_back/insert/emplace/...
std::set<std::string> drainTargets(const std::vector<Token>& toks, std::size_t from,
                                   std::size_t to) {
    std::set<std::string> out;
    for (std::size_t k = from; k + 3 < toks.size() && k + 3 < to; ++k) {
        if (toks[k].kind == Token::Kind::Ident && toks[k + 1].text == "." &&
            toks[k + 2].kind == Token::Kind::Ident && isDrainMethod(toks[k + 2].text) &&
            toks[k + 3].text == "(") {
            out.insert(toks[k].text);
        }
    }
    return out;
}

}  // namespace

NondetFacts extractNondetFacts(const Lexed& lx) {
    NondetFacts facts;
    const auto& toks = lx.tokens;

    for (std::size_t k = 0; k < toks.size(); ++k) {
        const Token& t = toks[k];
        if (t.kind != Token::Kind::Ident) continue;

        // Declarations: std::unordered_map<K, V> name — also function
        // declarations returning one (iterating the returned temporary is
        // just as order-unstable as iterating a member).
        if (isUnorderedContainer(t.text) && k + 1 < toks.size() && toks[k + 1].text == "<") {
            const std::size_t close = matchForward(toks, k + 1, "<", ">");
            std::size_t n = close + 1;
            while (n < toks.size() && toks[n].kind == Token::Kind::Punct &&
                   (toks[n].text == "&" || toks[n].text == "*")) {
                ++n;
            }
            if (n < toks.size() && toks[n].kind == Token::Kind::Ident &&
                toks[n].text != "const" && toks[n].text != "operator") {
                facts.unorderedIdents.push_back(toks[n].text);
            }
            continue;
        }

        // Emit gate: any call to a serialize/transcript/hash-emit-shaped
        // function anywhere in the file.
        if (!facts.emits && k + 1 < toks.size() && toks[k + 1].text == "(" &&
            isEmitName(t.text)) {
            facts.emits = true;
        }

        // Range-for: for ( decl : expr ) body
        if (t.text == "for" && k + 1 < toks.size() && toks[k + 1].text == "(") {
            const std::size_t close = matchForward(toks, k + 1, "(", ")");
            if (close == toks.size()) continue;
            // The range-for colon: a lone ':' at paren depth 1 ('::' is one
            // merged token, so a bare ':' is unambiguous).
            std::size_t colon = toks.size();
            int depth = 0;
            for (std::size_t p = k + 1; p < close; ++p) {
                if (toks[p].kind != Token::Kind::Punct) continue;
                if (toks[p].text == "(" || toks[p].text == "[" || toks[p].text == "{") ++depth;
                if (toks[p].text == ")" || toks[p].text == "]" || toks[p].text == "}") --depth;
                if (toks[p].text == ":" && depth == 1) {
                    colon = p;
                    break;
                }
            }
            if (colon == toks.size()) continue;
            IterationSite site;
            site.line = t.line;
            site.col = t.col;
            for (std::size_t p = colon + 1; p < close; ++p) {
                if (toks[p].kind == Token::Kind::Ident) site.exprIdents.push_back(toks[p].text);
            }
            const std::size_t end = bodyEnd(toks, close);
            site.sortedDrain = sortedLater(toks, end, drainTargets(toks, close + 1, end));
            facts.iterations.push_back(std::move(site));
            continue;
        }

        // Iterator-style: x.begin() — covers explicit iterator loops and
        // order-sensitive algorithm calls. `vector<K> keys(m.begin(),
        // m.end()); sort(keys...)` is the one-statement sorted drain: the
        // receiving variable counts as the drain target.
        if (t.text == "begin" && k >= 2 && toks[k - 1].text == "." &&
            toks[k - 2].kind == Token::Kind::Ident && k + 1 < toks.size() &&
            toks[k + 1].text == "(") {
            IterationSite site;
            site.line = toks[k - 2].line;
            site.col = toks[k - 2].col;
            site.exprIdents.push_back(toks[k - 2].text);
            site.beginCall = true;
            std::set<std::string> drain;
            if (k >= 4 && toks[k - 3].text == "(" && toks[k - 4].kind == Token::Kind::Ident) {
                drain.insert(toks[k - 4].text);
            }
            site.sortedDrain = sortedLater(toks, k + 1, drain);
            facts.iterations.push_back(std::move(site));
        }
    }
    return facts;
}

void checkNondetPerFile(const std::string& path, const Lexed& lx, const Suppressions& sup,
                        std::vector<Finding>* out) {
    const auto& toks = lx.tokens;
    auto add = [&](int line, int col, const std::string& rule, const std::string& msg) {
        if (!suppressed(sup, line, rule)) out->push_back({path, line, col, rule, msg});
    };

    for (std::size_t k = 0; k < toks.size(); ++k) {
        const Token& t = toks[k];
        if (t.kind != Token::Kind::Ident) continue;
        const std::string next = k + 1 < toks.size() ? toks[k + 1].text : std::string();

        // --- nondet-time -----------------------------------------------
        if (t.text == "system_clock") {
            add(t.line, t.col, "nondet-time",
                "system_clock: wall-clock reads break per-seed reproducibility; "
                "use the injectable obs clock (obs/clock.hpp)");
            continue;
        }
        if ((t.text == "time" || t.text == "clock") && next == "(") {
            const Token* prev = k > 0 ? &toks[k - 1] : nullptr;
            const bool member = prev != nullptr && (prev->text == "." || prev->text == "->");
            const bool qualified = prev != nullptr && prev->text == "::";
            const bool stdQualified = qualified && k >= 2 && toks[k - 2].text == "std";
            // `SimClock clock(5);` and `Foo* time(...)` are declarations,
            // not wall-clock reads.
            const bool declaration =
                prev != nullptr && (prev->kind == Token::Kind::Ident || prev->text == ">" ||
                                    prev->text == "*" || prev->text == "&");
            if (!member && !declaration && (!qualified || stdQualified)) {
                add(t.line, t.col, "nondet-time",
                    t.text + "(): wall-clock read breaks per-seed reproducibility; "
                    "use the injectable obs clock (obs/clock.hpp) or the simulated "
                    "protocol clock (util/time.hpp)");
            }
            continue;
        }

        // --- nondet-pointer-order --------------------------------------
        if ((t.text == "less" || t.text == "hash") && k >= 2 && toks[k - 1].text == "::" &&
            toks[k - 2].text == "std" && next == "<") {
            const std::size_t close = matchForward(toks, k + 1, "<", ">");
            bool pointerArg = false;
            for (std::size_t p = k + 2; p < close && p < toks.size(); ++p) {
                if (toks[p].kind == Token::Kind::Punct && toks[p].text == "*") {
                    pointerArg = true;
                    break;
                }
            }
            if (pointerArg) {
                add(t.line, t.col, "nondet-pointer-order",
                    "std::" + t.text + " over a raw pointer type " +
                        (t.text == "less" ? "orders by address" : "hashes the address") +
                        ", which varies run to run; key on a stable field instead");
            }
            continue;
        }
    }

    // Lambda comparators over raw-pointer parameters: [..](T* a, U* b) {
    // ... a < b ... }.
    for (std::size_t k = 0; k < toks.size(); ++k) {
        if (toks[k].kind != Token::Kind::Punct || toks[k].text != "[") continue;
        if (k > 0) {
            const Token& prev = toks[k - 1];
            const bool subscript = prev.kind == Token::Kind::Ident ||
                                   prev.kind == Token::Kind::Number ||
                                   prev.kind == Token::Kind::String || prev.text == ")" ||
                                   prev.text == "]";
            if (subscript) continue;
        }
        const std::size_t captureClose = matchForward(toks, k, "[", "]");
        if (captureClose + 1 >= toks.size() || toks[captureClose + 1].text != "(") continue;
        const std::size_t paramClose = matchForward(toks, captureClose + 1, "(", ")");
        if (paramClose == toks.size()) continue;

        // Split the parameter list on top-level commas; a parameter is
        // pointer-typed when it contains a '*', and its name is its last
        // identifier.
        std::set<std::string> pointerParams;
        std::size_t paramStart = captureClose + 2;
        int depth = 0;
        for (std::size_t p = captureClose + 2; p <= paramClose; ++p) {
            const bool atEnd = p == paramClose;
            if (!atEnd && toks[p].kind == Token::Kind::Punct) {
                if (toks[p].text == "(" || toks[p].text == "<" || toks[p].text == "[") ++depth;
                if (toks[p].text == ")" || toks[p].text == ">" || toks[p].text == "]") --depth;
            }
            if (atEnd || (toks[p].text == "," && depth == 0)) {
                bool pointer = false;
                std::string name;
                for (std::size_t q = paramStart; q < p; ++q) {
                    if (toks[q].kind == Token::Kind::Punct && toks[q].text == "*") pointer = true;
                    if (toks[q].kind == Token::Kind::Ident) name = toks[q].text;
                }
                if (pointer && !name.empty()) pointerParams.insert(name);
                paramStart = p + 1;
            }
        }
        if (pointerParams.size() < 2) continue;

        // Body: the next '{' block after the parameter list.
        std::size_t bodyOpen = paramClose + 1;
        while (bodyOpen < toks.size() && toks[bodyOpen].text != "{" &&
               toks[bodyOpen].text != ";") {
            ++bodyOpen;
        }
        if (bodyOpen >= toks.size() || toks[bodyOpen].text != "{") continue;
        const std::size_t bodyClose = matchForward(toks, bodyOpen, "{", "}");
        for (std::size_t p = bodyOpen + 1; p + 2 < toks.size() && p + 2 < bodyClose; ++p) {
            if (toks[p].kind == Token::Kind::Ident && pointerParams.count(toks[p].text) > 0 &&
                (toks[p + 1].text == "<" || toks[p + 1].text == ">") &&
                toks[p + 2].kind == Token::Kind::Ident &&
                pointerParams.count(toks[p + 2].text) > 0 &&
                toks[p].text != toks[p + 2].text) {
                add(toks[p + 1].line, toks[p + 1].col, "nondet-pointer-order",
                    "comparing raw pointers '" + toks[p].text + " " + toks[p + 1].text + " " +
                        toks[p + 2].text +
                        "' orders by address, which varies run to run; compare a stable "
                        "key instead");
            }
        }
    }
}

void checkNondetIteration(const std::string& path, const NondetFacts& facts,
                          const std::vector<std::string>& unordered, const Suppressions& sup,
                          std::vector<Finding>* out) {
    if (!facts.emits || facts.iterations.empty() || unordered.empty()) return;
    const std::set<std::string> tracked(unordered.begin(), unordered.end());
    for (const IterationSite& site : facts.iterations) {
        if (site.sortedDrain) continue;
        std::string hit;
        for (const std::string& ident : site.exprIdents) {
            if (tracked.count(ident) > 0) {
                hit = ident;
                break;
            }
        }
        if (hit.empty()) continue;
        if (suppressed(sup, site.line, "nondet-iteration")) continue;
        out->push_back(
            {path, site.line, site.col, "nondet-iteration",
             std::string(site.beginCall ? "iterator over" : "iteration over") +
                 " unordered container '" + hit +
                 "' in a TU that serializes output: drain into a sorted container first, "
                 "or justify with rclint:allow(nondet-iteration)"});
    }
}

}  // namespace rclint
