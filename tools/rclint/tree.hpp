// The whole-tree pipeline: rclint's cross-file layer ("rcgraph").
//
// Phase 1 (parallel): every file is read, lexed, and analyzed once. A
// fixed set of worker threads picks files by index stride and writes
// per-file FileUnit slots — no shared mutable state, so the result is
// identical at every thread count by construction (the linter eats the
// same dog food it serves: byte-identical output, any --threads value).
//
// Phase 2 (sequential, deterministic): cross-file analyses run over the
// collected units — the `#include "..."` graph (layer-violation,
// include-cycle, --graph-out), metric-doc drift, the determinism lint's
// cross-file declaration closure (nondet-iteration), and the global
// lock-order graph (lock-order).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph.hpp"
#include "lex.hpp"
#include "lint.hpp"
#include "lockorder.hpp"
#include "nondet.hpp"

namespace rclint {

/// One `#include` directive, unresolved.
struct IncludeSpec {
    std::string inner;  // text between the delimiters
    bool quoted = false;
    int line = 0;
};

/// Everything phase 1 extracts from one file.
struct FileUnit {
    std::string path;
    bool isHeader = false;
    Lexed lx;
    Suppressions sup;
    std::vector<Finding> findings;  // per-file rules, sorted
    std::vector<MetricUse> metrics;
    std::vector<IncludeSpec> includes;
    NondetFacts nondet;
    std::vector<LockEdge> lockEdges;
    std::string error;  // non-empty: file could not be read
};

/// Walks `paths` (files or directories) into a sorted, deduplicated list
/// of lintable sources. Returns false and sets `err` on unreadable paths.
bool collectFiles(const std::vector<std::string>& paths, std::vector<std::string>* files,
                  std::string* err);

/// Phase 1: loads and analyzes every file on `threads` workers (>= 1).
std::vector<FileUnit> loadUnits(const std::vector<std::string>& files, int threads);

/// Resolves quoted includes to scanned files by path-suffix match:
/// include "util/time.hpp" resolves to the unique scanned file ending in
/// /util/time.hpp. Same-directory matches win; ambiguity falls back to
/// the lexicographically smallest candidate. Unresolvable specs (system
/// headers, generated files) produce no edge.
std::vector<IncludeEdge> resolveIncludes(const std::vector<FileUnit>& units);

/// Per-file union of unordered-container identifiers over the transitive
/// include closure (the file's own declarations plus every reachable
/// project header's). Keyed by file path; values sorted.
std::map<std::string, std::vector<std::string>> unorderedClosure(
    const std::vector<FileUnit>& units, const std::vector<IncludeEdge>& edges);

}  // namespace rclint
