// rclint: a zero-dependency, token-level C++ linter with project-specific
// rules for the routedconsent tree. It is deliberately not a compiler
// plugin: the rules below are all decidable on a comment/string-aware
// token stream, which keeps the tool dependency-free (std:: only), fast
// enough to gate every CI run, and testable with golden fixtures.
//
// Rules (ids are what suppressions name):
//   banned-function    strcpy/strcat/sprintf/vsprintf/gets/rand/srand —
//                      the paper's verifiers live or die on memory safety
//                      and reproducible randomness (rpkic::Rng).
//   banned-new-delete  raw `new` / `delete`; ownership goes through
//                      containers and std::make_unique.
//   pragma-once        every header starts with `#pragma once` (before
//                      any other preprocessing directive), exactly once.
//   include-hygiene    no duplicate includes, no "../" parent-relative
//                      quoted includes, no C-compat headers (<string.h>
//                      and friends — use <cstring>).
//   todo-format        comments: `TODO(owner): text`; the two legacy
//                      fix-me/placeholder markers are banned outright.
//   metric-name        a) `.counter("name", ...)` literals must end in
//                      `_total` (the registry enforces this at runtime;
//                      this catches it at lint time);
//                      b) cross-file: every `rc_*` metric literal used
//                      under src/ must appear in docs/OBSERVABILITY.md's
//                      catalogue, and every concrete `rc_*` name in the
//                      catalogue must be used in src/ — telemetry docs
//                      can never drift from the code.
//
// Suppressions:
//   // rclint:allow(rule-id[,rule-id...])   — same line or the line above
//   // rclint:allow-file(rule-id[,...])     — whole file
//
// Output: one finding per line, `path:line:col: [rule] message`, or
// `--format=github` for workflow annotations. Exit codes: 0 clean,
// 1 findings, 2 usage or I/O error.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rclint {

struct Finding {
    std::string path;
    int line = 0;
    int col = 0;
    std::string rule;
    std::string message;

    auto operator<=>(const Finding&) const = default;
};

/// Lints one translation unit held in memory. `isHeader` switches the
/// header-only rules on (pragma-once). Cross-file rules (metric drift)
/// are not run here — see lintMetricDrift.
std::vector<Finding> lintSource(const std::string& path, const std::string& source,
                                bool isHeader);

/// One `rc_*` string literal that names a metric family.
struct MetricUse {
    std::string path;
    int line = 0;
    int col = 0;
    std::string name;
};

/// Extracts every string literal in `source` that looks like a metric
/// family name (rc_ prefix, lower-case snake, >= 2 segments).
std::vector<MetricUse> collectMetricNames(const std::string& path, const std::string& source);

/// Concrete metric names (no wildcards) catalogued in the markdown doc:
/// every backticked `rc_...` token. Returns (name, line) pairs.
std::vector<std::pair<std::string, int>> docMetricNames(const std::string& docText);

/// Cross-file rule: code uses vs doc catalogue, both directions.
std::vector<Finding> lintMetricDrift(const std::vector<MetricUse>& uses,
                                     const std::string& docPath, const std::string& docText);

/// Renders one finding. `format` is "text" or "github".
std::string renderFinding(const Finding& f, const std::string& format);

/// The rclint command line (the binary's main() forwards here; tests call
/// it in-process). Returns the process exit code: 0 clean, 1 findings,
/// 2 usage or I/O error.
int runCli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace rclint
