// rclint / rcgraph: a zero-dependency, whole-tree C++ analysis layer with
// project-specific rules for the routedconsent tree. It is deliberately
// not a compiler plugin: the rules below are all decidable on a
// comment/string-aware token stream plus the `#include "..."` graph,
// which keeps the tool dependency-free (std:: only), fast enough to gate
// every CI run, and testable with golden fixtures.
//
// Per-file rules (ids are what suppressions name):
//   banned-function       strcpy/strcat/sprintf/vsprintf/gets/rand/srand —
//                         the paper's verifiers live or die on memory
//                         safety and reproducible randomness (rpkic::Rng).
//   banned-new-delete     raw `new` / `delete`; ownership goes through
//                         containers and std::make_unique.
//   pragma-once           every header starts with `#pragma once` (before
//                         any other preprocessing directive), exactly once.
//   include-hygiene       no duplicate includes, no "../" parent-relative
//                         quoted includes, no C-compat headers.
//   todo-format           comments: `TODO(owner): text`; the two legacy
//                         fix-me/placeholder markers are banned outright.
//   metric-name           `.counter("name", ...)` literals must end in
//                         `_total`.
//   nondet-time           wall-clock reads (system_clock / time() /
//                         clock()) outside the injectable obs clock.
//   nondet-pointer-order  std::less<T*>, std::hash<T*>, and lambda
//                         comparators ordering raw-pointer parameters.
//
// Cross-file analyses (the "rcgraph" layer — tree.hpp, graph.hpp,
// nondet.hpp, lockorder.hpp):
//   metric-doc-drift      rc_* literals under src/ <-> the catalogue in
//                         docs/OBSERVABILITY.md, both directions.
//   layer-violation       a module includes a higher-ranked module
//                         (manifest: tools/rclint/layers.conf, --layers).
//   include-cycle         a cycle in the file-level include graph.
//   nondet-iteration      unordered-container iteration feeding a
//                         serializing TU without a sorted drain.
//   lock-order            a cycle in the global rc::LockGuard nesting
//                         graph (escalates the exit code to 2).
//
// Suppressions:
//   // rclint:allow(rule-id[,rule-id...])   — same line or the line above
//   // rclint:allow-file(rule-id[,...])     — whole file
//
// Output: one finding per line, `path:line:col: [rule] message`, or
// `--format=github` for workflow annotations. Exit codes: 0 clean,
// 1 findings, 2 usage or I/O error — or a lock-order cycle.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "lex.hpp"

namespace rclint {

struct Finding {
    std::string path;
    int line = 0;
    int col = 0;
    std::string rule;
    std::string message;

    auto operator<=>(const Finding&) const = default;
};

/// Lints one translation unit held in memory. `isHeader` switches the
/// header-only rules on (pragma-once). Cross-file rules are not run here
/// — see runCli / tree.hpp.
std::vector<Finding> lintSource(const std::string& path, const std::string& source,
                                bool isHeader);

/// Same, over an already-lexed token stream (the pipeline lexes each file
/// exactly once and fans the analyses out over the shared view).
std::vector<Finding> lintLexed(const std::string& path, const Lexed& lx,
                               const Suppressions& sup, bool isHeader);

/// One `rc_*` string literal that names a metric family.
struct MetricUse {
    std::string path;
    int line = 0;
    int col = 0;
    std::string name;
};

/// Extracts every string literal in `source` that looks like a metric
/// family name (rc_ prefix, lower-case snake, >= 2 segments).
std::vector<MetricUse> collectMetricNames(const std::string& path, const std::string& source);
std::vector<MetricUse> collectMetricNames(const std::string& path, const Lexed& lx);

/// Concrete metric names (no wildcards) catalogued in the markdown doc:
/// every backticked `rc_...` token. Returns (name, line) pairs.
std::vector<std::pair<std::string, int>> docMetricNames(const std::string& docText);

/// Cross-file rule: code uses vs doc catalogue, both directions.
std::vector<Finding> lintMetricDrift(const std::vector<MetricUse>& uses,
                                     const std::string& docPath, const std::string& docText);

/// Renders one finding. `format` is "text" or "github".
std::string renderFinding(const Finding& f, const std::string& format);

/// The rclint command line (the binary's main() forwards here; tests call
/// it in-process). Returns the process exit code: 0 clean, 1 findings,
/// 2 usage/I-O error or lock-order cycle.
int runCli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace rclint
