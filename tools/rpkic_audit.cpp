// rpkic-audit: runs the REDESIGNED RPKI's relying party (§5.4 + Appendix
// B) over a sequence of on-disk repository snapshots, printing every alarm
// with its accountability verdict.
//
//   rpkic-audit --ta TA_FILE [--cache FILE] SNAP_DIR0 [SNAP_DIR1 ...]
//
// Each SNAP_DIR is a repository state (as written by rpkic-demo --consent
// or writeSnapshotToDisk); the relying party syncs them in order, running
// the full local consistency checks — hash-chain verification,
// intermediate-state reconstruction, Table-10 procedures, consent checks.
//
// With --cache, the relying party's state is loaded from FILE if it
// exists and saved back afterwards, so successive invocations keep
// detecting transitions across runs:
//
//   rpkic-audit --ta ta.cer --cache rp.cache todays-snapshot/
//
// Exit status: 0 = no alarms, 2 = alarms raised, 1 = usage/IO error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "rp/relying_party.hpp"
#include "rpki/fs_repository.hpp"
#include "util/errors.hpp"

using namespace rpkic;

int main(int argc, char** argv) {
    std::vector<std::string> snapDirs;
    std::vector<std::string> taPaths;
    std::string cachePath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--ta" && i + 1 < argc) {
            taPaths.push_back(argv[++i]);
        } else if (arg == "--cache" && i + 1 < argc) {
            cachePath = argv[++i];
        } else {
            snapDirs.push_back(arg);
        }
    }
    if (taPaths.empty() || snapDirs.empty()) {
        std::fprintf(stderr,
                     "usage: rpkic-audit --ta TA_FILE [--cache FILE] SNAP_DIR0 [SNAP_DIR1 ...]\n");
        return 1;
    }

    try {
        std::optional<rp::RelyingParty> alice;
        if (!cachePath.empty() && std::filesystem::exists(cachePath)) {
            std::ifstream in(cachePath, std::ios::binary);
            const Bytes blob((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
            // allowLegacy: caches written by earlier versions carry no
            // integrity footer but must stay readable by the audit tool.
            alice = rp::RelyingParty::deserializeState(ByteView(blob.data(), blob.size()),
                                                       /*allowLegacy=*/true);
            std::printf("resumed from cache %s (%zu bytes)\n", cachePath.c_str(), blob.size());
        } else {
            std::vector<ResourceCert> tas;
            for (const auto& path : taPaths) tas.push_back(readTrustAnchorFile(path));
            alice.emplace("auditor", tas,
                          rp::RpOptions{.ts = static_cast<Duration>(snapDirs.size() + 2),
                                        .tg = static_cast<Duration>(2 * snapDirs.size() + 4)});
        }

        std::size_t reported = alice->alarms().count();
        Time day = 0;
        for (std::size_t i = 0; i < snapDirs.size(); ++i, ++day) {
            const Snapshot snap = readSnapshotFromDisk(snapDirs[i]);
            alice->sync(snap, day);
            std::printf("[%lld] %-30s %zu points, %zu valid ROAs\n",
                        static_cast<long long>(day), snapDirs[i].c_str(), snap.points.size(),
                        alice->validRoas().size());
            for (; reported < alice->alarms().count(); ++reported) {
                std::printf("    ALARM %s\n", alice->alarms().all()[reported].str().c_str());
            }
        }

        if (!cachePath.empty()) {
            const Bytes blob = alice->serializeState();
            std::ofstream out(cachePath, std::ios::binary);
            out.write(reinterpret_cast<const char*>(blob.data()),
                      static_cast<std::streamsize>(blob.size()));
            std::printf("saved cache %s (%zu bytes)\n", cachePath.c_str(), blob.size());
        }
        std::printf("\n%zu alarm(s) total\n", alice->alarms().count());
        return alice->alarms().count() == 0 ? 0 : 2;
    } catch (const Error& e) {
        std::fprintf(stderr, "rpkic-audit: %s\n", e.what());
        return 1;
    }
}
