// rpkic-viz: the paper's §4.2 visualizer as a command-line tool. Renders
// the binary prefix tree under a root prefix, colored by the validity
// transition between two RPKI states for a focus AS, as SVG (file) and
// ASCII (stdout).
//
//   rpkic-viz PREV.state CUR.state --root 173.251.0.0/16 --as 53725
//             [--depth 8] [--svg out.svg] [--feed FEED.state]
//
// The optional --feed file lists BGP-announced routes ("prefix ASN" lines)
// to overlay: grey circles for valid routes, black for invalid ones.
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "detector/state_io.hpp"
#include "util/errors.hpp"
#include "viz/prefix_tree_viz.hpp"

using namespace rpkic;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: rpkic-viz PREV.state CUR.state --root PREFIX --as ASN\n"
                 "                 [--depth N] [--svg FILE] [--feed FEED.state]\n");
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    std::string prevPath;
    std::string curPath;
    std::optional<IpPrefix> root;
    Asn focusAs = 0;
    int depth = 8;
    std::string svgPath;
    std::string feedPath;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--root" && i + 1 < argc) {
                root = IpPrefix::parse(argv[++i]);
            } else if (arg == "--as" && i + 1 < argc) {
                focusAs = static_cast<Asn>(std::strtoul(argv[++i], nullptr, 10));
            } else if (arg == "--depth" && i + 1 < argc) {
                depth = std::atoi(argv[++i]);
            } else if (arg == "--svg" && i + 1 < argc) {
                svgPath = argv[++i];
            } else if (arg == "--feed" && i + 1 < argc) {
                feedPath = argv[++i];
            } else if (prevPath.empty()) {
                prevPath = arg;
            } else if (curPath.empty()) {
                curPath = arg;
            } else {
                return usage();
            }
        }
        if (prevPath.empty() || curPath.empty() || !root.has_value() || focusAs == 0) {
            return usage();
        }

        const PrefixValidityIndex prev(loadStateFile(prevPath));
        const PrefixValidityIndex cur(loadStateFile(curPath));
        std::vector<Route> feed;
        if (!feedPath.empty()) {
            const RpkiState feedState = loadStateFile(feedPath);
            for (const auto& t : feedState.tuples()) {
                feed.push_back(t.announcedRoute());
            }
        }

        const viz::PrefixTreeViz viz(prev, cur, viz::VizConfig{*root, depth, focusAs}, feed);
        std::printf("%s", viz.renderAscii().c_str());
        std::printf("\nnode states: %zu unknown, %zu valid, %zu invalid, %zu downgraded\n",
                    viz.countState(viz::NodeState::Unknown),
                    viz.countState(viz::NodeState::Valid),
                    viz.countState(viz::NodeState::Invalid),
                    viz.countState(viz::NodeState::DowngradedToInvalid));
        if (!svgPath.empty()) {
            std::ofstream out(svgPath);
            if (!out) throw Error("cannot write " + svgPath);
            out << viz.renderSvg();
            std::printf("wrote %s\n", svgPath.c_str());
        }
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "rpkic-viz: %s\n", e.what());
        return 1;
    }
}
