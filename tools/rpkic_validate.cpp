// rpkic-validate: rcynic-style validation of an on-disk repository.
//
//   rpkic-validate REPO_DIR --ta TA_FILE [--ta TA_FILE...]
//                  [--now T] [--lenient] [--out STATE_FILE]
//
// Walks the repository from the trust anchor(s), reports every problem
// (whacked objects, stale manifests, coverage violations, ...), and writes
// the resulting set of valid ROAs as a .state file — the input format of
// rpkic-detector and rpkic-viz, closing the monitoring pipeline:
//
//   rpkic-validate repo/ --ta ta.cer --out today.state
//   rpkic-detector yesterday.state today.state
//
// Exit status: 0 = clean, 2 = problems found, 1 = usage/IO error.
#include <cstdio>
#include <string>
#include <vector>

#include "detector/state_io.hpp"
#include "rpki/fs_repository.hpp"
#include "util/errors.hpp"
#include "vanilla/validation.hpp"

using namespace rpkic;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: rpkic-validate REPO_DIR --ta TA_FILE [--ta ...]\n"
                 "                      [--now T] [--lenient] [--out STATE_FILE]\n");
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    std::string repoDir;
    std::vector<std::string> taPaths;
    std::string outPath;
    Time now = 0;
    bool lenient = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--ta" && i + 1 < argc) {
            taPaths.push_back(argv[++i]);
        } else if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--now" && i + 1 < argc) {
            now = std::atol(argv[++i]);
        } else if (arg == "--lenient") {
            lenient = true;
        } else if (repoDir.empty()) {
            repoDir = arg;
        } else {
            return usage();
        }
    }
    if (repoDir.empty() || taPaths.empty()) return usage();

    try {
        const Snapshot snap = readSnapshotFromDisk(repoDir);
        std::vector<ResourceCert> tas;
        for (const auto& path : taPaths) tas.push_back(readTrustAnchorFile(path));

        const vanilla::Result result = vanilla::validateSnapshot(
            snap, tas, vanilla::Options{.now = now, .staleManifestIsFatal = !lenient});

        std::printf("repository: %zu publication points, %zu files\n", snap.points.size(),
                    snap.totalFiles());
        std::printf("valid: %zu certificates, %zu ROAs\n", result.certs.size(),
                    result.roas.size());
        for (const auto& problem : result.problems) {
            std::printf("PROBLEM %s\n", problem.str().c_str());
        }

        const RpkiState state = result.roaState();
        if (!outPath.empty()) {
            saveStateFile(outPath, state);
            std::printf("wrote %zu ROA tuples to %s\n", state.size(), outPath.c_str());
        } else {
            std::fputs(stateToText(state).c_str(), stdout);
        }
        return result.problems.empty() ? 0 : 2;
    } catch (const Error& e) {
        std::fprintf(stderr, "rpkic-validate: %s\n", e.what());
        return 1;
    }
}
