// rpkic-soak: chaos soak harness over the relying-party pipeline.
//
// Runs N seeded fault schedules (sim/chaos_soak.hpp) against the random
// authority-hierarchy driver, checking robustness invariants I1-I7 every
// round against a fault-free twin relying party. Any failing run prints
// its serialized FaultPlan (and writes it to soak-fail-seed<N>.plan);
// replaying the plan reproduces the identical outcome:
//
//   rpkic-soak --seeds 200                     # the full gauntlet
//   rpkic-soak --smoke                         # CI: 32 seeds, short runs
//   rpkic-soak --plan soak-fail-seed7.plan     # bit-identical replay
//   rpkic-soak --seeds 20 --compare            # retry budget 2 vs 0 table
//
// Options:
// Durability modes (PR 5; see docs/DURABILITY.md):
//
//   rpkic-soak --seeds 64 --crash-every 3      # kill/restart gauntlet
//   rpkic-soak --crash-sweep --seeds 8         # exhaustive per-op crash sweep
//   rpkic-soak --crash-every 5 --state-dir st  # WAL+checkpoints on real disk
//
//   --seeds N          number of seeds to sweep (default 20)
//   --seed-base B      first seed (default 1)
//   --rounds N         sync rounds per run (default 40)
//   --fault-rate X     per-point per-round fault probability (default 0.35)
//   --retry-budget N   retries after the first attempt (default 2)
//   --adversarial X    driver misbehaviour probability (default 0.15)
//   --crash-every N    durable-store mode: commit the relying party's
//                      state every round and kill/restart the "process"
//                      every N rounds, crashing mid-commit (invariants
//                      I8/I9; plans carry the cadence for --plan replay)
//   --state-dir DIR    put the durable store's WAL + checkpoints on the
//                      real filesystem under DIR/seed<N> instead of the
//                      crash-injectable in-memory backend (kills become
//                      round-boundary restarts; dirs are wiped per run)
//   --crash-sweep      run the exhaustive crash-point sweep instead of
//                      the soak: one rerun per VFS operation per seed,
//                      proving pre-or-post recovery plus convergence
//   --smoke            shorthand for --seeds 32 --rounds 25
//   --compare          also run every seed with retry budget 0 and print
//                      the degradation table (weakened run must be worse)
//   --pack NAME[,..]   attack-zoo mode (docs/CHAOS.md "Attack zoo"): run
//                      the named adversary scenario packs ("all" = every
//                      pack) across the seed sweep and diff each run's
//                      realized alarms, rejections, quarantine state, and
//                      fleet attribution against the pack's expected-alarm
//                      oracle (invariants I12/I13). Any miss OR any
//                      spurious alarm fails the run: failing runs write
//                      pack-fail-<pack>-seed<N>.plan (replayable with
//                      --plan) and their postmortems land in --flight-out
//   --disable-detection
//                      attack-zoo test hook: turn off the relying party's
//                      intermediate-state checks and the periodic global
//                      consistency check. A pack whose attack those paths
//                      catch must then FAIL its oracle (proves the oracle
//                      has teeth)
//   --plan FILE        replay one serialized plan instead of sweeping; a
//                      plan carrying pack= replays that pack run
//   --quiet            only the summary line and failures
//   --scoreboard       per-round table: delivered/failed/retries/absorbed/
//                      alarms/valid-ROAs for every round of every run
//   --metrics-out FILE write the Prometheus text exposition of all
//                      rc_* metrics after the sweep (deterministic: the
//                      run is switched to the logical clock, so two runs
//                      of the same seed produce byte-identical files)
//   --trace-out FILE   write a Chrome trace-event JSON of the run's spans
//                      (load in Perfetto / chrome://tracing)
//   --fleet N          fleet-consensus mode (docs/FLEET.md): run N relying
//                      parties per seed over divergent repository views,
//                      reduce their per-epoch outputs by quorum vote, and
//                      check invariants I10/I11 (--rounds sets the epoch
//                      count; per-member rc_rp_*/rc_sync_*/rc_store_* and
//                      aggregate rc_fleet_* metrics land in --metrics-out)
//   --quorum Q         votes required for a consensus output (default
//                      majority: floor(N/2)+1)
//   --faulty-set SPEC  comma-separated member faults, each
//                      member:kind[:from[:len]] with kind crash|stall|
//                      mirror, e.g. "1:crash:5:6,3:mirror:4"
//   --transcript-out F write every seed's consensus transcript (canonical
//                      text, byte-identical at every --threads value)
//   --serve ADDR:PORT  serve the live introspection endpoints (/metrics,
//                      /healthz, /statusz, /flightz) while the run is in
//                      flight; port 0 picks an ephemeral port and the
//                      bound address is printed. Enables the global
//                      flight recorder and publishes run progress rows
//                      to /statusz.
//   --serve-hold       keep serving after the run completes, until
//                      SIGINT/SIGTERM (CI scrapes the final state, then
//                      kills the process; also holds --rtr)
//   --rtr ADDR:PORT    serve every committed round as an RTR-style epoch
//                      (RFC 8210 v1 framing; docs/SERVING.md) while the
//                      run is in flight: caches connect, Reset Query gets
//                      the full VRP snapshot, Serial Query an incremental
//                      delta, and each new epoch fans out a Serial
//                      Notify. Port 0 picks an ephemeral port. With
//                      multiple seeds the epochs publish in completion
//                      order into one shared store.
//   --rtr-dump FILE    write the canonical epoch dump (one line per
//                      epoch: serial, tuple count, announce/withdraw
//                      counts, SHA-256 of snapshot and delta payloads)
//                      for all seeds in seed order — byte-identical at
//                      every --threads value; CI diffs it across thread
//                      counts
//   --flight-out DIR   write postmortem bundles — invariant failures,
//                      realized crashes, fatal signals — under DIR as
//                      <label>.postmortem (see docs/OBSERVABILITY.md)
//   --force-invariant-fail
//                      append one synthetic invariant violation to every
//                      soak run so the postmortem-capture path fires
//                      deterministically (test/CI hook; the run exits 2)
//   --log-level LEVEL  structured-log threshold (trace|debug|info|warn|
//                      error|off; default warn, also settable via RC_LOG)
//   --threads N        worker pool size for the seed sweep (0 = all
//                      hardware threads); overrides the RC_THREADS env
//                      var. Per-seed results are bit-identical at every
//                      thread count and always print in seed order, but
//                      --metrics-out/--trace-out dumps are only byte-
//                      stable at 1 thread (interleaving reorders the
//                      logical clock).
//
// Exit status: 0 = all invariants held, 2 = violations, 1 = usage/IO error.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include "adversary/runner.hpp"
#include "fleet/fleet.hpp"
#include "obs/flight/postmortem.hpp"
#include "obs/flight/recorder.hpp"
#include "obs/obs.hpp"
#include "obs/parallel_metrics.hpp"
#include "obs/serve/introspect.hpp"
#include "serve/rtr.hpp"
#include "sim/chaos_soak.hpp"
#include "sim/crash_sweep.hpp"
#include "util/errors.hpp"
#include "util/parallel.hpp"
#include "util/vfs.hpp"

using namespace rpkic;
using namespace rpkic::sim;

namespace {

void printResult(const SoakResult& r, bool quiet) {
    const SoakStats& s = r.stats;
    if (!quiet) {
        std::printf(
            "seed %-6llu %s  faults=%llu hits=%llu attempts=%llu retries=%llu "
            "absorbed=%llu failed-rounds=%llu worst-streak=%u recoveries=%llu "
            "mean-recovery=%.2f alarms=%llu (accountable=%llu, twin=%llu) "
            "roas=%zu/%zu\n",
            static_cast<unsigned long long>(r.seed), r.passed ? "ok  " : "FAIL",
            static_cast<unsigned long long>(s.faultsScheduled),
            static_cast<unsigned long long>(s.faultApplications),
            static_cast<unsigned long long>(s.attempts),
            static_cast<unsigned long long>(s.retries),
            static_cast<unsigned long long>(s.faultsAbsorbed),
            static_cast<unsigned long long>(s.pointRoundsFailed), s.maxStaleStreak,
            static_cast<unsigned long long>(s.recoveries), s.meanRecoveryRounds,
            static_cast<unsigned long long>(s.alarms),
            static_cast<unsigned long long>(s.accountableAlarms),
            static_cast<unsigned long long>(s.twinAlarms), s.validRoasFinal,
            s.twinValidRoasFinal);
        if (r.plan.crashEvery > 0) {
            std::printf(
                "  durability seed %-6llu crashes=%llu recoveries=%llu commits=%llu "
                "torn-bytes=%llu rounds-redone=%llu\n",
                static_cast<unsigned long long>(r.seed),
                static_cast<unsigned long long>(s.crashes),
                static_cast<unsigned long long>(s.storeRecoveries),
                static_cast<unsigned long long>(s.storeCommits),
                static_cast<unsigned long long>(s.storeTornBytes),
                static_cast<unsigned long long>(s.roundsRedone));
        }
    }
    if (!r.passed) {
        std::printf("seed %llu VIOLATIONS:\n", static_cast<unsigned long long>(r.seed));
        for (const std::string& v : r.violations) std::printf("  %s\n", v.c_str());
        const std::string planFile =
            "soak-fail-seed" + std::to_string(r.seed) + ".plan";
        const std::string text = r.plan.serialize();
        std::ofstream out(planFile, std::ios::binary);
        if (out) {
            out << text;
            std::printf("  plan written to %s — replay with: rpkic-soak --plan %s\n",
                        planFile.c_str(), planFile.c_str());
        } else {
            std::printf("  (could not write %s; plan follows)\n%s", planFile.c_str(),
                        text.c_str());
        }
    }
}

void printScoreboard(const SoakResult& r) {
    std::printf("  round | listed deliv fail quar | attempts retries absorbed | alarms roas\n");
    for (const auto& round : r.rounds) {
        std::printf("  %5llu | %6zu %5zu %4zu %4zu | %8llu %7llu %8llu | %6zu %4zu\n",
                    static_cast<unsigned long long>(round.round), round.pointsListed,
                    round.pointsDelivered, round.pointsFailed, round.pointsQuarantined,
                    static_cast<unsigned long long>(round.attempts),
                    static_cast<unsigned long long>(round.retries),
                    static_cast<unsigned long long>(round.faultsAbsorbed), round.alarmsRaised,
                    round.validRoas);
    }
}

void printPackResult(const adversary::PackRunResult& r, bool quiet) {
    if (!quiet || !r.passed) {
        std::string verdicts;
        for (const auto cls : r.realized.verdictClasses) {
            if (!verdicts.empty()) verdicts += ",";
            verdicts += std::string(fleet::toString(cls));
        }
        if (verdicts.empty()) verdicts = "-";
        std::printf(
            "pack %-18s seed %-4llu %s  alarms=%zu faults=%zu hits=%llu overlays=%llu "
            "quarantined=%s verdicts=%s\n",
            r.pack.c_str(), static_cast<unsigned long long>(r.seed),
            r.passed ? "ok  " : "FAIL", r.realized.alarms.size(), r.plan.faults.size(),
            static_cast<unsigned long long>(r.faultApplications),
            static_cast<unsigned long long>(r.overlayApplications),
            r.realized.quarantined ? "yes" : "no", verdicts.c_str());
    }
    if (!r.passed) {
        std::printf("pack %s seed %llu ORACLE DIFF:\n", r.pack.c_str(),
                    static_cast<unsigned long long>(r.seed));
        for (const std::string& m : r.diff.missing) std::printf("  missing:  %s\n", m.c_str());
        for (const std::string& s : r.diff.spurious) std::printf("  spurious: %s\n", s.c_str());
        const std::string planFile =
            "pack-fail-" + r.pack + "-seed" + std::to_string(r.seed) + ".plan";
        std::ofstream out(planFile, std::ios::binary);
        if (out) {
            out << r.plan.serialize();
            std::printf("  plan written to %s — replay with: rpkic-soak --plan %s\n",
                        planFile.c_str(), planFile.c_str());
        }
    }
}

bool writeFileOrComplain(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "rpkic-soak: cannot write %s\n", path.c_str());
        return false;
    }
    out << content;
    return true;
}

// --serve-hold exits on SIGINT/SIGTERM (fatal signals go through the
// flight handler instead).
std::atomic<bool> gStopServing{false};

extern "C" void onStopSignal(int) { gStopServing.store(true); }

}  // namespace

int main(int argc, char** argv) {
    SoakConfig cfg;
    std::uint64_t seeds = 20;
    std::uint64_t seedBase = 1;
    bool compare = false;
    bool quiet = false;
    bool scoreboard = false;
    bool crashSweep = false;
    std::uint32_t fleetSize = 0;
    std::uint32_t fleetQuorum = 0;  // 0 = majority of --fleet
    std::string faultySet;
    std::string transcriptOut;
    std::string stateDir;
    std::string planPath;
    std::string packSpec;
    bool disableDetection = false;
    std::string metricsOut;
    std::string traceOut;
    std::string threadSpec;
    std::string serveAddr;
    bool serveHold = false;
    std::string flightOut;
    std::string rtrAddr;
    std::string rtrDump;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char* what) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "rpkic-soak: %s requires a value\n", what);
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--seeds") {
            seeds = std::strtoull(next("--seeds"), nullptr, 10);
        } else if (arg == "--seed-base") {
            seedBase = std::strtoull(next("--seed-base"), nullptr, 10);
        } else if (arg == "--rounds") {
            cfg.rounds = static_cast<std::uint32_t>(std::strtoul(next("--rounds"), nullptr, 10));
        } else if (arg == "--fault-rate") {
            cfg.faultRate = std::strtod(next("--fault-rate"), nullptr);
        } else if (arg == "--retry-budget") {
            cfg.retryBudget =
                static_cast<std::uint32_t>(std::strtoul(next("--retry-budget"), nullptr, 10));
        } else if (arg == "--adversarial") {
            cfg.adversarialProbability = std::strtod(next("--adversarial"), nullptr);
        } else if (arg == "--crash-every") {
            cfg.crashEvery =
                static_cast<std::uint32_t>(std::strtoul(next("--crash-every"), nullptr, 10));
        } else if (arg == "--state-dir") {
            stateDir = next("--state-dir");
        } else if (arg == "--crash-sweep") {
            crashSweep = true;
        } else if (arg == "--fleet") {
            fleetSize = static_cast<std::uint32_t>(std::strtoul(next("--fleet"), nullptr, 10));
        } else if (arg == "--quorum") {
            fleetQuorum = static_cast<std::uint32_t>(std::strtoul(next("--quorum"), nullptr, 10));
            if (fleetQuorum == 0) {
                // 0 is also the internal "use the default" sentinel; an
                // explicit 0 must not silently become a majority quorum.
                std::fprintf(stderr, "rpkic-soak: --quorum must be >= 1\n");
                return 1;
            }
        } else if (arg == "--faulty-set") {
            faultySet = next("--faulty-set");
        } else if (arg == "--transcript-out") {
            transcriptOut = next("--transcript-out");
        } else if (arg == "--smoke") {
            seeds = 32;
            cfg.rounds = 25;
        } else if (arg == "--compare") {
            compare = true;
        } else if (arg == "--pack") {
            packSpec = next("--pack");
        } else if (arg == "--disable-detection") {
            disableDetection = true;
        } else if (arg == "--plan") {
            planPath = next("--plan");
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--scoreboard") {
            scoreboard = true;
        } else if (arg == "--metrics-out") {
            metricsOut = next("--metrics-out");
        } else if (arg == "--trace-out") {
            traceOut = next("--trace-out");
        } else if (arg == "--serve") {
            serveAddr = next("--serve");
        } else if (arg == "--serve-hold") {
            serveHold = true;
        } else if (arg == "--rtr") {
            rtrAddr = next("--rtr");
        } else if (arg == "--rtr-dump") {
            rtrDump = next("--rtr-dump");
        } else if (arg == "--flight-out") {
            flightOut = next("--flight-out");
        } else if (arg == "--force-invariant-fail") {
            cfg.forceInvariantFail = true;
        } else if (arg == "--log-level") {
            obs::Logger::global().setLevel(obs::logLevelFromString(next("--log-level")));
        } else if (arg == "--threads") {
            threadSpec = next("--threads");
        } else {
            std::fprintf(stderr,
                         "usage: rpkic-soak [--seeds N] [--seed-base B] [--rounds N]\n"
                         "                  [--fault-rate X] [--retry-budget N] "
                         "[--adversarial X]\n"
                         "                  [--crash-every N] [--state-dir DIR] "
                         "[--crash-sweep]\n"
                         "                  [--fleet N] [--quorum Q] [--faulty-set SPEC]\n"
                         "                  [--transcript-out FILE]\n"
                         "                  [--pack NAME[,..]] [--disable-detection]\n"
                         "                  [--smoke] [--compare] [--plan FILE] [--quiet]\n"
                         "                  [--scoreboard] [--metrics-out FILE] "
                         "[--trace-out FILE]\n"
                         "                  [--serve ADDR:PORT] [--serve-hold] "
                         "[--flight-out DIR]\n"
                         "                  [--rtr ADDR:PORT] [--rtr-dump FILE]\n"
                         "                  [--force-invariant-fail]\n"
                         "                  [--log-level LEVEL] [--threads N]\n");
            return 1;
        }
    }

    try {
        const std::size_t threads = threadSpec.empty()
                                        ? rc::parallel::defaultThreadCount()
                                        : rc::parallel::parseThreadSpec(threadSpec);
        rc::parallel::configureDefaultPool(threads, &obs::parallelMetricsObserver());
    } catch (const Error& e) {
        std::fprintf(stderr, "rpkic-soak: %s\n", e.what());
        return 1;
    }

    // Exported telemetry must be reproducible: the same seed must dump the
    // same bytes. Switch the whole process onto the deterministic logical
    // clock before anything records a timestamp.
    static obs::LogicalTimeSource logicalClock;
    if (!metricsOut.empty() || !traceOut.empty()) {
        obs::setTimeSource(&logicalClock);
    }
    if (!traceOut.empty()) obs::Tracer::global().setEnabled(true);

    // With --metrics-out or --serve the soak records into the process-wide
    // registry so alarms, sync telemetry, authority and detector counters
    // all land in the same exposition (a nullptr registry would give each
    // run a private registry that dies with it, and /metrics would show
    // nothing).
    obs::Registry* exportRegistry = (metricsOut.empty() && serveAddr.empty() && rtrAddr.empty())
                                        ? nullptr
                                        : &obs::Registry::global();
    cfg.registry = exportRegistry;

    // Live introspection: enable the global flight recorder (hook sites
    // tee into it), install the fatal-signal postmortem path, publish run
    // progress to the global status board, and start the HTTP server.
    if (!serveAddr.empty() || !flightOut.empty()) {
        obs::FlightRecorder::global().attachMetrics(&obs::Registry::global());
        obs::FlightRecorder::global().setEnabled(true);
    }
    if (!flightOut.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(flightOut, ec);
        if (ec) {
            std::fprintf(stderr, "rpkic-soak: cannot create %s: %s\n", flightOut.c_str(),
                         ec.message().c_str());
            return 1;
        }
        obs::installFlightSignalHandler(flightOut + "/fatal-signal.postmortem");
    }
    std::optional<obs::IntrospectionServer> server;
    if (!serveAddr.empty()) {
        cfg.status = &obs::StatusBoard::global();
        server.emplace();
        std::string error;
        if (!server->start(serveAddr, &error)) {
            std::fprintf(stderr, "rpkic-soak: --serve %s: %s\n", serveAddr.c_str(),
                         error.c_str());
            return 1;
        }
        std::printf("introspection server on http://%s/ (/metrics /healthz /statusz /flightz)\n",
                    server->boundAddress().c_str());
        std::fflush(stdout);
        std::signal(SIGINT, onStopSignal);
        std::signal(SIGTERM, onStopSignal);
    }

    // Live RTR serving plane: one shared epoch store; every seed's
    // committed rounds publish into it (completion order across parallel
    // seeds) and each publication fans a Serial Notify out to connected
    // caches. The byte-determinism artifact is --rtr-dump, which is
    // captured per seed and written in seed order, independent of the
    // live store.
    std::optional<serve::EpochStore> rtrStore;
    std::optional<serve::RtrServer> rtrServer;
    if (!rtrAddr.empty()) {
        serve::EpochStore::Options storeOptions;
        storeOptions.registry = exportRegistry;
        rtrStore.emplace(storeOptions);
        serve::RtrServer::Options rtrOptions;
        rtrOptions.socket.registry = exportRegistry;
        rtrOptions.core.registry = exportRegistry;
        rtrServer.emplace(*rtrStore, rtrOptions);
        std::string error;
        if (!rtrServer->start(rtrAddr, &error)) {
            std::fprintf(stderr, "rpkic-soak: --rtr %s: %s\n", rtrAddr.c_str(), error.c_str());
            return 1;
        }
        std::printf("rtr server on %s (RFC 8210 v1)\n", rtrServer->boundAddress().c_str());
        std::fflush(stdout);
        std::signal(SIGINT, onStopSignal);
        std::signal(SIGTERM, onStopSignal);
        cfg.rtrStore = &*rtrStore;
        cfg.onEpochPublished = [&rtrServer] { rtrServer->notify(); };
    }
    cfg.captureEpochs = !rtrDump.empty();

    // Where captured postmortem bundles land (--flight-out).
    const auto writePostmortems = [&](const std::vector<obs::CapturedBundle>& bundles) {
        if (flightOut.empty()) return;
        for (const obs::CapturedBundle& b : bundles) {
            const std::string path = flightOut + "/" + b.label + ".postmortem";
            if (writeFileOrComplain(path, b.bytes) && !quiet) {
                std::printf("postmortem (%s) written to %s\n", b.trigger.c_str(), path.c_str());
            }
        }
    };

    // Every exit path after server start funnels through here so
    // --serve-hold can keep the endpoints alive for a scraper.
    const auto finish = [&](int rc) -> int {
        if ((server.has_value() || rtrServer.has_value()) && serveHold) {
            std::printf("rpkic-soak: run complete; holding %s%s%s "
                        "(SIGINT/SIGTERM to exit)\n",
                        server.has_value()
                            ? ("introspection server on " + server->boundAddress()).c_str()
                            : "",
                        server.has_value() && rtrServer.has_value() ? " and " : "",
                        rtrServer.has_value()
                            ? ("rtr server on " + rtrServer->boundAddress()).c_str()
                            : "");
            std::fflush(stdout);
            while (!gStopServing.load()) {
                std::this_thread::sleep_for(std::chrono::milliseconds(100));
            }
        }
        if (rtrServer.has_value()) rtrServer->stop();
        if (server.has_value()) server->stop();
        return rc;
    };

    const auto writeExports = [&]() -> bool {
        bool ok = true;
        if (!metricsOut.empty()) {
            ok = writeFileOrComplain(metricsOut, obs::Registry::global().renderPrometheus()) && ok;
            if (ok && !quiet) std::printf("metrics written to %s\n", metricsOut.c_str());
        }
        if (!traceOut.empty()) {
            ok = writeFileOrComplain(traceOut, obs::Tracer::global().renderChromeTrace()) && ok;
            if (ok && !quiet) std::printf("trace written to %s\n", traceOut.c_str());
        }
        return ok;
    };

    if (fleetSize > 0) {
        // Fleet-consensus mode: seeds run sequentially — each run fans its
        // member syncs out over the worker pool instead, and sequential
        // seeds keep --metrics-out/--trace-out byte-stable.
        fleet::FleetConfig fleetCfg;
        fleetCfg.members = fleetSize;
        fleetCfg.quorum = fleetQuorum != 0 ? fleetQuorum : fleetSize / 2 + 1;
        fleetCfg.epochs = cfg.rounds;
        fleetCfg.retryBudget = cfg.retryBudget;
        fleetCfg.registry = exportRegistry;
        fleetCfg.status = cfg.status;
        try {
            fleetCfg.faulty = fleet::MemberFaultSpec::parseSet(faultySet);
        } catch (const Error& e) {
            std::fprintf(stderr, "rpkic-soak: --faulty-set: %s\n", e.what());
            return finish(1);
        }

        std::string transcripts;
        std::uint64_t failures = 0;
        for (std::uint64_t s = 0; s < seeds; ++s) {
            fleet::FleetConfig runCfg = fleetCfg;
            runCfg.seed = seedBase + s;
            fleet::FleetResult r;
            try {
                r = fleet::runFleet(runCfg);
            } catch (const Error& e) {
                std::fprintf(stderr, "rpkic-soak: fleet seed %llu: %s\n",
                             static_cast<unsigned long long>(runCfg.seed), e.what());
                return finish(1);
            }
            writePostmortems(r.postmortems);
            const fleet::FleetStats& fs = r.stats;
            if (!quiet || !r.passed) {
                std::printf(
                    "fleet seed %-6llu %s  epochs=%llu outputs=%llu unanimous=%llu "
                    "no-quorum=%llu votes=%llu rejected=%llu verdicts=c%llu/s%llu/m%llu "
                    "crashes=%llu restarts=%llu roas=%zu/%zu\n",
                    static_cast<unsigned long long>(r.seed), r.passed ? "ok  " : "FAIL",
                    static_cast<unsigned long long>(fs.epochs),
                    static_cast<unsigned long long>(fs.outputEpochs),
                    static_cast<unsigned long long>(fs.unanimousEpochs),
                    static_cast<unsigned long long>(fs.noQuorumEpochs),
                    static_cast<unsigned long long>(fs.votesCast),
                    static_cast<unsigned long long>(fs.votesRejected),
                    static_cast<unsigned long long>(fs.verdictsCrashed),
                    static_cast<unsigned long long>(fs.verdictsStalled),
                    static_cast<unsigned long long>(fs.verdictsMirrorFed),
                    static_cast<unsigned long long>(fs.crashes),
                    static_cast<unsigned long long>(fs.restarts), fs.finalOutputRoas,
                    fs.twinFinalRoas);
            }
            if (!r.passed) {
                ++failures;
                std::printf("fleet seed %llu VIOLATIONS:\n",
                            static_cast<unsigned long long>(r.seed));
                for (const std::string& v : r.violations) std::printf("  %s\n", v.c_str());
                const std::string file =
                    "fleet-fail-seed" + std::to_string(r.seed) + ".transcript";
                if (writeFileOrComplain(file, r.transcript.serialize())) {
                    std::printf("  transcript written to %s\n", file.c_str());
                }
            }
            if (!transcriptOut.empty()) transcripts += r.transcript.serialize();
        }
        std::printf("fleet: %llu/%llu seeds passed  (N=%u Q=%u)\n",
                    static_cast<unsigned long long>(seeds - failures),
                    static_cast<unsigned long long>(seeds), fleetCfg.members, fleetCfg.quorum);
        if (!transcriptOut.empty() && !writeFileOrComplain(transcriptOut, transcripts)) {
            return finish(1);
        }
        if (!transcriptOut.empty() && !quiet) {
            std::printf("transcripts written to %s\n", transcriptOut.c_str());
        }
        if (!writeExports()) return finish(1);
        return finish(failures == 0 ? 0 : 2);
    }

    if (!packSpec.empty()) {
        // Attack-zoo mode: every (pack, seed) cell of the grid is an
        // independent task; results print in pack-catalogue then seed
        // order, so the report reads identically at every thread count.
        std::vector<std::string> packs;
        try {
            packs = adversary::resolvePackList(packSpec);
        } catch (const Error& e) {
            std::fprintf(stderr, "rpkic-soak: --pack: %s\n", e.what());
            return finish(1);
        }
        rc::parallel::Pool& packPool = rc::parallel::defaultPool();
        const std::size_t cells = packs.size() * static_cast<std::size_t>(seeds);
        const std::vector<adversary::PackRunResult> runs =
            packPool.parallelMap<adversary::PackRunResult>(cells, [&](std::size_t t) {
                adversary::PackRunConfig runCfg;
                runCfg.pack = packs[t / seeds];
                runCfg.seed = seedBase + (t % seeds);
                runCfg.rounds = cfg.rounds;
                runCfg.retryBudget = cfg.retryBudget;
                runCfg.registry = exportRegistry;
                runCfg.disableDetection = disableDetection;
                return adversary::runPack(runCfg);
            });
        std::uint64_t failures = 0;
        std::string transcripts;
        for (const adversary::PackRunResult& r : runs) {
            printPackResult(r, quiet);
            writePostmortems(r.postmortems);
            if (!transcriptOut.empty()) transcripts += r.transcript;
            if (!r.passed) ++failures;
        }
        std::printf("attack zoo: %llu/%llu runs passed  (packs=%zu seeds=%llu)\n",
                    static_cast<unsigned long long>(cells - failures),
                    static_cast<unsigned long long>(cells), packs.size(),
                    static_cast<unsigned long long>(seeds));
        if (!transcriptOut.empty() && !writeFileOrComplain(transcriptOut, transcripts)) {
            return finish(1);
        }
        if (!transcriptOut.empty() && !quiet) {
            std::printf("transcripts written to %s\n", transcriptOut.c_str());
        }
        if (!writeExports()) return finish(1);
        return finish(failures == 0 ? 0 : 2);
    }

    // Durable-store state on the real filesystem: one DiskVfs shared by
    // every run (it is stateless), one fresh directory per seed.
    vfs::DiskVfs diskVfs;
    if (!stateDir.empty() && cfg.crashEvery == 0 && !crashSweep) {
        std::fprintf(stderr,
                     "rpkic-soak: --state-dir has no effect without --crash-every N\n");
    }
    const auto applyStateDir = [&](SoakConfig& runCfg) {
        if (stateDir.empty()) return;
        runCfg.stateVfs = &diskVfs;
        runCfg.stateDir = stateDir + "/seed" + std::to_string(runCfg.seed);
        std::error_code ec;
        std::filesystem::remove_all(runCfg.stateDir, ec);  // fresh per run
    };

    if (crashSweep) {
        // Exhaustive per-VFS-op crash enumeration (sim/crash_sweep.hpp).
        // Each seed is an independent CPU-bound task.
        rc::parallel::Pool& sweepPool = rc::parallel::defaultPool();
        const std::vector<SweepResult> sweeps = sweepPool.parallelMap<SweepResult>(
            static_cast<std::size_t>(seeds), [&](std::size_t s) {
                SweepConfig sc;
                sc.seed = seedBase + s;
                sc.adversarialProbability = cfg.adversarialProbability;
                return runCrashSweep(sc);
            });
        std::uint64_t failures = 0;
        for (std::uint64_t s = 0; s < seeds; ++s) {
            const SweepResult& r = sweeps[s];
            if (!quiet || !r.passed) {
                std::printf(
                    "sweep seed %-6llu %s  crash-points=%llu fired=%llu pre=%llu "
                    "post=%llu none=%llu torn-bytes=%llu rounds-resumed=%llu\n",
                    static_cast<unsigned long long>(seedBase + s), r.passed ? "ok  " : "FAIL",
                    static_cast<unsigned long long>(r.crashPoints),
                    static_cast<unsigned long long>(r.crashesFired),
                    static_cast<unsigned long long>(r.recoveredPre),
                    static_cast<unsigned long long>(r.recoveredPost),
                    static_cast<unsigned long long>(r.recoveredNone),
                    static_cast<unsigned long long>(r.tornBytes),
                    static_cast<unsigned long long>(r.roundsResumed));
            }
            for (const std::string& v : r.violations) std::printf("  %s\n", v.c_str());
            writePostmortems(r.postmortems);
            if (!r.passed) ++failures;
        }
        std::printf("crash sweep: %llu/%llu seeds passed\n",
                    static_cast<unsigned long long>(seeds - failures),
                    static_cast<unsigned long long>(seeds));
        if (!writeExports()) return finish(1);
        return finish(failures == 0 ? 0 : 2);
    }

    if (!planPath.empty()) {
        std::ifstream in(planPath, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "rpkic-soak: cannot open %s\n", planPath.c_str());
            return finish(1);
        }
        std::stringstream buf;
        buf << in.rdbuf();
        FaultPlan plan;
        try {
            plan = FaultPlan::parse(buf.str());
        } catch (const ParseError& e) {
            std::fprintf(stderr, "rpkic-soak: %s: %s\n", planPath.c_str(), e.what());
            return finish(1);
        }
        if (!plan.pack.empty()) {
            // A pack plan: replay the pack run (delivery faults from the
            // plan, authority script and overlays re-derived from the
            // pack name + seed) and re-judge it against the oracle.
            std::printf("replaying %s: pack=%s seed=%llu rounds=%llu faults=%zu\n",
                        planPath.c_str(), plan.pack.c_str(),
                        static_cast<unsigned long long>(plan.seed),
                        static_cast<unsigned long long>(plan.rounds), plan.faults.size());
            adversary::PackRunConfig overrides;
            overrides.registry = exportRegistry;
            overrides.disableDetection = disableDetection;
            adversary::PackRunResult r;
            try {
                r = adversary::runPackWithPlan(plan, overrides);
            } catch (const Error& e) {
                std::fprintf(stderr, "rpkic-soak: %s: %s\n", planPath.c_str(), e.what());
                return finish(1);
            }
            printPackResult(r, /*quiet=*/false);
            writePostmortems(r.postmortems);
            if (!transcriptOut.empty() && !writeFileOrComplain(transcriptOut, r.transcript)) {
                return finish(1);
            }
            if (!writeExports()) return finish(1);
            return finish(r.passed ? 0 : 2);
        }
        std::printf("replaying %s: seed=%llu rounds=%llu faults=%zu crash-every=%u\n",
                    planPath.c_str(), static_cast<unsigned long long>(plan.seed),
                    static_cast<unsigned long long>(plan.rounds), plan.faults.size(),
                    plan.crashEvery);
        // Start from cfg so registry/status/epoch wiring (--serve, --rtr,
        // --rtr-dump) applies to replays too; plan-derived fields are
        // restored from the plan inside runSoakWithPlan.
        SoakConfig replayCfg = cfg;
        replayCfg.seed = plan.seed;
        applyStateDir(replayCfg);
        const SoakResult r = runSoakWithPlan(plan, replayCfg);
        printResult(r, /*quiet=*/false);
        if (scoreboard) printScoreboard(r);
        writePostmortems(r.postmortems);
        if (!rtrDump.empty() && !writeFileOrComplain(rtrDump, r.epochDump)) return finish(1);
        if (!rtrDump.empty() && !quiet) {
            std::printf("epoch dump written to %s\n", rtrDump.c_str());
        }
        if (!writeExports()) return finish(1);
        return finish(r.passed ? 0 : 2);
    }

    // The seed sweep fans out over the worker pool: every seed's run (and
    // its optional weakened --compare twin) is an independent task writing
    // only its own SeedOutcome slot. Results are printed afterwards in
    // seed order, so the report reads identically at every thread count.
    struct SeedOutcome {
        SoakResult result;
        SoakResult weakened;
        bool hasWeakened = false;
    };
    rc::parallel::Pool& pool = rc::parallel::defaultPool();
    const std::vector<SeedOutcome> outcomes =
        pool.parallelMap<SeedOutcome>(static_cast<std::size_t>(seeds), [&](std::size_t s) {
            SoakConfig runCfg = cfg;
            runCfg.seed = seedBase + s;
            applyStateDir(runCfg);
            SeedOutcome o;
            o.result = runSoak(runCfg);
            if (compare) {
                SoakConfig weak = runCfg;
                weak.retryBudget = 0;
                // The weakened twin is a diagnostic; keep its epochs out
                // of the live RTR store and the determinism dump.
                weak.rtrStore = nullptr;
                weak.captureEpochs = false;
                weak.onEpochPublished = nullptr;
                o.weakened = runSoak(weak);
                o.hasWeakened = true;
            }
            return o;
        });

    std::uint64_t failures = 0;
    std::uint64_t totalAlarms = 0, totalAbsorbed = 0, totalFailedRounds = 0, totalHits = 0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
        const SeedOutcome& o = outcomes[s];
        const SoakResult& r = o.result;
        printResult(r, quiet);
        if (scoreboard) printScoreboard(r);
        writePostmortems(r.postmortems);
        if (!r.passed) ++failures;
        totalAlarms += r.stats.alarms;
        totalAbsorbed += r.stats.faultsAbsorbed;
        totalFailedRounds += r.stats.pointRoundsFailed;
        totalHits += r.stats.faultApplications;

        if (o.hasWeakened) {
            const SoakResult& w = o.weakened;
            std::printf(
                "  compare seed %-6llu budget=%u: failed-rounds=%llu alarms=%llu "
                "roas=%zu | budget=0: failed-rounds=%llu alarms=%llu roas=%zu%s\n",
                static_cast<unsigned long long>(seedBase + s), cfg.retryBudget,
                static_cast<unsigned long long>(r.stats.pointRoundsFailed),
                static_cast<unsigned long long>(r.stats.alarms), r.stats.validRoasFinal,
                static_cast<unsigned long long>(w.stats.pointRoundsFailed),
                static_cast<unsigned long long>(w.stats.alarms), w.stats.validRoasFinal,
                w.passed ? "" : "  [weakened run FAILED invariants]");
        }
    }

    std::printf(
        "soak: %llu/%llu seeds passed  (fault hits=%llu, absorbed=%llu, "
        "point-rounds failed=%llu, alarms=%llu)\n",
        static_cast<unsigned long long>(seeds - failures),
        static_cast<unsigned long long>(seeds), static_cast<unsigned long long>(totalHits),
        static_cast<unsigned long long>(totalAbsorbed),
        static_cast<unsigned long long>(totalFailedRounds),
        static_cast<unsigned long long>(totalAlarms));
    if (!rtrDump.empty()) {
        std::string dump;
        for (std::uint64_t s = 0; s < seeds; ++s) dump += outcomes[s].result.epochDump;
        if (!writeFileOrComplain(rtrDump, dump)) return finish(1);
        if (!quiet) std::printf("epoch dump written to %s\n", rtrDump.c_str());
    }
    if (!writeExports()) return finish(1);
    return finish(failures == 0 ? 0 : 2);
}
