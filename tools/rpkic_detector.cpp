// rpkic-detector: the paper's §4.1 downgrade detector as a command-line
// tool, in the spirit of the authors' released RPKI_Downgrade_Detector.
//
//   rpkic-detector PREV.state CUR.state [--examples N] [--quiet]
//
// State files hold one "prefix[-maxLength] ASN" tuple per line (the valid
// ROAs of an RPKI snapshot, e.g. produced by a validator run). The tool
// diffs the two snapshots over the space of ALL possible routes and prints
// the downgrade report. Exit status: 0 = no downgrades, 2 = downgrades
// detected (so it can gate a monitoring pipeline), 1 = usage/parse error.
#include <cstdio>
#include <cstring>
#include <string>

#include "detector/diff.hpp"
#include "detector/state_io.hpp"
#include "util/errors.hpp"

using namespace rpkic;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: rpkic-detector PREV.state CUR.state [--examples N] [--quiet]\n"
                 "  state file format: one 'prefix[-maxLength] ASN' per line, '#' comments\n");
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    std::string prevPath;
    std::string curPath;
    std::size_t examples = 8;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--examples" && i + 1 < argc) {
            examples = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (prevPath.empty()) {
            prevPath = arg;
        } else if (curPath.empty()) {
            curPath = arg;
        } else {
            return usage();
        }
    }
    if (prevPath.empty() || curPath.empty()) return usage();

    try {
        const RpkiState prev = loadStateFile(prevPath);
        const RpkiState cur = loadStateFile(curPath);
        const DowngradeReport report = diffStates(prev, cur, examples);

        std::printf("states: %zu -> %zu ROA tuples\n", prev.size(), cur.size());
        std::printf("valid->invalid pairs:   %llu\n",
                    static_cast<unsigned long long>(report.validToInvalidPairs));
        std::printf("valid->unknown pairs:   %llu\n",
                    static_cast<unsigned long long>(report.validToUnknownPairs));
        std::printf("unknown->invalid pairs: %llu\n",
                    static_cast<unsigned long long>(report.unknownToInvalidPairs));
        std::printf("unknown->valid pairs:   %llu\n",
                    static_cast<unsigned long long>(report.unknownToValidPairs));
        std::printf("invalid addresses:      %llu -> %llu\n",
                    static_cast<unsigned long long>(report.invalidAddressesBefore),
                    static_cast<unsigned long long>(report.invalidAddressesAfter));

        if (!quiet) {
            for (const auto& t : report.tupleTransitions) {
                std::printf("%s route %s: %s -> %s\n",
                            t.isDowngrade() ? "DOWNGRADE" : "change   ",
                            t.route.str().c_str(), std::string(toString(t.before)).c_str(),
                            std::string(toString(t.after)).c_str());
            }
            for (const auto& as : report.perAs) {
                if (as.exampleLostValid.empty()) continue;
                std::printf("AS%u lost validity for:", as.asn);
                for (const auto& p : as.exampleLostValid) {
                    std::printf(" %s", p.str().c_str());
                }
                std::printf("\n");
            }
            for (const auto& c : report.competingRoas) {
                std::printf("COMPETING ROA: %s contests %s\n", c.added.str().c_str(),
                            c.existing.str().c_str());
            }
        }
        return report.hasDowngrades() ? 2 : 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "rpkic-detector: %s\n", e.what());
        return 1;
    }
}
