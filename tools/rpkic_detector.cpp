// rpkic-detector: the paper's §4.1 downgrade detector as a command-line
// tool, in the spirit of the authors' released RPKI_Downgrade_Detector.
//
//   rpkic-detector PREV.state CUR.state [--examples N] [--quiet]
//                  [--threads N] [--metrics-out FILE] [--trace-out FILE]
//                  [--serve ADDR:PORT] [--serve-hold]
//
// --metrics-out writes the Prometheus text exposition of the rc_detector_*
// metrics after the diff (index build/diff timings on the deterministic
// logical clock, downgrade counts by kind); --trace-out writes the span
// trace as Chrome trace-event JSON (load in Perfetto).
//
// --serve exposes the live introspection endpoints (/metrics, /healthz,
// /statusz, /flightz) for the duration of the run; --serve-hold keeps
// them up after the diff completes until SIGINT/SIGTERM, so a scraper can
// read the final counters (port 0 picks an ephemeral port; the bound
// address is printed).
//
// --rtr publishes the two snapshots as consecutive RTR epochs (PREV =
// serial 0, CUR = serial 1) and serves them over the RFC 8210 v1 wire
// protocol: a cache connecting with a Reset Query gets the CUR snapshot;
// one holding serial 0 gets exactly the announce/withdraw delta the
// downgrade report was computed from. Implies holding until
// SIGINT/SIGTERM (like --serve-hold). See docs/SERVING.md.
//
// --threads N (or the RC_THREADS env var; the flag wins) sizes the worker
// pool the index build and diff run on; "0" means all hardware threads.
// The report is byte-identical at every thread count.
//
// State files hold one "prefix[-maxLength] ASN" tuple per line (the valid
// ROAs of an RPKI snapshot, e.g. produced by a validator run). The tool
// diffs the two snapshots over the space of ALL possible routes and prints
// the downgrade report. Exit status: 0 = no downgrades, 2 = downgrades
// detected (so it can gate a monitoring pipeline), 1 = usage/parse error.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#include "detector/diff.hpp"
#include "detector/state_io.hpp"
#include "obs/flight/recorder.hpp"
#include "obs/obs.hpp"
#include "obs/parallel_metrics.hpp"
#include "obs/serve/introspect.hpp"
#include "serve/epoch.hpp"
#include "serve/rtr.hpp"
#include "util/errors.hpp"
#include "util/parallel.hpp"

using namespace rpkic;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: rpkic-detector PREV.state CUR.state [--examples N] [--quiet]\n"
                 "                      [--threads N] [--metrics-out FILE] [--trace-out FILE]\n"
                 "                      [--serve ADDR:PORT] [--serve-hold] [--rtr ADDR:PORT]\n"
                 "  state file format: one 'prefix[-maxLength] ASN' per line, '#' comments\n"
                 "  --rtr ADDR:PORT: serve PREV/CUR as RTR epochs 0/1 (RFC 8210 v1) and\n"
                 "               hold until SIGINT/SIGTERM (port 0 = ephemeral)\n"
                 "  --threads N: worker pool size (0 = all hardware threads); overrides\n"
                 "               the RC_THREADS env var. Reports are byte-identical at\n"
                 "               every thread count.\n");
    return 1;
}

bool writeFileOrComplain(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "rpkic-detector: cannot write %s\n", path.c_str());
        return false;
    }
    out << content;
    return true;
}

std::atomic<bool> gStopServing{false};

extern "C" void onStopSignal(int) { gStopServing.store(true); }

}  // namespace

int main(int argc, char** argv) {
    std::string prevPath;
    std::string curPath;
    std::size_t examples = 8;
    bool quiet = false;
    std::string metricsOut;
    std::string traceOut;
    std::string threadSpec;
    std::string serveAddr;
    std::string rtrAddr;
    bool serveHold = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--examples" && i + 1 < argc) {
            examples = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            threadSpec = argv[++i];
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metricsOut = argv[++i];
        } else if (arg == "--trace-out" && i + 1 < argc) {
            traceOut = argv[++i];
        } else if (arg == "--serve" && i + 1 < argc) {
            serveAddr = argv[++i];
        } else if (arg == "--rtr" && i + 1 < argc) {
            rtrAddr = argv[++i];
        } else if (arg == "--serve-hold") {
            serveHold = true;
        } else if (prevPath.empty()) {
            prevPath = arg;
        } else if (curPath.empty()) {
            curPath = arg;
        } else {
            return usage();
        }
    }
    if (prevPath.empty() || curPath.empty()) return usage();

    // Deterministic telemetry: identical inputs must dump identical bytes.
    static obs::LogicalTimeSource logicalClock;
    if (!metricsOut.empty() || !traceOut.empty()) obs::setTimeSource(&logicalClock);
    if (!traceOut.empty()) obs::Tracer::global().setEnabled(true);

    std::optional<obs::IntrospectionServer> server;
    if (!serveAddr.empty()) {
        obs::FlightRecorder::global().attachMetrics(&obs::Registry::global());
        obs::FlightRecorder::global().setEnabled(true);
        server.emplace();
        std::string error;
        if (!server->start(serveAddr, &error)) {
            std::fprintf(stderr, "rpkic-detector: --serve %s: %s\n", serveAddr.c_str(),
                         error.c_str());
            return 1;
        }
        std::printf("introspection server on http://%s/\n", server->boundAddress().c_str());
        std::fflush(stdout);
        std::signal(SIGINT, onStopSignal);
        std::signal(SIGTERM, onStopSignal);
        obs::StatusBoard::global().set("detector/prev", prevPath);
        obs::StatusBoard::global().set("detector/cur", curPath);
        obs::StatusBoard::global().set("detector/state", "running");
    }
    std::optional<serve::EpochStore> rtrStore;
    std::optional<serve::RtrServer> rtrServer;
    if (!rtrAddr.empty()) {
        std::signal(SIGINT, onStopSignal);
        std::signal(SIGTERM, onStopSignal);
    }
    const auto finish = [&](int rc) -> int {
        if (server.has_value()) {
            obs::StatusBoard::global().set("detector/state",
                                           rc == 0   ? "done"
                                           : rc == 2 ? "downgrades"
                                                     : "error");
        }
        const bool holdRtr = rtrServer.has_value() && rtrServer->running() && rc != 1;
        if ((server.has_value() && serveHold) || holdRtr) {
            std::printf("rpkic-detector: holding %s%s%s (SIGINT/SIGTERM to exit)\n",
                        server.has_value() ? "introspection server" : "",
                        server.has_value() && holdRtr ? " + " : "",
                        holdRtr ? "rtr server" : "");
            std::fflush(stdout);
            while (!gStopServing.load()) {
                std::this_thread::sleep_for(std::chrono::milliseconds(100));
            }
        }
        if (rtrServer.has_value()) rtrServer->stop();
        if (server.has_value()) server->stop();
        return rc;
    };

    try {
        // --threads overrides RC_THREADS, which the default pool otherwise
        // honors. The obs adapter feeds the rc_parallel_* metric family.
        const std::size_t threads = threadSpec.empty()
                                        ? rc::parallel::defaultThreadCount()
                                        : rc::parallel::parseThreadSpec(threadSpec);
        rc::parallel::configureDefaultPool(threads, &obs::parallelMetricsObserver());
        const RpkiState prev = loadStateFile(prevPath);
        const RpkiState cur = loadStateFile(curPath);
        if (!rtrAddr.empty()) {
            serve::EpochStore::Options storeOpts;
            storeOpts.registry = &obs::Registry::global();
            rtrStore.emplace(storeOpts);
            rtrStore->publish(1, std::make_shared<const RpkiState>(prev));
            rtrStore->publish(2, std::make_shared<const RpkiState>(cur));
            serve::RtrServer::Options rtrOpts;
            rtrOpts.socket.registry = &obs::Registry::global();
            rtrOpts.core.registry = &obs::Registry::global();
            rtrServer.emplace(*rtrStore, rtrOpts);
            std::string error;
            if (!rtrServer->start(rtrAddr, &error)) {
                std::fprintf(stderr, "rpkic-detector: --rtr %s: %s\n", rtrAddr.c_str(),
                             error.c_str());
                return finish(1);
            }
            std::printf("rtr server on %s (RFC 8210 v1, serials 0 -> 1)\n",
                        rtrServer->boundAddress().c_str());
            std::fflush(stdout);
        }
        const DowngradeReport report = diffStates(prev, cur, examples);

        std::printf("states: %zu -> %zu ROA tuples\n", prev.size(), cur.size());
        std::printf("valid->invalid pairs:   %llu\n",
                    static_cast<unsigned long long>(report.validToInvalidPairs));
        std::printf("valid->unknown pairs:   %llu\n",
                    static_cast<unsigned long long>(report.validToUnknownPairs));
        std::printf("unknown->invalid pairs: %llu\n",
                    static_cast<unsigned long long>(report.unknownToInvalidPairs));
        std::printf("unknown->valid pairs:   %llu\n",
                    static_cast<unsigned long long>(report.unknownToValidPairs));
        std::printf("invalid addresses:      %llu -> %llu\n",
                    static_cast<unsigned long long>(report.invalidAddressesBefore),
                    static_cast<unsigned long long>(report.invalidAddressesAfter));

        if (!quiet) {
            for (const auto& t : report.tupleTransitions) {
                std::printf("%s route %s: %s -> %s\n",
                            t.isDowngrade() ? "DOWNGRADE" : "change   ",
                            t.route.str().c_str(), std::string(toString(t.before)).c_str(),
                            std::string(toString(t.after)).c_str());
            }
            for (const auto& as : report.perAs) {
                if (as.exampleLostValid.empty()) continue;
                std::printf("AS%u lost validity for:", as.asn);
                for (const auto& p : as.exampleLostValid) {
                    std::printf(" %s", p.str().c_str());
                }
                std::printf("\n");
            }
            for (const auto& c : report.competingRoas) {
                std::printf("COMPETING ROA: %s contests %s\n", c.added.str().c_str(),
                            c.existing.str().c_str());
            }
        }
        if (!metricsOut.empty() &&
            !writeFileOrComplain(metricsOut, obs::Registry::global().renderPrometheus())) {
            return finish(1);
        }
        if (!traceOut.empty() &&
            !writeFileOrComplain(traceOut, obs::Tracer::global().renderChromeTrace())) {
            return finish(1);
        }
        return finish(report.hasDowngrades() ? 2 : 0);
    } catch (const Error& e) {
        std::fprintf(stderr, "rpkic-detector: %s\n", e.what());
        return finish(1);
    }
}
