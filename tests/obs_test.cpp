// Tests for the rpkiscope observability layer (src/obs/): histogram
// bucket-edge placement, Prometheus exposition + linter, Chrome-trace
// well-formedness, same-seed determinism of the chaos soak's telemetry
// dumps, telemetry-view consistency, and the structured logger.
//
// This binary doubles as the CI exposition linter:
//
//   obs_test --lint FILE...
//
// reads each FILE, runs obs::lintPrometheus over it, prints every problem,
// and exits non-zero if any file is dirty. CI points it at the soak's
// --metrics-out artifact, so the linter the tests validate is the same
// code that guards production dumps.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/chaos_soak.hpp"
#include "util/errors.hpp"

namespace rpkic {
namespace {

using obs::Labels;
using obs::LogLevel;

// --- minimal JSON validator -------------------------------------------------
// Enough of RFC 8259 to certify that renderChromeTrace()/renderJson()
// output parses: objects, arrays, strings with escapes, numbers, literals.
class JsonChecker {
public:
    explicit JsonChecker(const std::string& text) : text_(text) {}

    bool valid() {
        pos_ = 0;
        skipWs();
        if (!value()) return false;
        skipWs();
        return pos_ == text_.size();
    }

private:
    bool value() {
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }

    bool object() {
        ++pos_;  // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!string()) return false;
            skipWs();
            if (peek() != ':') return false;
            ++pos_;
            skipWs();
            if (!value()) return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array() {
        ++pos_;  // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!value()) return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') { ++pos_; return true; }
            if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) return false;
                const char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
                            return false;
                        }
                    }
                    pos_ += 4;
                } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                           e != 'n' && e != 'r' && e != 't') {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        if (!digits()) return false;
        if (peek() == '.') {
            ++pos_;
            if (!digits()) return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') ++pos_;
            if (!digits()) return false;
        }
        return pos_ > start;
    }

    bool digits() {
        const std::size_t start = pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char* word) {
        for (const char* p = word; *p != '\0'; ++p, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *p) return false;
        }
        return true;
    }

    void skipWs() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    const std::string& text_;
    std::size_t pos_ = 0;
};

/// Restores the steady clock even when an assertion throws mid-test.
struct TimeSourceGuard {
    explicit TimeSourceGuard(obs::TimeSource* source) { obs::setTimeSource(source); }
    ~TimeSourceGuard() { obs::setTimeSource(nullptr); }
};

// --- histograms -------------------------------------------------------------

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds) {
    obs::HistogramSpec spec;
    spec.firstBound = 1.0;
    spec.growth = 2.0;
    spec.bucketCount = 4;
    obs::Histogram h(spec);

    ASSERT_EQ(h.bounds().size(), 4u);
    EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
    EXPECT_DOUBLE_EQ(h.bounds()[1], 2.0);
    EXPECT_DOUBLE_EQ(h.bounds()[2], 4.0);
    EXPECT_DOUBLE_EQ(h.bounds()[3], 8.0);

    h.observe(1.0);   // == bound 0: Prometheus `le` is inclusive
    h.observe(1.5);   // bucket 1
    h.observe(2.0);   // == bound 1
    h.observe(8.0);   // == last finite bound
    h.observe(8.01);  // +Inf only
    h.observe(0.0);   // below everything: bucket 0

    EXPECT_EQ(h.bucketCount(0), 2u);  // 1.0, 0.0
    EXPECT_EQ(h.bucketCount(1), 2u);  // 1.5, 2.0
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);  // 8.0
    EXPECT_EQ(h.bucketCount(4), 1u);  // +Inf overflow: 8.01
    EXPECT_EQ(h.totalCount(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 2.0 + 8.0 + 8.01 + 0.0);
}

TEST(ObsHistogram, DefaultSpecSpansMicrosecondsToSeconds) {
    obs::Histogram h{obs::HistogramSpec{}};
    ASSERT_EQ(h.bounds().size(), 32u);
    EXPECT_DOUBLE_EQ(h.bounds().front(), 1e-6);
    EXPECT_GT(h.bounds().back(), 1.0);  // covers multi-second outliers
    // Strictly ascending — required for cumulative exposition.
    for (std::size_t i = 1; i < h.bounds().size(); ++i) {
        EXPECT_LT(h.bounds()[i - 1], h.bounds()[i]);
    }
}

TEST(ObsHistogram, ExpositionBucketsAreCumulative) {
    obs::Registry reg;
    obs::HistogramSpec spec;
    spec.firstBound = 0.001;
    spec.growth = 10.0;
    spec.bucketCount = 3;
    obs::Histogram& h = reg.histogram("rc_test_seconds", "test latencies", {}, spec);
    h.observe(0.0005);
    h.observe(0.005);
    h.observe(0.05);
    h.observe(5.0);

    const auto samples = obs::parsePrometheus(reg.renderPrometheus());
    std::vector<double> bucketValues;
    double count = -1.0;
    for (const auto& s : samples) {
        if (s.name == "rc_test_seconds_bucket") bucketValues.push_back(s.value);
        if (s.name == "rc_test_seconds_count") count = s.value;
    }
    ASSERT_EQ(bucketValues.size(), 4u);  // 3 finite + +Inf
    for (std::size_t i = 1; i < bucketValues.size(); ++i) {
        EXPECT_GE(bucketValues[i], bucketValues[i - 1]) << "bucket " << i << " not cumulative";
    }
    EXPECT_DOUBLE_EQ(bucketValues.back(), 4.0);  // +Inf == _count
    EXPECT_DOUBLE_EQ(count, 4.0);
}

// --- registry contract ------------------------------------------------------

TEST(ObsRegistry, EnforcesNamingRules) {
    obs::Registry reg;
    // rclint:allow(metric-name) — the point of this test is the bad name.
    EXPECT_THROW(reg.counter("rc_bad_counter", "no _total suffix"), UsageError);
    EXPECT_THROW(reg.counter("1bad_total", "bad leading digit"), UsageError);
    // A name registered as one type cannot come back as another.
    reg.counter("rc_clash_total", "counter first");
    EXPECT_THROW(reg.gauge("rc_clash_total", "now as gauge"), UsageError);
    EXPECT_THROW(reg.counter("rc_labels_total", "bad label", {{"1bad", "v"}}), UsageError);
}

TEST(ObsRegistry, SameNameAndLabelsReturnsSameInstrument) {
    obs::Registry reg;
    obs::Counter& a = reg.counter("rc_dedupe_total", "x", {{"k", "v"}});
    obs::Counter& b = reg.counter("rc_dedupe_total", "x", {{"k", "v"}});
    obs::Counter& c = reg.counter("rc_dedupe_total", "x", {{"k", "other"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, RenderIsLintCleanAndDeterministic) {
    obs::Registry reg;
    reg.counter("rc_events_total", "events", {{"kind", "a\\b\"c\nd"}}).inc(7);
    reg.gauge("rc_depth", "queue depth").set(-3);
    reg.histogram("rc_latency_seconds", "latency").observe(0.01);

    const std::string text = reg.renderPrometheus();
    const auto problems = obs::lintPrometheus(text);
    for (const auto& p : problems) ADD_FAILURE() << "lint: " << p;
    EXPECT_EQ(text, reg.renderPrometheus()) << "render must be deterministic";

    // The escaped label value must round-trip through the parser intact.
    const auto samples = obs::parsePrometheus(text);
    bool sawEscaped = false;
    for (const auto& s : samples) {
        if (s.name == "rc_events_total") {
            sawEscaped = s.labels.find("a\\\\b\\\"c\\nd") != std::string::npos;
            EXPECT_DOUBLE_EQ(s.value, 7.0);
        }
    }
    EXPECT_TRUE(sawEscaped) << "escaped label value missing from exposition:\n" << text;
}

TEST(ObsRegistry, CountersAreMonotoneAcrossDumps) {
    obs::Registry reg;
    obs::Counter& c = reg.counter("rc_mono_total", "m", {{"k", "v"}});
    c.inc(2);
    const auto first = obs::parsePrometheus(reg.renderPrometheus());
    c.inc(5);
    const auto second = obs::parsePrometheus(reg.renderPrometheus());

    std::map<std::string, double> before;
    for (const auto& s : first) before[s.name + "{" + s.labels + "}"] = s.value;
    for (const auto& s : second) {
        const auto it = before.find(s.name + "{" + s.labels + "}");
        if (it == before.end()) continue;
        EXPECT_GE(s.value, it->second) << s.name << " went backwards";
    }
}

TEST(ObsRegistry, JsonDumpIsValidJson) {
    obs::Registry reg;
    reg.counter("rc_json_total", "j", {{"quote", "a\"b"}}).inc(1);
    reg.histogram("rc_json_seconds", "j").observe(0.5);
    const std::string json = reg.renderJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST(ObsRegistry, SnapshotIsPlainDataEquivalentToLiveRender) {
    // Registry::snapshot() is what /metrics and --metrics-out render
    // from: a torn-read-free copy whose exposition must be exactly the
    // live registry's, and which stays frozen while the source moves on.
    obs::Registry reg;
    reg.counter("rc_snap_total", "s", {{"k", "v"}}).inc(4);
    reg.gauge("rc_snap_depth", "d").set(9);
    obs::Histogram& h = reg.histogram("rc_snap_seconds", "s");
    h.observe(0.002);
    h.observe(1.5);

    const obs::RegistrySnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.renderPrometheus(), reg.renderPrometheus());
    EXPECT_EQ(snap.renderJson(), reg.renderJson());
    EXPECT_TRUE(obs::lintPrometheus(snap.renderPrometheus()).empty());

    ASSERT_EQ(snap.families.size(), 3u);  // sorted by name
    EXPECT_EQ(snap.families[0].name, "rc_snap_depth");
    EXPECT_EQ(snap.families[1].name, "rc_snap_seconds");
    EXPECT_EQ(snap.families[2].name, "rc_snap_total");

    const obs::FamilySnapshot* counter = snap.find("rc_snap_total");
    ASSERT_NE(counter, nullptr);
    ASSERT_EQ(counter->series.size(), 1u);
    EXPECT_EQ(counter->series[0].labels, "{k=\"v\"}");
    EXPECT_EQ(counter->series[0].value, 4.0);
    const obs::FamilySnapshot* hist = snap.find("rc_snap_seconds");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->series[0].count, 2u);
    EXPECT_EQ(snap.find("rc_absent_total"), nullptr);

    // The snapshot is decoupled: later writes do not retroactively
    // appear in it.
    reg.counter("rc_snap_total", "s", {{"k", "v"}}).inc(10);
    const obs::FamilySnapshot* again = snap.find("rc_snap_total");
    EXPECT_EQ(again->series[0].value, 4.0);
}

// --- the linter itself ------------------------------------------------------

TEST(ObsLint, AcceptsMinimalValidExposition) {
    const std::string text =
        "# HELP rc_ok_total fine\n"
        "# TYPE rc_ok_total counter\n"
        "rc_ok_total{k=\"v\"} 3\n";
    EXPECT_TRUE(obs::lintPrometheus(text).empty());
}

TEST(ObsLint, CatchesStructuralProblems) {
    // One problem per input; each must be flagged.
    const std::vector<std::string> dirty = {
        // sample without HELP/TYPE headers
        "rc_orphan_total 1\n",
        // TYPE after the first sample
        "# HELP rc_late_total x\nrc_late_total 1\n# TYPE rc_late_total counter\n",
        // counter missing the _total suffix
        "# HELP rc_notcounter y\n# TYPE rc_notcounter counter\nrc_notcounter 2\n",
        // negative counter
        "# HELP rc_neg_total z\n# TYPE rc_neg_total counter\nrc_neg_total -1\n",
        // non-cumulative histogram buckets
        "# HELP rc_h_seconds h\n# TYPE rc_h_seconds histogram\n"
        "rc_h_seconds_bucket{le=\"1\"} 5\n"
        "rc_h_seconds_bucket{le=\"2\"} 3\n"
        "rc_h_seconds_bucket{le=\"+Inf\"} 5\n"
        "rc_h_seconds_sum 1\nrc_h_seconds_count 5\n",
        // +Inf bucket disagrees with _count
        "# HELP rc_g_seconds h\n# TYPE rc_g_seconds histogram\n"
        "rc_g_seconds_bucket{le=\"1\"} 2\n"
        "rc_g_seconds_bucket{le=\"+Inf\"} 2\n"
        "rc_g_seconds_sum 1\nrc_g_seconds_count 9\n",
        // duplicate series
        "# HELP rc_dup_total d\n# TYPE rc_dup_total counter\n"
        "rc_dup_total{k=\"v\"} 1\nrc_dup_total{k=\"v\"} 2\n",
        // unquoted label value
        "# HELP rc_esc_total e\n# TYPE rc_esc_total counter\n"
        "rc_esc_total{k=unquoted} 1\n",
        // invalid metric name
        "# HELP rc-dash_total e\n# TYPE rc-dash_total counter\nrc-dash_total 1\n",
    };
    for (const auto& text : dirty) {
        EXPECT_FALSE(obs::lintPrometheus(text).empty())
            << "linter accepted dirty input:\n" << text;
    }
}

TEST(ObsLint, RealSoakExpositionIsClean) {
    TimeSourceGuard guard(nullptr);  // wall clock is fine; lint is value-agnostic
    obs::Registry reg;
    sim::SoakConfig cfg;
    cfg.seed = 5;
    cfg.rounds = 8;
    cfg.registry = &reg;
    (void)sim::runSoak(cfg);
    const std::string text = reg.renderPrometheus();
    const auto problems = obs::lintPrometheus(text);
    for (const auto& p : problems) ADD_FAILURE() << "lint: " << p;
    // The acceptance metrics must be present.
    EXPECT_NE(text.find("rc_alarms_total"), std::string::npos);
    EXPECT_NE(text.find("rc_sync_attempts_total"), std::string::npos);
    EXPECT_NE(text.find("rc_rp_procedure_seconds"), std::string::npos);
}

// --- tracing ----------------------------------------------------------------

TEST(ObsTrace, ChromeTraceIsValidJsonWithExpectedShape) {
    obs::LogicalTimeSource clock(1000);
    TimeSourceGuard guard(&clock);
    obs::Tracer tracer(16);
    tracer.setEnabled(true);
    {
        auto outer = tracer.span("outer", "test");
        auto inner = tracer.span("inner", "test");
    }
    ASSERT_EQ(tracer.size(), 2u);

    const std::string json = tracer.renderChromeTrace();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"outer\""), std::string::npos);
}

TEST(ObsTrace, RingBoundsMemoryAndCountsDrops) {
    obs::LogicalTimeSource clock(1);
    TimeSourceGuard guard(&clock);
    obs::Tracer tracer(4);
    tracer.setEnabled(true);
    for (int i = 0; i < 10; ++i) {
        auto s = tracer.span("tick", "test");
    }
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    const auto events = tracer.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LT(events[i - 1].seq, events[i].seq) << "snapshot out of order";
    }
}

TEST(ObsTrace, DisabledTracerRecordsNothing) {
    obs::Tracer tracer(8);
    {
        auto s = tracer.span("ghost", "test");
    }
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_TRUE(JsonChecker(tracer.renderChromeTrace()).valid());
}

// --- determinism ------------------------------------------------------------

TEST(ObsDeterminism, SameSeedSoakDumpsAreByteIdentical) {
    obs::LogicalTimeSource clock(1000);
    TimeSourceGuard guard(&clock);

    const auto dump = [](std::uint64_t seed) {
        obs::Registry reg;
        sim::SoakConfig cfg;
        cfg.seed = seed;
        cfg.rounds = 10;
        cfg.registry = &reg;
        (void)sim::runSoak(cfg);
        return reg.renderPrometheus();
    };

    const std::string first = dump(7);
    const std::string second = dump(7);
    EXPECT_EQ(first, second) << "same-seed soak telemetry must be byte-identical";
    EXPECT_NE(first, dump(8)) << "different seeds should diverge";
}

TEST(ObsDeterminism, LogicalClockIsMonotoneAndSteppy) {
    obs::LogicalTimeSource clock(250, 1000);
    EXPECT_EQ(clock.nowNanos(), 1250u);
    EXPECT_EQ(clock.nowNanos(), 1500u);
    obs::LogicalTimeSource zeroStep(0);  // clamps to 1, never stalls
    const std::uint64_t a = zeroStep.nowNanos();
    const std::uint64_t b = zeroStep.nowNanos();
    EXPECT_LT(a, b);
}

// --- telemetry views --------------------------------------------------------

TEST(ObsTelemetry, SoakRoundReportsSumToStats) {
    obs::Registry reg;
    sim::SoakConfig cfg;
    cfg.seed = 3;
    cfg.rounds = 12;
    cfg.registry = &reg;
    const sim::SoakResult r = sim::runSoak(cfg);
    ASSERT_EQ(r.rounds.size(), cfg.rounds);

    std::uint64_t attempts = 0, retries = 0, absorbed = 0, failed = 0;
    for (const auto& round : r.rounds) {
        attempts += round.attempts;
        retries += round.retries;
        absorbed += round.faultsAbsorbed;
        failed += round.pointsFailed;
    }
    EXPECT_EQ(attempts, r.stats.attempts);
    EXPECT_EQ(retries, r.stats.retries);
    EXPECT_EQ(absorbed, r.stats.faultsAbsorbed);
    EXPECT_EQ(failed, r.stats.pointRoundsFailed);

    // The registry agrees with the materialized stats: the chaotic
    // engine's labelled attempt counters sum to at least the report sum
    // (the registry also holds the twin engine's series).
    double regAttempts = 0;
    for (const auto& s : obs::parsePrometheus(reg.renderPrometheus())) {
        if (s.name == "rc_sync_attempts_total") regAttempts += s.value;
    }
    EXPECT_GE(regAttempts, static_cast<double>(attempts));
}

// --- logger -----------------------------------------------------------------

TEST(ObsLog, LevelsFilterAndLinesAreStructured) {
    obs::Logger logger;
    std::vector<std::string> lines;
    logger.setSink([&](const std::string& line) { lines.push_back(line); });

    logger.setLevel(LogLevel::Warn);
    logger.log(LogLevel::Info, "sync", "ignored");
    logger.log(LogLevel::Warn, "sync", "point-quarantined",
               {{"point", "rpki://a/"}, {"failures", "3"}});
    logger.log(LogLevel::Error, "rp", "alarm");
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0],
              "level=warn comp=sync event=point-quarantined point=rpki://a/ failures=3");
    EXPECT_EQ(lines[1], "level=error comp=rp event=alarm");

    logger.setLevel(LogLevel::Off);
    logger.log(LogLevel::Error, "rp", "dropped");
    EXPECT_EQ(lines.size(), 2u);
}

TEST(ObsLog, RateLimitSuppressesPerComponentEvent) {
    obs::LogicalTimeSource clock(1);  // 1ns per read: all events in one window
    TimeSourceGuard guard(&clock);

    obs::Logger logger;
    std::vector<std::string> lines;
    logger.setSink([&](const std::string& line) { lines.push_back(line); });
    logger.setLevel(LogLevel::Info);
    logger.setRateLimit(2, 1'000'000'000ull);

    for (int i = 0; i < 5; ++i) logger.log(LogLevel::Warn, "sync", "flap");
    logger.log(LogLevel::Warn, "sync", "other-event");  // separate bucket
    EXPECT_EQ(lines.size(), 3u);  // 2 flaps + 1 other
    EXPECT_EQ(logger.suppressed(), 3u);

    // burst=0 disables limiting entirely.
    obs::Logger unlimited;
    std::size_t count = 0;
    unlimited.setSink([&](const std::string&) { ++count; });
    unlimited.setLevel(LogLevel::Info);
    unlimited.setRateLimit(0, 1'000'000'000ull);
    for (int i = 0; i < 50; ++i) unlimited.log(LogLevel::Warn, "sync", "flap");
    EXPECT_EQ(count, 50u);
}

TEST(ObsLog, LevelParsingRoundTrips) {
    EXPECT_EQ(obs::logLevelFromString("warn"), LogLevel::Warn);
    EXPECT_EQ(obs::logLevelFromString("ERROR"), LogLevel::Error);
    EXPECT_EQ(obs::logLevelFromString("nonsense"), LogLevel::Off);
    EXPECT_EQ(obs::toString(LogLevel::Debug), "debug");
}

// --- runtime switch ---------------------------------------------------------

TEST(ObsRuntime, MacroGateStopsRecordingWhenDisabled) {
    if (!obs::compiledIn()) GTEST_SKIP() << "RC_OBSERVABILITY=OFF build";
    obs::Registry reg;
    obs::Counter& c = reg.counter("rc_gate_total", "gate");
    obs::setRuntimeEnabled(true);
    RC_OBS_COUNT(c, 2);
    obs::setRuntimeEnabled(false);
    RC_OBS_COUNT(c, 100);
    obs::setRuntimeEnabled(true);
    EXPECT_EQ(c.value(), 2u);
}

}  // namespace
}  // namespace rpkic

// Custom main: `--lint FILE...` turns this binary into the CI exposition
// linter; anything else falls through to googletest.
int main(int argc, char** argv) {
    if (argc >= 2 && std::string(argv[1]) == "--lint") {
        if (argc < 3) {
            std::fprintf(stderr, "usage: obs_test --lint FILE...\n");
            return 1;
        }
        int dirty = 0;
        for (int i = 2; i < argc; ++i) {
            std::ifstream in(argv[i], std::ios::binary);
            if (!in) {
                std::fprintf(stderr, "obs_test: cannot open %s\n", argv[i]);
                return 1;
            }
            std::stringstream buf;
            buf << in.rdbuf();
            const auto problems = rpkic::obs::lintPrometheus(buf.str());
            if (problems.empty()) {
                std::printf("%s: clean\n", argv[i]);
            } else {
                ++dirty;
                std::printf("%s: %zu problem(s)\n", argv[i], problems.size());
                for (const auto& p : problems) std::printf("  %s\n", p.c_str());
            }
        }
        return dirty == 0 ? 0 : 2;
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
