// IntervalSet algebra: unit cases plus randomized property tests against a
// brute-force bitset oracle on a small universe.
#include "ip/interval_set.hpp"

#include <gtest/gtest.h>

#include <bitset>

#include "ip/u128.hpp"
#include "util/rng.hpp"

namespace rpkic {
namespace {

using Set64 = IntervalSet<std::uint64_t>;

TEST(IntervalSet, EmptyBehaviour) {
    Set64 s;
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.contains(0));
    EXPECT_EQ(s.countU64(), 0u);
    EXPECT_TRUE(s.unionWith(s).empty());
    EXPECT_TRUE(s.intersect(s).empty());
    EXPECT_TRUE(s.subtract(s).empty());
}

TEST(IntervalSet, InsertMergesOverlapping) {
    Set64 s;
    s.insert(10, 20);
    s.insert(15, 30);
    EXPECT_EQ(s.intervalCount(), 1u);
    EXPECT_TRUE(s.containsRange(10, 30));
    EXPECT_EQ(s.countU64(), 21u);
}

TEST(IntervalSet, InsertMergesAdjacent) {
    Set64 s;
    s.insert(10, 20);
    s.insert(21, 30);  // adjacent, must merge
    EXPECT_EQ(s.intervalCount(), 1u);
    s.insert(32, 40);  // gap of one, must not merge
    EXPECT_EQ(s.intervalCount(), 2u);
    EXPECT_FALSE(s.contains(31));
}

TEST(IntervalSet, InsertBridgesManyIntervals) {
    Set64 s;
    s.insert(0, 1);
    s.insert(10, 11);
    s.insert(20, 21);
    s.insert(2, 19);
    EXPECT_EQ(s.intervalCount(), 1u);
    EXPECT_TRUE(s.containsRange(0, 21));
}

TEST(IntervalSet, FullU64RangeNoOverflow) {
    Set64 s;
    s.insert(0, ~0ULL);
    EXPECT_TRUE(s.contains(0));
    EXPECT_TRUE(s.contains(~0ULL));
    s.insert(5, 10);  // swallowed
    EXPECT_EQ(s.intervalCount(), 1u);
}

TEST(IntervalSet, FullU128RangeNoOverflow) {
    IntervalSet<U128> s;
    s.insert(U128{0, 0}, U128::max());
    EXPECT_TRUE(s.contains(U128::max()));
    EXPECT_EQ(s.intervalCount(), 1u);
    // Adjacency check at the top must not wrap.
    IntervalSet<U128> t;
    t.insert(U128::max(), U128::max());
    t.insert(U128{0, 0}, U128{0, 0});
    EXPECT_EQ(t.intervalCount(), 2u);
}

TEST(IntervalSet, SubtractSplitsInterval) {
    Set64 s;
    s.insert(0, 100);
    Set64 hole;
    hole.insert(40, 60);
    const Set64 r = s.subtract(hole);
    EXPECT_EQ(r.intervalCount(), 2u);
    EXPECT_TRUE(r.containsRange(0, 39));
    EXPECT_TRUE(r.containsRange(61, 100));
    EXPECT_FALSE(r.contains(40));
    EXPECT_FALSE(r.contains(60));
}

TEST(IntervalSet, FromIntervalsBatchBuild) {
    const Set64 s = Set64::fromIntervals({{50, 60}, {10, 20}, {15, 30}, {61, 70}});
    EXPECT_EQ(s.intervalCount(), 2u);
    EXPECT_TRUE(s.containsRange(10, 30));
    EXPECT_TRUE(s.containsRange(50, 70));
}

TEST(IntervalSet, IntersectsRange) {
    Set64 s;
    s.insert(10, 20);
    EXPECT_TRUE(s.intersectsRange(0, 10));
    EXPECT_TRUE(s.intersectsRange(20, 30));
    EXPECT_TRUE(s.intersectsRange(15, 16));
    EXPECT_FALSE(s.intersectsRange(0, 9));
    EXPECT_FALSE(s.intersectsRange(21, 30));
}

TEST(IntervalSet, RejectsInvertedInterval) {
    Set64 s;
    EXPECT_THROW(s.insert(5, 4), UsageError);
    EXPECT_THROW(Set64::single(5, 4), UsageError);
}

// ---------------------------------------------------------------------------
// Property tests against a bitset oracle on universe [0, 256).

constexpr std::size_t kUniverse = 256;
using Oracle = std::bitset<kUniverse>;

Set64 fromOracle(const Oracle& o) {
    Set64 s;
    for (std::size_t i = 0; i < kUniverse; ++i) {
        if (o[i]) s.insert(i, i);
    }
    return s;
}

Oracle toOracle(const Set64& s) {
    Oracle o;
    for (std::size_t i = 0; i < kUniverse; ++i) o[i] = s.contains(i);
    return o;
}

Oracle randomOracle(Rng& rng) {
    Oracle o;
    const int chunks = static_cast<int>(rng.nextInRange(0, 8));
    for (int c = 0; c < chunks; ++c) {
        const auto lo = rng.nextBelow(kUniverse);
        const auto hi = rng.nextInRange(lo, std::min<std::uint64_t>(kUniverse - 1, lo + 40));
        for (auto i = lo; i <= hi; ++i) o[i] = true;
    }
    return o;
}

class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, AlgebraMatchesBitsetOracle) {
    Rng rng(GetParam());
    for (int iter = 0; iter < 50; ++iter) {
        const Oracle oa = randomOracle(rng);
        const Oracle ob = randomOracle(rng);
        const Set64 a = fromOracle(oa);
        const Set64 b = fromOracle(ob);

        EXPECT_EQ(toOracle(a.unionWith(b)), oa | ob);
        EXPECT_EQ(toOracle(a.intersect(b)), oa & ob);
        EXPECT_EQ(toOracle(a.subtract(b)), oa & ~ob);
        EXPECT_EQ(a.countU64(), oa.count());

        // Canonical form: disjoint, sorted, non-adjacent intervals.
        const Set64 u = a.unionWith(b);
        const auto& ivs = u.intervals();
        for (std::size_t i = 1; i < ivs.size(); ++i) {
            EXPECT_GT(ivs[i].lo, ivs[i - 1].hi + 1);
        }
    }
}

TEST_P(IntervalSetProperty, BatchBuildMatchesIncrementalInsert) {
    Rng rng(GetParam() * 7919 + 13);
    for (int iter = 0; iter < 30; ++iter) {
        std::vector<Interval<std::uint64_t>> raw;
        Set64 incremental;
        const int n = static_cast<int>(rng.nextInRange(0, 20));
        for (int i = 0; i < n; ++i) {
            const auto lo = rng.nextBelow(kUniverse);
            const auto hi = rng.nextInRange(lo, std::min<std::uint64_t>(kUniverse - 1, lo + 30));
            raw.push_back({lo, hi});
            incremental.insert(lo, hi);
        }
        EXPECT_EQ(Set64::fromIntervals(raw), incremental);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace rpkic
