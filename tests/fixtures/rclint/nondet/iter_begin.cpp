// Fixture: .begin() iteration without a drain in an emitting TU.
#include <unordered_set>

std::unordered_set<int> gSeen;

int dumpFirst() {
    return *gSeen.begin();
}
