// Fixture: the sorted-drain idiom is allowed.
#include <algorithm>
#include <unordered_map>
#include <vector>

std::unordered_map<int, int> gTable;

void serializeAll() {
    std::vector<int> keys;
    for (const auto& kv : gTable) {
        keys.push_back(kv.first);
    }
    std::sort(keys.begin(), keys.end());
}
