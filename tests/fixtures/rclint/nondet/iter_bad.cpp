// Fixture: unordered iteration in a serializing TU, no sorted drain.
#include <unordered_map>

std::unordered_map<int, int> gTable;

void serializeAll() {
    for (const auto& kv : gTable) {
        emitRecord(kv.first);
    }
}
