// Fixture: wall-clock reads outside the injectable clock.
#include <chrono>
#include <ctime>

long wallSeconds() {
    const auto tp = std::chrono::system_clock::now();
    const long s = time(nullptr);
    return s + tp.time_since_epoch().count();
}
