// Fixture: the unordered decl comes from an included header.
#include "nondet/cross/state.hpp"

void writeAll(const State& st) {
    for (const auto& kv : st.index_) {
        (void)kv;
    }
}
