#pragma once
#include <unordered_map>

struct State {
    std::unordered_map<int, int> index_;
};
