// Fixture: justified unordered iteration.
#include <unordered_map>

std::unordered_map<int, int> gTable;

void serializeAll() {
    // rclint:allow(nondet-iteration)
    for (const auto& kv : gTable) {
        (void)kv;
    }
}
