// Fixture: address-order comparators.
#include <functional>
#include <map>

struct Node {};

std::map<Node*, int, std::less<Node*>> gRank;

bool firstByAddress(Node* a, Node* b) {
    auto cmp = [](Node* x, Node* y) { return x < y; };
    return cmp(a, b);
}
