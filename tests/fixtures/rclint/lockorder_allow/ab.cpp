// Fixture: A then B, as in lockorder/ab.cpp.
void lockAthenB(rc::Mutex& a, rc::Mutex& b) {
    rc::LockGuard ga(a);
    rc::LockGuard gb(b);
}
