// Fixture: the inversion is justified at the acquisition site.
void lockBthenA(rc::Mutex& a, rc::Mutex& b) {
    rc::LockGuard gb(b);
    // rclint:allow(lock-order)
    rc::LockGuard ga(a);
}
