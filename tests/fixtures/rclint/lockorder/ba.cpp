// Fixture: the inverse order.
void lockBthenA(rc::Mutex& a, rc::Mutex& b) {
    rc::LockGuard gb(b);
    rc::LockGuard ga(a);
}
