// Fixture: A then B here, B then A in ba.cpp — a global inversion.
void lockAthenB(rc::Mutex& a, rc::Mutex& b) {
    rc::LockGuard ga(a);
    rc::LockGuard gb(b);
}
