#pragma once
#include "cycle/y.hpp"
