#pragma once
#include "cycle/x.hpp"
