#pragma once
