#pragma once
#include "graph/core/base.hpp"
