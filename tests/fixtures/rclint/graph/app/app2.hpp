#pragma once
