#pragma once
#include "graph/app/util.hpp"
// rclint:allow(layer-violation)
#include "graph/app/app2.hpp"
