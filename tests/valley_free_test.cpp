// Gao-Rexford routing: valley-free export/selection semantics, and the
// Table-3 conclusions under the economic model.
#include "bgp/valley_free.hpp"

#include <gtest/gtest.h>

#include "detector/validity_index.hpp"

namespace rpkic {
namespace {

using bgp::Announcement;
using bgp::AsHierarchy;
using bgp::LocalPolicy;
using bgp::RouteClass;
using bgp::ValleyFreeSim;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

bgp::Classifier noRpki() {
    auto idx = std::make_shared<PrefixValidityIndex>(RpkiState{});
    return [idx](const Route& r) { return idx->classify(r); };
}

/// Two tier-1 peers (1, 2); mid-tier 3 (customer of 1), 4 (customer of 2);
/// stubs 5 (customer of 3) and 6 (customer of 4).
AsHierarchy diamond() {
    AsHierarchy t;
    t.addPeer(1, 2);
    t.addCustomerProvider(3, 1);
    t.addCustomerProvider(4, 2);
    t.addCustomerProvider(5, 3);
    t.addCustomerProvider(6, 4);
    return t;
}

TEST(ValleyFree, RouteClassesAssignedCorrectly) {
    const AsHierarchy t = diamond();
    ValleyFreeSim sim(t, LocalPolicy::AcceptAll, noRpki());
    const std::vector<Announcement> anns = {{pfx("10.5.0.0/16"), 5}};
    sim.announce(anns);

    // 3 and 1 learn via customers; 2 via its peer 1; 4 and 6 via providers.
    ASSERT_NE(sim.routeForPrefix(3, pfx("10.5.0.0/16")), nullptr);
    EXPECT_EQ(sim.routeForPrefix(3, pfx("10.5.0.0/16"))->routeClass, RouteClass::Customer);
    EXPECT_EQ(sim.routeForPrefix(1, pfx("10.5.0.0/16"))->routeClass, RouteClass::Customer);
    EXPECT_EQ(sim.routeForPrefix(2, pfx("10.5.0.0/16"))->routeClass, RouteClass::Peer);
    EXPECT_EQ(sim.routeForPrefix(4, pfx("10.5.0.0/16"))->routeClass, RouteClass::Provider);
    EXPECT_EQ(sim.routeForPrefix(6, pfx("10.5.0.0/16"))->routeClass, RouteClass::Provider);
}

TEST(ValleyFree, NoValleyPaths) {
    // A route learned from one peer must not be exported to another peer:
    // with tier-1s 1-2-7 (7 peers only with 2), a route from 3 (customer
    // of 1) reaches 2 via peering but must NOT reach 7 (that would be a
    // valley: peer -> peer).
    AsHierarchy t;
    t.addPeer(1, 2);
    t.addPeer(2, 7);
    t.addCustomerProvider(3, 1);
    ValleyFreeSim sim(t, LocalPolicy::AcceptAll, noRpki());
    const std::vector<Announcement> anns = {{pfx("10.3.0.0/16"), 3}};
    sim.announce(anns);
    EXPECT_NE(sim.routeForPrefix(2, pfx("10.3.0.0/16")), nullptr);
    EXPECT_EQ(sim.routeForPrefix(7, pfx("10.3.0.0/16")), nullptr)
        << "peer-learned routes must not propagate to other peers";
}

TEST(ValleyFree, CustomerRoutePreferredOverShorterProviderRoute) {
    // AS 1 hears 10.9.0.0/16 from its customer chain (length 2) and could
    // hear it shorter via a peer — customer must win.
    AsHierarchy t;
    t.addPeer(1, 2);
    t.addCustomerProvider(3, 1);
    t.addCustomerProvider(9, 3);   // 9 is a customer-of-customer of 1
    t.addCustomerProvider(9, 2);   // and a direct customer of 2
    ValleyFreeSim sim(t, LocalPolicy::AcceptAll, noRpki());
    const std::vector<Announcement> anns = {{pfx("10.9.0.0/16"), 9}};
    sim.announce(anns);
    const auto* at1 = sim.routeForPrefix(1, pfx("10.9.0.0/16"));
    ASSERT_NE(at1, nullptr);
    EXPECT_EQ(at1->routeClass, RouteClass::Customer);
    EXPECT_EQ(at1->pathLength, 2);
}

TEST(ValleyFree, RandomThreeTierFullReachability) {
    Rng rng(9);
    const AsHierarchy t = AsHierarchy::randomThreeTier(4, 20, 150, rng);
    EXPECT_EQ(t.nodeCount(), 174u);
    ValleyFreeSim sim(t, LocalPolicy::AcceptAll, noRpki());
    // A stub's announcement reaches every AS (valley-free but connected).
    const Asn stub = 4 + 20 + 1;
    const std::vector<Announcement> anns = {{pfx("10.0.0.0/16"), stub}};
    sim.announce(anns);
    std::size_t reached = 0;
    for (const Asn asn : t.nodes()) {
        if (sim.routeForPrefix(asn, pfx("10.0.0.0/16")) != nullptr) ++reached;
    }
    EXPECT_EQ(reached, t.nodeCount());
}

TEST(ValleyFree, Table3MatrixHoldsUnderGaoRexford) {
    Rng rng(17);
    const AsHierarchy t = AsHierarchy::randomThreeTier(4, 20, 150, rng);
    const Asn victim = 4 + 20 + 3;
    const Asn attacker = 4 + 20 + 90;
    const IpPrefix victimPrefix = pfx("10.0.0.0/16");
    const IpPrefix subPrefix = pfx("10.0.7.0/24");

    auto healthy = std::make_shared<PrefixValidityIndex>(
        RpkiState({{victimPrefix, 16, victim}}));
    auto whacked = std::make_shared<PrefixValidityIndex>(
        RpkiState({{pfx("10.0.0.0/12"), 12, 9999}}));
    const bgp::Classifier healthyC = [healthy](const Route& r) { return healthy->classify(r); };
    const bgp::Classifier whackedC = [whacked](const Route& r) { return whacked->classify(r); };

    const bgp::HijackScenario prefixHijack{victimPrefix, victim, victimPrefix, attacker,
                                           subPrefix};
    const bgp::HijackScenario subprefixHijack{victimPrefix, victim, subPrefix, attacker,
                                              subPrefix};
    const bgp::HijackScenario whackedOnly{victimPrefix, victim, std::nullopt, 0, subPrefix};

    // Same qualitative matrix as the shortest-path model.
    EXPECT_DOUBLE_EQ(
        runScenarioValleyFree(t, LocalPolicy::DropInvalid, healthyC, prefixHijack), 1.0);
    EXPECT_DOUBLE_EQ(
        runScenarioValleyFree(t, LocalPolicy::DropInvalid, healthyC, subprefixHijack), 1.0);
    EXPECT_DOUBLE_EQ(
        runScenarioValleyFree(t, LocalPolicy::DropInvalid, whackedC, whackedOnly), 0.0);
    EXPECT_DOUBLE_EQ(
        runScenarioValleyFree(t, LocalPolicy::DeprefInvalid, healthyC, subprefixHijack), 0.0);
    EXPECT_DOUBLE_EQ(
        runScenarioValleyFree(t, LocalPolicy::DeprefInvalid, whackedC, whackedOnly), 1.0);
    // Under accept-all a prefix hijack splits the topology.
    const double acceptAll =
        runScenarioValleyFree(t, LocalPolicy::AcceptAll, healthyC, prefixHijack);
    EXPECT_GT(acceptAll, 0.0);
    EXPECT_LT(acceptAll, 1.0);
}

}  // namespace
}  // namespace rpkic
