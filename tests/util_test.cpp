// util: RNG determinism/uniformity, simulated clock, trace dates.
#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace rpkic {
namespace {

TEST(Rng, DeterministicPerSeed) {
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.nextU64();
        EXPECT_EQ(va, b.nextU64());
        (void)c.nextU64();
    }
    Rng a2(42), c2(43);
    EXPECT_NE(a2.nextU64(), c2.nextU64());
}

TEST(Rng, NextBelowInRange) {
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextBelow(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u) << "all residues hit";
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextInRangeInclusive) {
    Rng rng(8);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextInRange(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        sawLo |= v == 5;
        sawHi |= v == 8;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, DoubleInUnitInterval) {
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliRoughlyCalibrated) {
    Rng rng(10);
    int heads = 0;
    for (int i = 0; i < 10000; ++i) heads += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(11);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = v;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, PickReturnsElement) {
    Rng rng(12);
    const std::vector<int> v = {10, 20, 30};
    for (int i = 0; i < 50; ++i) {
        const int p = rng.pick(v);
        EXPECT_TRUE(p == 10 || p == 20 || p == 30);
    }
}

TEST(SimClock, MonotoneAdvancement) {
    SimClock clock(5);
    EXPECT_EQ(clock.now(), 5);
    clock.advance(3);
    EXPECT_EQ(clock.now(), 8);
    clock.advanceTo(6);  // never goes backwards
    EXPECT_EQ(clock.now(), 8);
    clock.advanceTo(12);
    EXPECT_EQ(clock.now(), 12);
}

TEST(TraceDates, PaperLandmarks) {
    EXPECT_EQ(traceDateString(0), "2013-10-23");   // trace start
    EXPECT_EQ(traceDateString(8), "2013-10-31");
    EXPECT_EQ(traceDateString(9), "2013-11-01");
    EXPECT_EQ(traceDateString(51), "2013-12-13");  // Case Study 1
    EXPECT_EQ(traceDateString(57), "2013-12-19");  // Case Study 2
    EXPECT_EQ(traceDateString(58), "2013-12-20");  // Case Study 4
    EXPECT_EQ(traceDateString(74), "2014-01-05");  // Case Study 3
    EXPECT_EQ(traceDateString(82), "2014-01-13");  // census date
    EXPECT_EQ(traceDateString(90), "2014-01-21");  // trace end
}

}  // namespace
}  // namespace rpkic
