// Durable store + crash-consistency suite: MemVfs crash semantics, the
// WAL/checkpoint store's commit/recover contract, the torn-write and
// bit-flip matrices over the on-disk formats, the exhaustive per-VFS-op
// crash sweep, and the chaos soak's kill/restart mode (invariants I8/I9
// plus plan replay determinism). See docs/DURABILITY.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "rp/durable_store.hpp"
#include "rp/relying_party.hpp"
#include "sim/chaos_soak.hpp"
#include "sim/crash_sweep.hpp"
#include "util/errors.hpp"
#include "util/vfs.hpp"

namespace rpkic {
namespace {

using rp::DurableStore;
using rp::RecoveryReport;
using rp::StoreOptions;

Bytes blob(const std::string& s) {
    return Bytes(s.begin(), s.end());
}

ByteView view(const Bytes& b) {
    return ByteView(b.data(), b.size());
}

// ---------------------------------------------------------------------------
// MemVfs crash semantics

TEST(MemVfs, SyncedPrefixSurvivesACrashUnsyncedTailTears) {
    vfs::MemVfs fs(7);
    fs.writeFile("dir/a", view(blob("durable")));
    fs.sync("dir/a");
    fs.appendFile("dir/a", view(blob("-volatile-tail")));

    fs.crashNow();

    const Bytes after = fs.readFile("dir/a");
    ASSERT_GE(after.size(), 7u);  // synced prefix is guaranteed
    EXPECT_EQ(Bytes(after.begin(), after.begin() + 7), blob("durable"));
    EXPECT_LE(after.size(), blob("durable-volatile-tail").size());
}

TEST(MemVfs, OverwriteVoidsDurabilityAndNeverSyncedFilesMayVanish) {
    // Same seed, same op history => the collapse is deterministic, so we
    // can assert exact outcomes for this seed.
    vfs::MemVfs fs(1);
    fs.writeFile("a", view(blob("first")));
    fs.sync("a");
    fs.writeFile("a", view(blob("second!")));  // truncate+rewrite: all volatile
    fs.writeFile("b", view(blob("never-synced")));
    fs.crashNow();

    // 'a' collapsed to some prefix of "second!" (possibly empty) — the old
    // durable content is gone because the overwrite truncated it.
    const Bytes a = fs.readFile("a");
    const Bytes want = blob("second!");
    ASSERT_LE(a.size(), want.size());
    EXPECT_EQ(Bytes(want.begin(), want.begin() + static_cast<std::ptrdiff_t>(a.size())), a);
    // 'b' either vanished or is a prefix; it must not be fully durable by
    // magic. (Existence depends on the seeded tear point.)
    if (fs.exists("b")) {
        const Bytes b = fs.readFile("b");
        EXPECT_LE(b.size(), blob("never-synced").size());
    }
}

TEST(MemVfs, RenameIsAtomicAndDurable) {
    vfs::MemVfs fs(3);
    fs.writeFile("t/x.tmp", view(blob("payload")));
    fs.sync("t/x.tmp");
    fs.renameFile("t/x.tmp", "t/x");
    fs.crashNow();
    EXPECT_FALSE(fs.exists("t/x.tmp"));
    EXPECT_EQ(fs.readFile("t/x"), blob("payload"));
}

TEST(MemVfs, ArmedFaultFailsWithoutEffectArmedCrashCollapses) {
    vfs::MemVfs fs(5);
    fs.writeFile("f", view(blob("one")));
    fs.sync("f");

    // Fail the next mutating op: no crash, no effect.
    fs.armFailAt(fs.opCount());
    EXPECT_THROW(fs.writeFile("f", view(blob("two"))), vfs::IoError);
    EXPECT_EQ(fs.readFile("f"), blob("one"));

    // The op after that succeeds (the trigger is one-shot).
    fs.writeFile("f", view(blob("three")));
    EXPECT_EQ(fs.readFile("f"), blob("three"));

    // Crash at op N: CrashInjected reports N, volatile state collapsed.
    const std::uint64_t at = fs.opCount();
    fs.armCrashAt(at);
    try {
        fs.appendFile("f", view(blob("-tail")));
        FAIL() << "armed crash did not fire";
    } catch (const vfs::CrashInjected& c) {
        EXPECT_EQ(c.op(), at);
    }
    // The append never happened; "three" was never synced so only some
    // prefix survives.
    EXPECT_LE(fs.readFile("f").size(), 5u);
}

TEST(DiskVfs, RoundTripsThroughARealDirectory) {
    vfs::DiskVfs fs;
    const std::string dir = "disk-vfs-test-dir";
    fs.makeDir(dir);
    const std::string tmp = vfs::joinPath(dir, "f.tmp");
    const std::string fin = vfs::joinPath(dir, "f");
    fs.writeFile(tmp, view(blob("hello")));
    fs.appendFile(tmp, view(blob(" world")));
    fs.sync(tmp);
    fs.renameFile(tmp, fin);
    EXPECT_TRUE(fs.exists(fin));
    EXPECT_FALSE(fs.exists(tmp));
    EXPECT_EQ(fs.readFile(fin), blob("hello world"));
    const auto names = fs.listDir(dir);
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "f");
    fs.removeFile(fin);
    EXPECT_FALSE(fs.exists(fin));
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// DurableStore: commit / recover / checkpoint / poisoning

TEST(DurableStore, CommitsSurviveReopenNewestWins) {
    obs::Registry reg;
    vfs::MemVfs fs(11);
    DurableStore store(fs, "st", StoreOptions{0, "t"}, &reg);  // no auto-ckpt
    EXPECT_FALSE(store.lastRecovery().recovered);
    EXPECT_THROW(store.commit(view(blob("x"))), UsageError);  // before open()

    store.open();
    EXPECT_FALSE(store.lastRecovery().recovered);
    store.commit(view(blob("v1")), 1);
    store.commit(view(blob("v2")), 2);
    store.commit(view(blob("v3")), 3);
    EXPECT_EQ(store.latestLsn(), 3u);

    DurableStore again(fs, "st", StoreOptions{0, "t"}, &reg);
    const RecoveryReport rec = again.open();
    EXPECT_TRUE(rec.recovered);
    EXPECT_FALSE(rec.usedCheckpoint);
    EXPECT_EQ(rec.walRecordsReplayed, 3u);
    EXPECT_EQ(rec.tornBytesDiscarded, 0u);
    ASSERT_TRUE(again.latest().has_value());
    EXPECT_EQ(*again.latest(), blob("v3"));
    EXPECT_EQ(again.latestMeta(), 3u);
}

TEST(DurableStore, CheckpointFoldsWalAndRecoveryPrefersIt) {
    obs::Registry reg;
    vfs::MemVfs fs(13);
    DurableStore store(fs, "st", StoreOptions{2, "t"}, &reg);
    store.open();
    store.commit(view(blob("a")), 1);
    store.commit(view(blob("b")), 2);  // triggers the checkpoint fold
    EXPECT_TRUE(fs.exists(store.checkpointPath(2)));
    EXPECT_EQ(fs.readFile(store.walPath()).size(), 0u);  // WAL reset
    store.commit(view(blob("c")), 3);  // lands in the fresh WAL

    DurableStore again(fs, "st", StoreOptions{2, "t"}, &reg);
    const RecoveryReport rec = again.open();
    EXPECT_TRUE(rec.usedCheckpoint);
    EXPECT_EQ(rec.checkpointSeq, 2u);
    EXPECT_EQ(rec.walRecordsReplayed, 1u);
    ASSERT_TRUE(again.latest().has_value());
    EXPECT_EQ(*again.latest(), blob("c"));
    EXPECT_EQ(again.latestMeta(), 3u);
    // LSNs continue across the reopen.
    again.commit(view(blob("d")), 4);
    EXPECT_EQ(again.latestLsn(), 4u);
}

TEST(DurableStore, IoFailurePoisonsUntilReopenRepairs) {
    obs::Registry reg;
    vfs::MemVfs fs(17);
    DurableStore store(fs, "st", StoreOptions{0, "t"}, &reg);
    store.open();
    store.commit(view(blob("good")), 1);

    fs.armFailAt(fs.opCount());  // fail the next append
    EXPECT_THROW(store.commit(view(blob("bad")), 2), vfs::IoError);
    EXPECT_TRUE(store.isPoisoned());
    // The failed commit did not happen; the store refuses to append after
    // a possibly-partial tail but still serves the committed payload.
    ASSERT_TRUE(store.latest().has_value());
    EXPECT_EQ(*store.latest(), blob("good"));
    EXPECT_THROW(store.commit(view(blob("bad2")), 2), UsageError);
    EXPECT_THROW(store.checkpointNow(), UsageError);

    const RecoveryReport rec = store.open();  // repair
    EXPECT_FALSE(store.isPoisoned());
    EXPECT_TRUE(rec.recovered);
    EXPECT_EQ(*store.latest(), blob("good"));
    store.commit(view(blob("after")), 2);
    EXPECT_EQ(*store.latest(), blob("after"));
}

// ---------------------------------------------------------------------------
// Torn-write and bit-flip matrices: recovery from every WAL truncation and
// every single-byte corruption must yield a committed payload (or nothing,
// when no commit survives) — never a mixture, never an exception.

class WalMatrix : public ::testing::Test {
protected:
    void SetUp() override {
        vfs::MemVfs fs(23);
        DurableStore store(fs, "st", StoreOptions{0, "m"}, &reg_);
        store.open();
        for (int i = 1; i <= 4; ++i) {
            const Bytes payload = blob("payload-" + std::to_string(i));
            committed_.push_back(payload);
            store.commit(view(payload), static_cast<std::uint64_t>(i));
        }
        wal_ = fs.readFile(store.walPath());
        walPath_ = store.walPath();
    }

    /// Opens a store over a WAL image and asserts the recovery contract.
    void checkImage(const Bytes& image, const char* what, std::size_t at) {
        obs::Registry reg;
        vfs::MemVfs fs(29);
        fs.makeDir("st");
        fs.writeFile(walPath_, view(image));
        fs.sync(walPath_);
        DurableStore store(fs, "st", StoreOptions{0, "m"}, &reg);
        RecoveryReport rec;
        ASSERT_NO_THROW(rec = store.open()) << what << " at " << at;
        if (store.latest().has_value()) {
            const std::uint64_t meta = store.latestMeta();
            ASSERT_GE(meta, 1u) << what << " at " << at;
            ASSERT_LE(meta, committed_.size()) << what << " at " << at;
            EXPECT_EQ(*store.latest(), committed_[meta - 1])
                << what << " at " << at << ": recovered a mixture state";
        }
        // Repair must leave the store usable.
        ASSERT_NO_THROW(store.commit(view(blob("fresh")), 99)) << what << " at " << at;
    }

    obs::Registry reg_;
    std::vector<Bytes> committed_;
    Bytes wal_;
    std::string walPath_;
};

TEST_F(WalMatrix, EveryTruncationRecoversACommittedPayload) {
    for (std::size_t cut = 0; cut <= wal_.size(); ++cut) {
        checkImage(Bytes(wal_.begin(), wal_.begin() + static_cast<std::ptrdiff_t>(cut)),
                   "truncation", cut);
    }
}

TEST_F(WalMatrix, EverySingleByteCorruptionRecoversACommittedPayload) {
    for (std::size_t i = 0; i < wal_.size(); ++i) {
        Bytes image = wal_;
        image[i] ^= 0x41;
        checkImage(image, "bit flip", i);
    }
}

TEST(DurableStore, CorruptCheckpointFallsBackToOlderState) {
    obs::Registry reg;
    vfs::MemVfs fs(31);
    DurableStore store(fs, "st", StoreOptions{2, "t"}, &reg);
    store.open();
    store.commit(view(blob("a")), 1);
    store.commit(view(blob("b")), 2);  // checkpoint at lsn 2, WAL reset
    store.commit(view(blob("c")), 3);
    store.commit(view(blob("d")), 4);  // checkpoint at lsn 4

    // Flip a byte inside the newest checkpoint: recovery must fall back
    // (here: to the WAL-less older state via the lsn-2 checkpoint if it
    // still exists, else whatever remains) and flag the repair.
    Bytes ckpt = fs.readFile(store.checkpointPath(4));
    ckpt[ckpt.size() / 2] ^= 0xff;
    fs.writeFile(store.checkpointPath(4), view(ckpt));
    fs.sync(store.checkpointPath(4));

    DurableStore again(fs, "st", StoreOptions{2, "t"}, &reg);
    const RecoveryReport rec = again.open();
    EXPECT_EQ(rec.corruptCheckpointsDiscarded, 1u);
    EXPECT_TRUE(rec.repaired);
    if (again.latest().has_value()) {
        const std::vector<Bytes> committed = {blob("a"), blob("b"), blob("c"), blob("d")};
        EXPECT_TRUE(std::find(committed.begin(), committed.end(), *again.latest()) !=
                    committed.end());
    }
    // The corrupt file was removed so future recoveries skip the retry.
    EXPECT_FALSE(fs.exists(again.checkpointPath(4)));
}

TEST(DurableStore, RepairSurvivesCorruptCheckpointAtTheReplayedLsn) {
    // Regression (found by fuzz_wal): a corrupt checkpoint file whose name
    // matches the LSN the WAL replays to collides with the repair
    // checkpoint. Repair must remove the corrupt file BEFORE folding, or
    // it deletes its own freshly written checkpoint and the next recovery
    // comes up empty.
    obs::Registry reg;
    vfs::MemVfs fs(7);
    DurableStore store(fs, "st", StoreOptions{0, "t"}, &reg);
    store.open();
    store.commit(view(blob("payload-1")), 11);  // WAL frame at lsn 1

    // Plant garbage where the repair checkpoint for lsn 1 will land.
    fs.writeFile(store.checkpointPath(1), view(blob("not a checkpoint")));
    fs.sync(store.checkpointPath(1));

    DurableStore repaired(fs, "st", StoreOptions{0, "t"}, &reg);
    const RecoveryReport rec = repaired.open();
    EXPECT_EQ(rec.corruptCheckpointsDiscarded, 1u);
    EXPECT_TRUE(rec.repaired);
    ASSERT_TRUE(repaired.latest().has_value());
    EXPECT_EQ(*repaired.latest(), blob("payload-1"));

    // The state survives ANOTHER recovery — the repair checkpoint exists
    // and passes its checksum.
    DurableStore again(fs, "st", StoreOptions{0, "t"}, &reg);
    const RecoveryReport rec2 = again.open();
    EXPECT_EQ(rec2.corruptCheckpointsDiscarded, 0u);
    ASSERT_TRUE(again.latest().has_value());
    EXPECT_EQ(*again.latest(), blob("payload-1"));
    EXPECT_EQ(again.latestMeta(), 11u);
    EXPECT_EQ(again.latestLsn(), 1u);
}

// ---------------------------------------------------------------------------
// Exhaustive crash sweep (tentpole proof; see sim/crash_sweep.hpp)

TEST(CrashSweep, EveryVfsOperationIsASafeCrashPoint) {
    sim::SweepConfig cfg;
    cfg.seed = 5;
    cfg.rounds = 6;
    cfg.checkpointEvery = 2;
    const sim::SweepResult r = sim::runCrashSweep(cfg);
    for (const auto& v : r.violations) ADD_FAILURE() << v;
    EXPECT_TRUE(r.passed);
    EXPECT_GT(r.crashPoints, 20u);  // appends, fsyncs, and checkpoint folds
    EXPECT_EQ(r.crashesFired, r.crashPoints);
    EXPECT_EQ(r.recoveredPre + r.recoveredPost + r.recoveredNone, r.crashesFired);
    EXPECT_GT(r.recoveredPre, 0u);
    EXPECT_GT(r.recoveredPost, 0u);
}

TEST(CrashSweep, HonestWorldSweepAlsoHolds) {
    sim::SweepConfig cfg;
    cfg.seed = 9;
    cfg.rounds = 5;
    cfg.checkpointEvery = 3;
    cfg.adversarialProbability = 0.0;
    const sim::SweepResult r = sim::runCrashSweep(cfg);
    for (const auto& v : r.violations) ADD_FAILURE() << v;
    EXPECT_TRUE(r.passed);
    EXPECT_EQ(r.crashesFired, r.crashPoints);
}

// ---------------------------------------------------------------------------
// Chaos soak kill/restart mode (I8/I9) and plan replay determinism

TEST(ChaosSoakCrash, KillRestartSoakHoldsAllInvariants) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        sim::SoakConfig cfg;
        cfg.seed = seed;
        cfg.rounds = 18;
        cfg.crashEvery = 3;
        const sim::SoakResult r = sim::runSoak(cfg);
        for (const auto& v : r.violations) ADD_FAILURE() << "seed " << seed << ": " << v;
        EXPECT_TRUE(r.passed) << "seed " << seed;
        EXPECT_GT(r.stats.crashes, 0u) << "seed " << seed;
        EXPECT_EQ(r.stats.storeRecoveries, r.stats.crashes) << "seed " << seed;
        EXPECT_GE(r.stats.storeCommits, r.rounds.size()) << "seed " << seed;
        EXPECT_EQ(r.plan.crashEvery, 3u);
    }
}

TEST(ChaosSoakCrash, CrashPlansReplayIdentically) {
    sim::SoakConfig cfg;
    cfg.seed = 4;
    cfg.rounds = 15;
    cfg.crashEvery = 4;
    const sim::SoakResult first = sim::runSoak(cfg);
    EXPECT_TRUE(first.passed);
    EXPECT_GT(first.stats.crashes, 0u);

    const FaultPlan parsed = FaultPlan::parse(first.plan.serialize());
    EXPECT_EQ(parsed.crashEvery, 4u);
    const sim::SoakResult again = sim::runSoakWithPlan(parsed);
    EXPECT_EQ(again.violations, first.violations);
    EXPECT_EQ(again.stats.crashes, first.stats.crashes);
    EXPECT_EQ(again.stats.storeTornBytes, first.stats.storeTornBytes);
    EXPECT_EQ(again.stats.alarms, first.stats.alarms);
    EXPECT_EQ(again.stats.validRoasFinal, first.stats.validRoasFinal);
    EXPECT_EQ(again.rounds.size(), first.rounds.size());
}

TEST(ChaosSoakCrash, DurabilityLayerIsFullyDisabledAtCrashEveryZero) {
    sim::SoakConfig cfg;
    cfg.seed = 6;
    cfg.rounds = 8;
    cfg.crashEvery = 0;  // no kills: just exercise commit-per-round
    const sim::SoakResult r = sim::runSoak(cfg);
    EXPECT_TRUE(r.passed);
    EXPECT_EQ(r.stats.crashes, 0u);
    EXPECT_EQ(r.stats.storeCommits, 0u);  // durability disabled entirely
}

}  // namespace
}  // namespace rpkic
