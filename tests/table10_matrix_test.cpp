// Appendix B.2.4, Table 10: the per-RC dispatch matrix — what a relying
// party does for each (status before update) × (unchanged / changed /
// deleted after update) combination, for normal updates and key-roll
// updates. Each test pins one cell's observable behaviour.
#include <gtest/gtest.h>

#include "consent/authority.hpp"
#include "rp/relying_party.hpp"

namespace rpkic {
namespace {

using consent::Authority;
using consent::AuthorityDirectory;
using consent::AuthorityOptions;
using rp::AlarmType;
using rp::RcStatus;
using rp::RelyingParty;
using rp::RpOptions;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

struct Fixture {
    Repository repo;
    AuthorityDirectory dir{111, AuthorityOptions{.ts = 4, .signerHeight = 6,
                                                 .manifestLifetime = 1000}};
    SimClock clock;
    Authority* root;
    Authority* b;  // the authority whose manifest updates we study

    Fixture() {
        root = &dir.createTrustAnchor("root", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                      repo, clock.now());
        b = &dir.createChild(*root, "b", ResourceSet::ofPrefixes({pfx("10.0.0.0/10")}), repo,
                             clock.now());
    }

    RelyingParty rp() { return RelyingParty("alice", {root->cert()}, RpOptions{.ts = 4, .tg = 8}); }
};

// --- row: valid -------------------------------------------------------------

TEST(Table10, ValidUnchangedDoesNothing) {
    Fixture f;
    Authority& c = f.dir.createChild(*f.b, "c", ResourceSet::ofPrefixes({pfx("10.0.0.0/12")}),
                                     f.repo, f.clock.now());
    RelyingParty alice = f.rp();
    alice.sync(f.repo.snapshot(), f.clock.now());
    ASSERT_EQ(alice.findRc(c.cert().uri)->status, RcStatus::Valid);

    // B's manifest updates (new ROA) but C is untouched.
    f.clock.advance(1);
    f.b->issueRoa("r", 64500, {{pfx("10.0.1.0/24"), 24}}, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.findRc(c.cert().uri)->status, RcStatus::Valid);
    EXPECT_EQ(alice.alarms().count(), 0u);
}

TEST(Table10, ValidChangedRunsOverwrittenProcedure) {
    Fixture f;
    Authority& c = f.dir.createChild(*f.b, "c", ResourceSet::ofPrefixes({pfx("10.0.0.0/12")}),
                                     f.repo, f.clock.now());
    RelyingParty alice = f.rp();
    alice.sync(f.repo.snapshot(), f.clock.now());

    // Case 2 of the procedure: broadened, stays valid, no consent needed.
    f.clock.advance(1);
    f.b->broadenChild("c", ResourceSet::ofPrefixes({pfx("10.16.0.0/12")}), f.repo,
                      f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.findRc(c.cert().uri)->status, RcStatus::Valid);
    EXPECT_EQ(alice.alarms().count(), 0u);

    // Case 3: narrowed WITH consent — valid, no alarm.
    f.clock.advance(1);
    const ResourceSet removed = ResourceSet::ofPrefixes({pfx("10.16.0.0/12")});
    const auto deads = f.dir.collectNarrowingConsent(c, removed);
    f.b->narrowChild("c", removed, deads, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.findRc(c.cert().uri)->status, RcStatus::Valid);
    EXPECT_EQ(alice.alarms().count(), 0u);
}

TEST(Table10, ValidDeletedRunsDeletedProcedure) {
    Fixture f;
    Authority& c = f.dir.createChild(*f.b, "c", ResourceSet::ofPrefixes({pfx("10.0.0.0/12")}),
                                     f.repo, f.clock.now());
    RelyingParty alice = f.rp();
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    f.b->unsafeUnilateralRevokeChild("c", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.findRc(c.cert().uri)->status, RcStatus::NoLongerValid);
    EXPECT_TRUE(alice.alarms().has(AlarmType::UnilateralRevocation));
}

// --- row: never-was-valid ----------------------------------------------------

TEST(Table10, NeverWasValidChangedRunsNewProcedure) {
    Fixture f;
    RelyingParty alice = f.rp();
    alice.sync(f.repo.snapshot(), f.clock.now());

    // An oversized (invalid) child appears: never-was-valid + alarm.
    f.clock.advance(1);
    const PublicKey key = Signer::generate(112, 3).publicKey();
    f.b->unsafeIssueOversizedChild("greedy", key,
                                   ResourceSet::ofPrefixes({pfx("11.0.0.0/8")}), f.repo,
                                   f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    const std::string uri = f.b->pubPointUri() + "greedy.cer";
    ASSERT_NE(alice.findRc(uri), nullptr);
    EXPECT_EQ(alice.findRc(uri)->status, RcStatus::NeverWasValid);
    EXPECT_TRUE(alice.alarms().has(AlarmType::ChildTooBroad));

    // The RC is overwritten with a COVERED resource set (fabricated at the
    // file level, like the misbehaving authority would): the New RC
    // procedure revalidates it.
    f.clock.advance(1);
    const Snapshot snap = f.repo.snapshot();
    const Bytes* oldBytes = snap.file(f.b->pubPointUri(), "greedy.cer");
    ASSERT_NE(oldBytes, nullptr);
    ResourceCert fixedCert = ResourceCert::decode(ByteView(oldBytes->data(), oldBytes->size()));
    fixedCert.resources = ResourceSet::ofPrefixes({pfx("10.0.8.0/21")});
    fixedCert.serial = 1000;  // above any prior high-water mark
    f.b->unsafeReintroduceFile("greedy.cer", fixedCert.encode(), f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.findRc(uri)->status, RcStatus::Valid);
}

TEST(Table10, NeverWasValidDeletedDoesNothing) {
    Fixture f;
    RelyingParty alice = f.rp();
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    const PublicKey key = Signer::generate(113, 3).publicKey();
    f.b->unsafeIssueOversizedChild("greedy", key,
                                   ResourceSet::ofPrefixes({pfx("11.0.0.0/8")}), f.repo,
                                   f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    const std::size_t alarmsAfterIssue = alice.alarms().count();

    // Deleting a never-was-valid RC needs no consent and raises nothing.
    // (The oversized RC exists only as a file; remove it at that level,
    // as the authority that fabricated it would.)
    f.clock.advance(1);
    f.b->unsafeRemoveFile("greedy.cer", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), alarmsAfterIssue)
        << (alice.alarms().count() ? alice.alarms().all().back().str() : "");
}

// --- row: no-longer-valid -----------------------------------------------------

TEST(Table10, NoLongerValidRevalidatedByParentBroadening) {
    Fixture f;
    Authority& c = f.dir.createChild(*f.b, "c", ResourceSet::ofPrefixes({pfx("10.0.0.0/12")}),
                                     f.repo, f.clock.now());
    Authority& d = f.dir.createChild(c, "d", ResourceSet::ofPrefixes({pfx("10.0.0.0/14")}),
                                     f.repo, f.clock.now());
    RelyingParty alice = f.rp();
    alice.sync(f.repo.snapshot(), f.clock.now());
    ASSERT_EQ(alice.findRc(d.cert().uri)->status, RcStatus::Valid);

    // C is narrowed (with consent) below D's needs: D goes no-longer-valid.
    f.clock.advance(1);
    const ResourceSet removed = ResourceSet::ofPrefixes({pfx("10.0.0.0/13")});
    const auto deads = f.dir.collectNarrowingConsent(c, removed);
    f.b->narrowChild("c", removed, deads, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.findRc(d.cert().uri)->status, RcStatus::NoLongerValid);

    // C is broadened back: the Overwritten procedure re-evaluates D.
    f.clock.advance(1);
    f.b->broadenChild("c", removed, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.findRc(d.cert().uri)->status, RcStatus::Valid);
}

// --- key-roll rows -------------------------------------------------------------

TEST(Table10, KeyRollValidChangedIsRepointedCleanly) {
    Fixture f;
    Authority& c = f.dir.createChild(*f.b, "c", ResourceSet::ofPrefixes({pfx("10.0.0.0/12")}),
                                     f.repo, f.clock.now());
    c.issueRoa("r", 64500, {{pfx("10.0.0.0/14"), 24}}, f.repo, f.clock.now());
    RelyingParty alice = f.rp();
    alice.sync(f.repo.snapshot(), f.clock.now());

    // B rolls its key; C's RC is overwritten with the re-pointed copy.
    f.clock.advance(1);
    f.b->stageNewKey(f.repo, f.clock.now());
    f.root->rolloverStep1IssueSuccessor("b", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    f.clock.advance(f.dir.options().ts);
    f.b->rolloverStep2Switch(f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    EXPECT_EQ(alice.findRc(c.cert().uri)->status, RcStatus::Valid);
    EXPECT_EQ(alice.findRc(c.cert().uri)->cert.parentUri, f.b->cert().uri)
        << "the cached record follows the re-pointed RC";
    EXPECT_EQ(alice.validRoas().size(), 1u);
}

TEST(Table10, KeyRollValidUnchangedIsSuspicious) {
    // A child RC left UNCHANGED across a key roll still points at the old
    // B — Table 10 routes this through the Overwritten procedure, which
    // cannot validate it and alarms.
    Fixture f;
    Authority& c = f.dir.createChild(*f.b, "c", ResourceSet::ofPrefixes({pfx("10.0.0.0/12")}),
                                     f.repo, f.clock.now());
    RelyingParty alice = f.rp();
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    f.b->stageNewKey(f.repo, f.clock.now());
    f.root->rolloverStep1IssueSuccessor("b", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    f.clock.advance(f.dir.options().ts);
    f.b->rolloverStep2Switch(f.repo, f.clock.now());

    // Sabotage: serve Alice the post-roll point but with C's OLD bytes
    // (old parent pointer) swapped back in — as a lazy/buggy B' would.
    Snapshot snap = f.repo.snapshot();
    auto& files = snap.points[f.b->pubPointUri()];
    // Find the preserved old version of c.cer via its hints suffix.
    Bytes oldBytes;
    for (const auto& [name, bytes] : files) {
        if (name.rfind("c.cer.~", 0) == 0) oldBytes = bytes;
    }
    ASSERT_FALSE(oldBytes.empty());
    files["c.cer"] = oldBytes;
    alice.sync(snap, f.clock.now());
    // The manifest logs the re-pointed version; serving old bytes is a
    // hash mismatch -> missing information (stale), not silent acceptance.
    EXPECT_TRUE(alice.alarms().has(AlarmType::MissingInformation));
    (void)c;
}

}  // namespace
}  // namespace rpkic
