// Object model: encode/decode round-trips, strict rejection of malformed
// input, signing/verification, manifest helpers, repository + failure
// injection.
#include "rpki/objects.hpp"

#include <gtest/gtest.h>

#include "rpki/chaos.hpp"
#include "rpki/repository.hpp"
#include "rpki/signing.hpp"
#include "util/errors.hpp"

namespace rpkic {
namespace {

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

ResourceCert sampleCert() {
    ResourceCert c;
    c.subjectName = "Sprint";
    c.uri = "rpki://arin/sprint.cer";
    c.serial = 42;
    c.subjectKey = Signer::generate(7, 2).publicKey();
    c.parentUri = "rpki://arin/arin.cer";
    c.pubPointUri = "rpki://sprint/";
    c.resources = ResourceSet::ofPrefixes({pfx("63.160.0.0/12")});
    c.notBefore = 100;
    c.notAfter = 900;
    c.signature = {1, 2, 3};
    return c;
}

Roa sampleRoa() {
    Roa r;
    r.uri = "rpki://sprint/as7341.roa";
    r.serial = 9;
    r.parentUri = "rpki://arin/sprint.cer";
    r.asn = 7341;
    r.prefixes = {{pfx("63.168.93.0/24"), 24}, {pfx("63.174.16.0/20"), 24}};
    r.notBefore = 0;
    r.notAfter = 1000;
    r.signature = {9, 9};
    return r;
}

Manifest sampleManifest() {
    Manifest m;
    m.issuerRcUri = "rpki://arin/sprint.cer";
    m.pubPointUri = "rpki://sprint/";
    m.number = 17;
    m.thisUpdate = 500;
    m.nextUpdate = 600;
    m.entries = {{"a.roa", sha256("a"), 3}, {"b.cer", sha256("b"), 17}};
    m.prevManifestHash = sha256("prev");
    m.parentManifestHash = sha256("parent");
    m.highestChildSerial = 12;
    m.tag = ManifestTag::Normal;
    m.signature = {5};
    return m;
}

template <typename T>
void expectRoundTrip(const T& obj) {
    const Bytes wire = obj.encode();
    const T back = T::decode(ByteView(wire.data(), wire.size()));
    EXPECT_EQ(back.encode(), wire);
}

TEST(Objects, ResourceCertRoundTrip) {
    const ResourceCert c = sampleCert();
    expectRoundTrip(c);
    const Bytes wire = c.encode();
    const ResourceCert back = ResourceCert::decode(ByteView(wire.data(), wire.size()));
    EXPECT_EQ(back.subjectName, "Sprint");
    EXPECT_EQ(back.serial, 42u);
    EXPECT_EQ(back.resources, c.resources);
    EXPECT_FALSE(back.isTrustAnchor());
}

TEST(Objects, TrustAnchorDetection) {
    ResourceCert c = sampleCert();
    c.parentUri.clear();
    EXPECT_TRUE(c.isTrustAnchor());
}

TEST(Objects, InheritResourcesRoundTrip) {
    ResourceCert c = sampleCert();
    c.resources = ResourceSet::inherit();
    expectRoundTrip(c);
}

TEST(Objects, RoaRoundTrip) {
    expectRoundTrip(sampleRoa());
    const Roa r = sampleRoa();
    const Bytes wire = r.encode();
    const Roa back = Roa::decode(ByteView(wire.data(), wire.size()));
    EXPECT_EQ(back.asn, 7341u);
    ASSERT_EQ(back.prefixes.size(), 2u);
    EXPECT_EQ(back.prefixes[1].prefix.str(), "63.174.16.0/20");
    EXPECT_EQ(back.prefixes[1].maxLength, 24);
}

TEST(Objects, RoaRejectsBadMaxLength) {
    Roa r = sampleRoa();
    r.prefixes[0].maxLength = 20;  // < prefix length 24
    const Bytes wire = r.encode();
    EXPECT_THROW(Roa::decode(ByteView(wire.data(), wire.size())), ParseError);
}

TEST(Objects, ManifestRoundTripAndLookup) {
    const Manifest m = sampleManifest();
    expectRoundTrip(m);
    const Bytes wire = m.encode();
    const Manifest back = Manifest::decode(ByteView(wire.data(), wire.size()));
    EXPECT_TRUE(back.logs("a.roa"));
    EXPECT_FALSE(back.logs("z.roa"));
    ASSERT_NE(back.findEntry("b.cer"), nullptr);
    EXPECT_EQ(back.findEntry("b.cer")->firstAppeared, 17u);
}

TEST(Objects, ManifestRejectsUnsortedEntries) {
    Manifest m = sampleManifest();
    std::swap(m.entries[0], m.entries[1]);
    const Bytes wire = m.encode();
    EXPECT_THROW(Manifest::decode(ByteView(wire.data(), wire.size())), ParseError);
}

TEST(Objects, ManifestRejectsDuplicateEntries) {
    Manifest m = sampleManifest();
    m.entries[1] = m.entries[0];
    const Bytes wire = m.encode();
    EXPECT_THROW(Manifest::decode(ByteView(wire.data(), wire.size())), ParseError);
}

TEST(Objects, BodyHashExcludesSignature) {
    Manifest m = sampleManifest();
    const Digest h1 = m.bodyHash();
    m.signature = {42, 42, 42};
    EXPECT_EQ(m.bodyHash(), h1);
    const Digest f1 = fileHashOf(ByteView(m.encode().data(), m.encode().size()));
    m.signature = {43};
    const Bytes w2 = m.encode();
    EXPECT_NE(fileHashOf(ByteView(w2.data(), w2.size())), f1);
}

TEST(Objects, CrlRoundTrip) {
    Crl c;
    c.issuerRcUri = "rpki://arin/sprint.cer";
    c.number = 3;
    c.thisUpdate = 10;
    c.nextUpdate = 20;
    c.revokedSerials = {4, 8, 15};
    c.signature = {1};
    expectRoundTrip(c);
    EXPECT_TRUE(c.revokes(8));
    EXPECT_FALSE(c.revokes(16));
}

TEST(Objects, DeadObjectRoundTrip) {
    DeadObject d;
    d.rcUri = "rpki://sprint/etb.cer";
    d.rcSerial = 5;
    d.rcHash = sha256("rc");
    d.signerManifestHash = sha256("mft");
    d.childDeadHashes = {sha256("child1"), sha256("child2")};
    d.fullRevocation = false;
    d.removedResources = ResourceSet::ofPrefixes({pfx("63.174.16.0/20")});
    d.signature = {7};
    expectRoundTrip(d);
}

TEST(Objects, RollObjectRoundTrip) {
    RollObject r;
    r.rcUri = "rpki://arin/sprint.cer";
    r.rcSerial = 42;
    r.postRolloverManifestHash = sha256("post");
    r.signature = {2};
    expectRoundTrip(r);
}

TEST(Objects, HintsRoundTrip) {
    HintsFile h;
    h.entries = {{"a.roa", "a.roa.~5", sha256("v1"), 2, 5}};
    const Bytes wire = h.encode();
    const HintsFile back = HintsFile::decode(ByteView(wire.data(), wire.size()));
    EXPECT_EQ(back.entries, h.entries);
}

TEST(Objects, TypeDispatch) {
    EXPECT_EQ(objectTypeOf(ByteView(sampleCert().encode().data(), 1)), ObjectType::ResourceCert);
    const Bytes roa = sampleRoa().encode();
    EXPECT_EQ(objectTypeOf(ByteView(roa.data(), roa.size())), ObjectType::Roa);
    EXPECT_THROW(objectTypeOf(ByteView{}), ParseError);
    const Bytes junk = {0x7f};
    EXPECT_THROW(objectTypeOf(ByteView(junk.data(), junk.size())), ParseError);
}

TEST(Objects, CrossTypeDecodeRejected) {
    const Bytes roa = sampleRoa().encode();
    EXPECT_THROW(ResourceCert::decode(ByteView(roa.data(), roa.size())), ParseError);
}

TEST(Objects, TruncationRejectedEverywhere) {
    const Bytes wire = sampleManifest().encode();
    for (std::size_t len = 0; len < wire.size(); len += 11) {
        EXPECT_THROW(Manifest::decode(ByteView(wire.data(), len)), ParseError) << len;
    }
    Bytes extended = wire;
    extended.push_back(0);
    EXPECT_THROW(Manifest::decode(ByteView(extended.data(), extended.size())), ParseError);
}

TEST(Signing, SignVerifyObjects) {
    Signer signer = Signer::generate(11, 3);
    ResourceCert c = sampleCert();
    signObject(c, signer);
    EXPECT_TRUE(verifyObject(c, signer.publicKey()));
    c.serial += 1;  // any body mutation must break the signature
    EXPECT_FALSE(verifyObject(c, signer.publicKey()));
}

TEST(Signing, SignatureSurvivesRoundTrip) {
    Signer signer = Signer::generate(12, 3);
    Manifest m = sampleManifest();
    signObject(m, signer);
    const Bytes wire = m.encode();
    const Manifest back = Manifest::decode(ByteView(wire.data(), wire.size()));
    EXPECT_TRUE(verifyObject(back, signer.publicKey()));
}

TEST(Repository, PutGetRemove) {
    Repository repo;
    repo.putFile("rpki://sprint/", "a.roa", {1, 2});
    EXPECT_NE(repo.file("rpki://sprint/", "a.roa"), nullptr);
    EXPECT_EQ(repo.file("rpki://sprint/", "b.roa"), nullptr);
    EXPECT_EQ(repo.file("rpki://other/", "a.roa"), nullptr);
    repo.removeFile("rpki://sprint/", "a.roa");
    EXPECT_EQ(repo.file("rpki://sprint/", "a.roa"), nullptr);
    repo.putFile("rpki://sprint/", "x", {1});
    repo.removePoint("rpki://sprint/");
    EXPECT_EQ(repo.point("rpki://sprint/"), nullptr);
}

TEST(Repository, SnapshotIsIndependentCopy) {
    Repository repo;
    repo.putFile("p", "f", {1});
    Snapshot snap = repo.snapshot();
    repo.putFile("p", "f", {2});
    EXPECT_EQ((*snap.file("p", "f"))[0], 1);
    EXPECT_EQ(snap.totalFiles(), 1u);
    EXPECT_EQ(snap.totalBytes(), 1u);
}

TEST(Repository, FailureInjection) {
    Repository repo;
    repo.putFile("p", "f", {0xAA, 0xBB});
    Snapshot snap = repo.snapshot();

    Snapshot dropped = snap;
    EXPECT_TRUE(dropFile(dropped, "p", "f"));
    EXPECT_EQ(dropped.file("p", "f"), nullptr);
    EXPECT_FALSE(dropFile(dropped, "p", "f"));

    Snapshot corrupted = snap;
    EXPECT_TRUE(corruptFile(corrupted, "p", "f", 1));
    EXPECT_EQ((*corrupted.file("p", "f"))[1], 0xBA);

    Repository repo2;
    repo2.putFile("p", "f", {0x11});
    Snapshot newer = repo2.snapshot();
    EXPECT_TRUE(serveStalePoint(newer, snap, "p"));
    EXPECT_EQ((*newer.file("p", "f"))[0], 0xAA);

    Snapshot shortRead = snap;
    EXPECT_TRUE(truncateFile(shortRead, "p", "f", 1));
    EXPECT_EQ(shortRead.file("p", "f")->size(), 1u);
    EXPECT_EQ((*shortRead.file("p", "f"))[0], 0xAA);
    EXPECT_FALSE(truncateFile(shortRead, "p", "f", 1));  // already that short
    EXPECT_FALSE(truncateFile(shortRead, "p", "missing", 0));

    Rng rng(1);
    Snapshot randomHit = snap;
    const auto victim = corruptRandomFile(randomHit, rng);
    ASSERT_TRUE(victim.has_value());
    EXPECT_NE(*randomHit.file(victim->pointUri, victim->filename), *snap.file("p", "f"));
    // The receipt names the byte actually flipped: applying the same flip
    // to a fresh copy reproduces the corrupted snapshot exactly.
    Snapshot replayed = snap;
    ASSERT_LT(victim->byteIndex, snap.file("p", "f")->size());
    ASSERT_TRUE(corruptFile(replayed, victim->pointUri, victim->filename, victim->byteIndex));
    EXPECT_EQ(*replayed.file(victim->pointUri, victim->filename),
              *randomHit.file(victim->pointUri, victim->filename));
}

}  // namespace
}  // namespace rpkic
