// Delta synchronization: correctness (apply(from, delta(from,to)) == to),
// including a randomized property sweep, plus RP-equivalence: syncing from
// a delta-reconstructed snapshot behaves exactly like syncing from the
// real one.
#include "rpki/delta.hpp"

#include <gtest/gtest.h>

#include "consent/authority.hpp"
#include "rp/relying_party.hpp"
#include "util/rng.hpp"

namespace rpkic {
namespace {

TEST(Delta, EmptyForIdenticalSnapshots) {
    Repository repo;
    repo.putFile("p", "a", {1});
    const Snapshot snap = repo.snapshot();
    EXPECT_TRUE(computeDelta(snap, snap).empty());
}

TEST(Delta, PutsAndDeletes) {
    Repository a;
    a.putFile("p", "keep", {1});
    a.putFile("p", "change", {2});
    a.putFile("p", "remove", {3});
    Repository b;
    b.putFile("p", "keep", {1});
    b.putFile("p", "change", {9, 9});
    b.putFile("q", "fresh", {4});

    const SnapshotDelta delta = computeDelta(a.snapshot(), b.snapshot());
    EXPECT_EQ(delta.putCount(), 2u);     // change + fresh
    EXPECT_EQ(delta.deleteCount(), 1u);  // remove

    Snapshot applied = a.snapshot();
    applyDelta(applied, delta);
    EXPECT_EQ(applied.points, b.snapshot().points);
}

TEST(Delta, EmptyingAPointRemovesIt) {
    Repository a;
    a.putFile("p", "only", {1});
    const Repository b;  // empty
    Snapshot applied = a.snapshot();
    applyDelta(applied, computeDelta(a.snapshot(), b.snapshot()));
    EXPECT_TRUE(applied.points.empty());
}

TEST(Delta, WireSizeFavoursSmallChanges) {
    Repository repo;
    for (int i = 0; i < 50; ++i) {
        repo.putFile("p", "f" + std::to_string(i), Bytes(1000, 0x55));
    }
    const Snapshot before = repo.snapshot();
    repo.putFile("p", "f0", Bytes(1000, 0x66));  // one file changes
    const Snapshot after = repo.snapshot();

    const SnapshotDelta delta = computeDelta(before, after);
    EXPECT_EQ(delta.changes.size(), 1u);
    EXPECT_LT(delta.wireSize() * 10, snapshotWireSize(after))
        << "delta transfer must be a small fraction of the full pull";
}

TEST(Delta, RandomizedRoundTripProperty) {
    Rng rng(77);
    for (int iter = 0; iter < 30; ++iter) {
        Repository a;
        Repository b;
        for (int i = 0; i < 30; ++i) {
            const std::string point = "p" + std::to_string(rng.nextBelow(4));
            const std::string file = "f" + std::to_string(rng.nextBelow(10));
            Bytes contents(rng.nextBelow(20) + 1);
            for (auto& byte : contents) byte = static_cast<std::uint8_t>(rng.nextU64());
            if (rng.nextBool(0.6)) a.putFile(point, file, contents);
            if (rng.nextBool(0.6)) b.putFile(point, file, std::move(contents));
        }
        Snapshot applied = a.snapshot();
        applyDelta(applied, computeDelta(a.snapshot(), b.snapshot()));
        // Canonicalize: drop empty points that Repository may carry.
        for (auto it = applied.points.begin(); it != applied.points.end();) {
            if (it->second.empty()) it = applied.points.erase(it);
            else ++it;
        }
        Snapshot expected = b.snapshot();
        for (auto it = expected.points.begin(); it != expected.points.end();) {
            if (it->second.empty()) it = expected.points.erase(it);
            else ++it;
        }
        EXPECT_EQ(applied.points, expected.points) << "iter " << iter;
    }
}

TEST(Delta, RelyingPartySyncsIdenticallyFromReconstructedSnapshot) {
    using consent::AuthorityOptions;
    Repository repo;
    consent::AuthorityDirectory dir(81, AuthorityOptions{.ts = 3, .signerHeight = 6,
                                                         .manifestLifetime = 100});
    SimClock clock;
    auto& root = dir.createTrustAnchor(
        "root", ResourceSet::ofPrefixes({IpPrefix::parse("10.0.0.0/8")}), repo, clock.now());
    auto& org = dir.createChild(root, "org",
                                ResourceSet::ofPrefixes({IpPrefix::parse("10.1.0.0/16")}),
                                repo, clock.now());
    const Snapshot day0 = repo.snapshot();

    clock.advance(1);
    org.issueRoa("r", 64500, {{IpPrefix::parse("10.1.0.0/20"), 24}}, repo, clock.now());
    const Snapshot day1 = repo.snapshot();

    // Alice pulls day0 fully, then day1 as a delta.
    Snapshot reconstructed = day0;
    applyDelta(reconstructed, computeDelta(day0, day1));

    rp::RelyingParty viaDelta("viaDelta", {root.cert()}, rp::RpOptions{.ts = 3, .tg = 6});
    rp::RelyingParty direct("direct", {root.cert()}, rp::RpOptions{.ts = 3, .tg = 6});
    viaDelta.sync(day0, 0);
    viaDelta.sync(reconstructed, 1);
    direct.sync(day0, 0);
    direct.sync(day1, 1);

    EXPECT_EQ(viaDelta.alarms().count(), 0u);
    EXPECT_EQ(direct.alarms().count(), 0u);
    EXPECT_EQ(viaDelta.roaState(), direct.roaState());
    EXPECT_EQ(viaDelta.exportManifestClaims().size(), direct.exportManifestClaims().size());
}

}  // namespace
}  // namespace rpkic
