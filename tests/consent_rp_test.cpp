// End-to-end tests of the redesigned RPKI: authorities running the §5.3
// procedures against relying parties running the §5.4 / Appendix-B checks.
// Covers consent workflows, all Table-7 alarms except global inconsistency
// (exercised in sim_* tests), key rollover, and staleness.
#include <gtest/gtest.h>

#include "consent/authority.hpp"
#include "rpki/chaos.hpp"
#include "rp/relying_party.hpp"
#include "util/errors.hpp"

namespace rpkic {
namespace {

using consent::Authority;
using consent::AuthorityDirectory;
using consent::AuthorityOptions;
using rp::AlarmType;
using rp::RcStatus;
using rp::RelyingParty;
using rp::RpOptions;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

AuthorityOptions fastOpts() {
    return AuthorityOptions{.ts = 3, .signerHeight = 6, .manifestLifetime = 10};
}

/// TA "rir" -> "sprint" -> "continental"; sprint and continental have ROAs.
struct Fixture {
    Repository repo;
    AuthorityDirectory dir{42, fastOpts()};
    SimClock clock;
    Authority* rir;
    Authority* sprint;
    Authority* continental;

    Fixture() {
        rir = &dir.createTrustAnchor("rir", ResourceSet::ofPrefixes({pfx("63.0.0.0/8")}), repo,
                                     clock.now());
        sprint = &dir.createChild(*rir, "sprint", ResourceSet::ofPrefixes({pfx("63.160.0.0/12")}),
                                  repo, clock.now());
        continental = &dir.createChild(
            *sprint, "continental",
            ResourceSet::ofPrefixes({pfx("63.168.93.0/24"), pfx("63.174.16.0/20")}), repo,
            clock.now());
        sprint->issueRoa("as1239", 1239, {{pfx("63.160.0.0/12"), 24}}, repo, clock.now());
        continental->issueRoa("as7341", 7341,
                              {{pfx("63.168.93.0/24"), 24}, {pfx("63.174.16.0/20"), 24}}, repo,
                              clock.now());
    }

    RelyingParty makeRp(const std::string& name) {
        return RelyingParty(name, {rir->cert()}, RpOptions{.ts = 3, .tg = 6});
    }
};

TEST(ConsentRp, HappyPathNoAlarms) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    EXPECT_EQ(alice.validRoas().size(), 2u);
    ASSERT_NE(alice.findRc(f.sprint->cert().uri), nullptr);
    EXPECT_EQ(alice.findRc(f.sprint->cert().uri)->status, RcStatus::Valid);
    EXPECT_EQ(alice.findRc(f.continental->cert().uri)->status, RcStatus::Valid);
}

TEST(ConsentRp, IncrementalUpdatesProcessCleanly) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    f.sprint->issueRoa("extra", 1240, {{pfx("63.161.0.0/16"), 20}}, f.repo, f.clock.now());
    f.clock.advance(1);
    f.sprint->deleteRoa("as1239", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    const RpkiState state = alice.roaState();
    EXPECT_TRUE(state.contains({pfx("63.161.0.0/16"), 20, 1240}));
    EXPECT_FALSE(state.contains({pfx("63.160.0.0/12"), 24, 1239}));
}

TEST(ConsentRp, MultipleUpdatesBetweenSyncsReconstructed) {
    // Alice skips several manifest updates; the preserved manifests let
    // her reconstruct and verify every intermediate state.
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.sprint->issueRoa("r1", 1, {{pfx("63.160.1.0/24"), 24}}, f.repo, f.clock.now());
    f.sprint->issueRoa("r2", 2, {{pfx("63.160.2.0/24"), 24}}, f.repo, f.clock.now());
    f.sprint->deleteRoa("r1", f.repo, f.clock.now());
    f.sprint->issueRoa("r3", 3, {{pfx("63.160.3.0/24"), 24}}, f.repo, f.clock.now());
    f.clock.advance(1);
    alice.sync(f.repo.snapshot(), f.clock.now());

    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    const RpkiState state = alice.roaState();
    EXPECT_FALSE(state.contains({pfx("63.160.1.0/24"), 24, 1}));
    EXPECT_TRUE(state.contains({pfx("63.160.2.0/24"), 24, 2}));
    EXPECT_TRUE(state.contains({pfx("63.160.3.0/24"), 24, 3}));
}

TEST(ConsentRp, ConsensualRevocationRaisesNoAlarm) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    const auto deads = f.dir.collectRevocationConsent(*f.continental);
    f.sprint->revokeChild("continental", deads, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    EXPECT_FALSE(alice.alarms().has(AlarmType::UnilateralRevocation));
    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    EXPECT_TRUE(alice.sawDeadFor(f.continental->cert().uri, f.continental->cert().serial));
    ASSERT_NE(alice.findRc(f.continental->cert().uri), nullptr);
    EXPECT_EQ(alice.findRc(f.continental->cert().uri)->status, RcStatus::NoLongerValid);
    EXPECT_EQ(alice.validRoas().size(), 1u);  // continental's ROA is gone
}

TEST(ConsentRp, RevocationWithoutConsentIsRefusedByHonestAuthority) {
    Fixture f;
    EXPECT_THROW(f.sprint->revokeChild("continental", {}, f.repo, f.clock.now()),
                 ProtocolError);
    // Partial consent (target only, missing none here since continental is
    // a leaf) — test a subtree case: revoke sprint missing continental's.
    std::vector<DeadObject> incomplete = {
        f.sprint->signDead(true, ResourceSet{}, {})};
    EXPECT_THROW(f.rir->revokeChild("sprint", incomplete, f.repo, f.clock.now()),
                 ProtocolError);
}

TEST(ConsentRp, UnilateralRevocationRaisesAccountableAlarm) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    f.sprint->unsafeUnilateralRevokeChild("continental", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    const auto alarms = alice.alarms().ofType(AlarmType::UnilateralRevocation);
    ASSERT_FALSE(alarms.empty());
    EXPECT_TRUE(alarms[0].accountable);
    EXPECT_EQ(alarms[0].victim, f.continental->cert().uri);
    EXPECT_EQ(alarms[0].perpetrator, f.sprint->cert().uri);
    EXPECT_EQ(alice.findRc(f.continental->cert().uri)->status, RcStatus::NoLongerValid);
}

TEST(ConsentRp, UnilateralRevocationOfSubtreeBlamesPerpetrator) {
    // Revoking sprint without consent whacks continental too; Theorem 5.1
    // condition 4: the alarm blames an ancestor of the victim.
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    f.rir->unsafeUnilateralRevokeChild("sprint", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    const auto alarms = alice.alarms().ofType(AlarmType::UnilateralRevocation);
    ASSERT_FALSE(alarms.empty());
    EXPECT_EQ(alarms[0].victim, f.sprint->cert().uri);
    EXPECT_EQ(alarms[0].perpetrator, f.rir->cert().uri);
    EXPECT_TRUE(alarms[0].accountable);
    // The descendant is no-longer-valid as well.
    EXPECT_EQ(alice.findRc(f.continental->cert().uri)->status, RcStatus::NoLongerValid);
    EXPECT_TRUE(alice.validRoas().empty());
}

TEST(ConsentRp, NarrowingWithConsentNoAlarm) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    const ResourceSet removed = ResourceSet::ofPrefixes({pfx("63.174.16.0/20")});
    const auto deads = f.dir.collectNarrowingConsent(*f.continental, removed);
    f.sprint->narrowChild("continental", removed, deads, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    EXPECT_TRUE(alice.sawDeadForResources(f.continental->cert().uri, removed));
    // The narrowed RC remains valid with fewer resources.
    const auto* rec = alice.findRc(f.continental->cert().uri);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->status, RcStatus::Valid);
    EXPECT_FALSE(rec->cert.resources.containsPrefix(pfx("63.174.16.0/20")));
    EXPECT_TRUE(rec->cert.resources.containsPrefix(pfx("63.168.93.0/24")));
}

TEST(ConsentRp, UnilateralNarrowingRaisesAlarm) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    f.sprint->unsafeUnilateralNarrowChild(
        "continental", ResourceSet::ofPrefixes({pfx("63.174.16.0/20")}), f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    const auto alarms = alice.alarms().ofType(AlarmType::UnilateralRevocation);
    ASSERT_FALSE(alarms.empty());
    EXPECT_EQ(alarms[0].victim, f.continental->cert().uri);
    EXPECT_TRUE(alarms[0].accountable);
}

TEST(ConsentRp, BroadeningNeedsNoConsent) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    f.rir->broadenChild("sprint", ResourceSet::ofPrefixes({pfx("63.128.0.0/12")}), f.repo,
                        f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    EXPECT_TRUE(
        alice.findRc(f.sprint->cert().uri)->cert.resources.containsPrefix(pfx("63.128.0.0/12")));
}

TEST(ConsentRp, OversizedChildRaisesChildTooBroad) {
    // Counterexample 2 ingredient: a manifest logging an invalid object
    // must raise an alarm.
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    const PublicKey someKey = Signer::generate(999, 2).publicKey();
    f.sprint->unsafeIssueOversizedChild("greedy", someKey,
                                        ResourceSet::ofPrefixes({pfx("64.0.0.0/8")}), f.repo,
                                        f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    const auto alarms = alice.alarms().ofType(AlarmType::ChildTooBroad);
    ASSERT_FALSE(alarms.empty());
    EXPECT_TRUE(alarms[0].accountable);
    EXPECT_EQ(alarms[0].perpetrator, f.sprint->cert().uri);
    // The oversized RC is never-was-valid.
    const auto* rec = alice.findRc(f.sprint->pubPointUri() + "greedy.cer");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->status, RcStatus::NeverWasValid);
}

TEST(ConsentRp, KeyRolloverRunsCleanly) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    // Manual stepping with RP syncs in between (as deployment would).
    f.clock.advance(1);
    const std::string oldUri = f.sprint->cert().uri;
    f.sprint->stageNewKey(f.repo, f.clock.now());
    f.rir->rolloverStep1IssueSuccessor("sprint", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");

    f.clock.advance(f.dir.options().ts);
    f.sprint->rolloverStep2Switch(f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    ASSERT_NE(alice.findRc(oldUri), nullptr);
    EXPECT_EQ(alice.findRc(oldUri)->status, RcStatus::RolledOver);
    const std::string newUri = f.sprint->cert().uri;
    EXPECT_NE(newUri, oldUri);
    EXPECT_EQ(alice.findRc(newUri)->status, RcStatus::Valid);

    f.clock.advance(f.dir.options().ts);
    f.rir->rolloverStep3Finish("sprint", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");

    // Everything still validates: both ROAs present, via the new key.
    EXPECT_EQ(alice.validRoas().size(), 2u);
    EXPECT_EQ(alice.findRc(f.continental->cert().uri)->status, RcStatus::Valid);
}

TEST(ConsentRp, RolledRcDeletedWithoutRollAlarms) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    const std::string oldUri = f.sprint->cert().uri;
    f.sprint->stageNewKey(f.repo, f.clock.now());
    f.rir->rolloverStep1IssueSuccessor("sprint", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    f.clock.advance(f.dir.options().ts);
    f.sprint->rolloverStep2Switch(f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    ASSERT_EQ(alice.findRc(oldUri)->status, RcStatus::RolledOver);

    // The parent deletes the old RC WITHOUT publishing the .roll: that is a
    // unilateral revocation of a rolled-over RC.
    f.clock.advance(1);
    // Emulate by removing the old RC file via the unsafe overwrite path:
    // directly delete the file from the parent's point.
    // (The honest step3 would publish the .roll.)
    // We reach into the misbehaviour hook:
    struct Evil {
        static void dropOldRc(Authority& parent, const std::string& oldUri, Repository& repo,
                              Time now) {
            // find + remove via unilateral API on the *file* level: the old
            // RC is not a registered child anymore, so use the generic
            // delete through unsafeUnilateralRevokeChild's internals is not
            // available; emulate by re-publishing without the file.
            (void)parent;
            (void)oldUri;
            (void)repo;
            (void)now;
        }
    };
    // Simpler and fully within the API: rir performs step 3 but we corrupt
    // the snapshot so the .roll is missing for Alice.
    f.rir->rolloverStep3Finish("sprint", f.repo, f.clock.now());
    Snapshot snap = f.repo.snapshot();
    // Remove all .roll files from rir's point.
    std::vector<std::string> rolls;
    for (const auto& [name, bytes] : snap.points[f.rir->pubPointUri()]) {
        if (name.find(".roll") != std::string::npos) rolls.push_back(name);
    }
    ASSERT_FALSE(rolls.empty());
    for (const auto& r : rolls) dropFile(snap, f.rir->pubPointUri(), r);
    alice.sync(snap, f.clock.now());

    // The .roll is logged in the manifest but missing: missing-information
    // alarm (unaccountable — could be transport loss).
    EXPECT_TRUE(alice.alarms().has(AlarmType::MissingInformation));
}

TEST(ConsentRp, StaleManifestRaisesMissingInformation) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u);

    // Nobody refreshes; manifests expire after manifestLifetime (=10).
    f.clock.advance(11);
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_TRUE(alice.alarms().has(AlarmType::MissingInformation));
    // Stale designation: objects are retained, not invalidated (§5.3.2).
    EXPECT_EQ(alice.validRoas().size(), 2u);
    EXPECT_TRUE(alice.findRc(f.sprint->cert().uri)->stale);
}

TEST(ConsentRp, MissingObjectRaisesMissingInformation) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    f.sprint->issueRoa("newone", 99, {{pfx("63.160.9.0/24"), 24}}, f.repo, f.clock.now());
    Snapshot snap = f.repo.snapshot();
    ASSERT_TRUE(dropFile(snap, f.sprint->pubPointUri(), "newone.roa"));
    alice.sync(snap, f.clock.now());

    const auto alarms = alice.alarms().ofType(AlarmType::MissingInformation);
    ASSERT_FALSE(alarms.empty());
    EXPECT_FALSE(alarms[0].accountable);
    EXPECT_NE(alarms[0].victim.find("newone.roa"), std::string::npos);
}

TEST(ConsentRp, CorruptedManifestIsUnaccountableMissingInfo) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    f.sprint->issueRoa("x", 5, {{pfx("63.160.5.0/24"), 24}}, f.repo, f.clock.now());
    Snapshot snap = f.repo.snapshot();
    ASSERT_TRUE(corruptFile(snap, f.sprint->pubPointUri(), kManifestName, 50));
    alice.sync(snap, f.clock.now());

    EXPECT_TRUE(alice.alarms().has(AlarmType::MissingInformation));
    // Whole point is stale; the previous ROA set is retained.
    EXPECT_EQ(alice.validRoas().size(), 2u);
}

TEST(ConsentRp, ManifestEquivocationSameNumberIsAccountable) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    // The authority signs two different manifests with the same number and
    // serves them to Alice at different times: provable misbehaviour.
    f.clock.advance(1);
    Authority& mirror = f.sprint->unsafeForkForMirrorWorld();
    Repository repoB;
    mirror.issueRoa("forked", 666, {{pfx("63.160.66.0/24"), 24}}, repoB, f.clock.now());
    f.sprint->issueRoa("honest", 1241, {{pfx("63.160.66.0/24"), 24}}, f.repo, f.clock.now());

    alice.sync(f.repo.snapshot(), f.clock.now());
    ASSERT_EQ(alice.alarms().count(), 0u);

    // Now Alice is served the mirrored point state (same manifest number,
    // different contents).
    Snapshot snap = f.repo.snapshot();
    Snapshot mirrorSnap = repoB.snapshot();
    ASSERT_TRUE(serveStalePoint(snap, mirrorSnap, f.sprint->pubPointUri()));
    alice.sync(snap, f.clock.now());

    const auto alarms = alice.alarms().ofType(AlarmType::InvalidSyntax);
    ASSERT_FALSE(alarms.empty());
    EXPECT_TRUE(alarms[0].accountable);
    EXPECT_EQ(alarms[0].perpetrator, f.sprint->cert().uri);
}

TEST(ConsentRp, GlobalConsistencyCleanWhenSameView) {
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    RelyingParty bob = f.makeRp("bob");
    alice.sync(f.repo.snapshot(), f.clock.now());
    bob.sync(f.repo.snapshot(), f.clock.now());
    alice.globalConsistencyCheck(bob.exportManifestClaims(), f.clock.now());
    bob.globalConsistencyCheck(alice.exportManifestClaims(), f.clock.now());
    EXPECT_FALSE(alice.alarms().has(AlarmType::GlobalInconsistency));
    EXPECT_FALSE(bob.alarms().has(AlarmType::GlobalInconsistency));
}

TEST(ConsentRp, GlobalConsistencyToleratesLag) {
    // Bob is one update behind Alice (within tg): no alarm, because Alice's
    // window retains the hash of the superseded manifest.
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    RelyingParty bob = f.makeRp("bob");
    alice.sync(f.repo.snapshot(), f.clock.now());
    bob.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    f.sprint->issueRoa("late", 77, {{pfx("63.160.77.0/24"), 24}}, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    alice.globalConsistencyCheck(bob.exportManifestClaims(), f.clock.now());
    EXPECT_FALSE(alice.alarms().has(AlarmType::GlobalInconsistency));
}

TEST(ConsentRp, MirrorWorldCaughtByGlobalConsistency) {
    // The §3.3 attack: the authority shows Alice one world and Bob another.
    Fixture f;
    RelyingParty alice = f.makeRp("alice");
    RelyingParty bob = f.makeRp("bob");
    alice.sync(f.repo.snapshot(), f.clock.now());
    bob.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    Authority& mirror = f.sprint->unsafeForkForMirrorWorld();
    Repository repoB = f.repo;  // bob's view starts identical
    f.sprint->issueRoa("forA", 1241, {{pfx("63.160.70.0/24"), 24}}, f.repo, f.clock.now());
    mirror.deleteRoa("as1239", repoB, f.clock.now());

    alice.sync(f.repo.snapshot(), f.clock.now());
    bob.sync(repoB.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u);
    EXPECT_EQ(bob.alarms().count(), 0u);

    // The views diverge; the global consistency check catches it in at
    // least one direction.
    alice.globalConsistencyCheck(bob.exportManifestClaims(), f.clock.now());
    bob.globalConsistencyCheck(alice.exportManifestClaims(), f.clock.now());
    const bool caught = alice.alarms().has(AlarmType::GlobalInconsistency) ||
                        bob.alarms().has(AlarmType::GlobalInconsistency);
    EXPECT_TRUE(caught);
    // With identical numbers and diverging contents it is accountable.
    bool accountable = false;
    for (const auto& a : alice.alarms().ofType(AlarmType::GlobalInconsistency)) {
        accountable |= a.accountable;
    }
    for (const auto& a : bob.alarms().ofType(AlarmType::GlobalInconsistency)) {
        accountable |= a.accountable;
    }
    EXPECT_TRUE(accountable);
}

TEST(ConsentRp, KeyExhaustionForcesRollover) {
    // The hash-based keys are bounded; an authority that keeps issuing
    // eventually throws and must roll its key.
    Repository repo;
    AuthorityDirectory dir(7, AuthorityOptions{.ts = 2, .signerHeight = 3,  // 8 signatures
                                               .manifestLifetime = 100});
    SimClock clock;
    Authority& ta = dir.createTrustAnchor("ta", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                          repo, clock.now());
    Authority& child =
        dir.createChild(ta, "child", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}), repo,
                        clock.now());
    EXPECT_THROW(
        {
            for (int i = 0; i < 20; ++i) {
                child.issueRoa("r" + std::to_string(i), 1, {{pfx("10.1.0.0/16"), 24}}, repo,
                               clock.now());
            }
        },
        KeyExhaustedError);
}

}  // namespace
}  // namespace rpkic
