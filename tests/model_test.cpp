// Model generators: the census validates end-to-end through the vanilla
// validator at reduced scale; the deployment model reproduces the Table-9
// distribution; the trace carries the case studies at the right dates.
#include <gtest/gtest.h>

#include "detector/diff.hpp"
#include "model/census.hpp"
#include "model/deployment.hpp"
#include "model/trace.hpp"
#include "vanilla/validation.hpp"

namespace rpkic {
namespace {

using model::buildDeploymentModel;
using model::buildProductionCensus;
using model::generateTrace;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

TEST(Census, SmallScaleValidatesCleanly) {
    model::CensusConfig config;
    config.scale = 0.02;
    config.pairTarget = 400;
    model::Census census = buildProductionCensus(config);

    Repository repo;
    census.tree.publish(repo, 0);
    const vanilla::Result result = vanilla::validateSnapshot(
        repo.snapshot(), census.tree.trustAnchors(), vanilla::Options{.now = 0});
    EXPECT_TRUE(result.problems.empty())
        << (result.problems.empty() ? "" : result.problems[0].str());
    // 5 trust anchors at depth 0.
    EXPECT_EQ(result.certCountAtDepth(0), 5u);
    EXPECT_GT(result.roas.size(), 0u);
    EXPECT_EQ(result.roas.size(), census.totalRoaObjects);

    // Every validated ROA tuple classifies Valid for its own AS.
    const RpkiState roaState = result.roaState();
    const PrefixValidityIndex idx(roaState);
    for (const auto& t : roaState.tuples()) {
        EXPECT_EQ(idx.classify(t.announcedRoute()), RouteValidity::Valid) << t.str();
    }
}

TEST(Census, ConsentDistributionMatchesTable8Shape) {
    // The distribution is deterministic; evaluate it at full scale without
    // paying for key generation.
    model::Census stats{vanilla::ClassicTree(vanilla::ClassicTreeOptions{}), {}, {}, 0, 0, 0, 0};
    stats.consent = model::table8Histogram(1.0);

    // Paper: mean 1.6 (ours ~1.77 from bucket representatives, see
    // table8Histogram docs); 93 % of leaves need <= 3 consenting ASes.
    EXPECT_NEAR(stats.meanConsentingAses(), 1.77, 0.2);
    EXPECT_NEAR(stats.fractionNeedingAtMost(3), 0.93, 0.02);

    // And the built tree at reduced scale carries the same shape
    // (min-1 rounding inflates rare rows; tolerance is wider).
    model::CensusConfig config;
    config.scale = 0.25;
    config.pairTarget = 5000;
    const model::Census census = buildProductionCensus(config);
    EXPECT_NEAR(census.fractionNeedingAtMost(3), 0.9, 0.07);
    EXPECT_GT(census.totalRoaObjects, 400u);
    // The pair target is itself scaled by `scale` (5000 * 0.25 = 1250),
    // and integer prefix-per-ROA division undershoots somewhat.
    EXPECT_NEAR(static_cast<double>(census.totalPairs), 1250, 450);
}

TEST(Deployment, Table9DistributionShape) {
    model::DeploymentConfig config;
    // The three named outliers are fixed-size, so very small scales skew the
    // mean; 0.2 (~23k allocations) is cheap (no crypto) and representative.
    config.scale = 0.2;
    const model::DeploymentModel m = buildDeploymentModel(config);

    EXPECT_NEAR(m.meanAsesPerAllocation(), 1.5, 0.35);
    const auto hist = m.consentHistogram();
    // Bucket proportions: the 1-10 bucket dominates by ~99.4 %.
    const double total = static_cast<double>(m.allocationCount());
    EXPECT_GT(static_cast<double>(hist[0]) / total, 0.98);
    EXPECT_GT(hist[1], 0u);
    EXPECT_GE(hist[4], 3u);  // the named outliers survive any scale

    // The paper's named outliers.
    const auto out = m.outliers(200);
    ASSERT_GE(out.size(), 3u);
    EXPECT_EQ(out[0]->holder, "Sprint");
    EXPECT_EQ(out[0]->asns.size(), 1073u);
    EXPECT_EQ(out[0]->prefix.str(), "12.0.0.0/8");
    EXPECT_EQ(out[1]->holder, "Cogent");
    EXPECT_EQ(out[2]->holder, "Verizon");
    EXPECT_EQ(out[2]->asns.size(), 598u);
}

TEST(Deployment, RoaStateBuildsWhenRequested) {
    model::DeploymentConfig config;
    config.scale = 0.005;
    config.buildRoaState = true;
    const model::DeploymentModel m = buildDeploymentModel(config);
    EXPECT_GT(m.roaState.size(), m.allocationCount());
    const PrefixValidityIndex idx(m.roaState);
    EXPECT_GT(idx.invalidFootprintAddresses(), 0u);
}

TEST(Trace, SpansTheMeasurementWindow) {
    const model::Trace trace = generateTrace({});
    ASSERT_EQ(trace.days(), 91);
    EXPECT_EQ(trace.entries[0].date, "2013-10-23");
    EXPECT_EQ(trace.entries[51].date, "2013-12-13");
    EXPECT_EQ(trace.entries[58].date, "2013-12-20");
    EXPECT_EQ(trace.entries[74].date, "2014-01-05");
    // Collector gaps exist.
    const auto gaps = std::count_if(trace.entries.begin(), trace.entries.end(),
                                    [](const auto& e) { return !e.collected; });
    EXPECT_EQ(gaps, 3);
}

TEST(Trace, BaselineNearTwentyThousandPairs) {
    const model::Trace trace = generateTrace({});
    EXPECT_NEAR(static_cast<double>(trace.entries[0].state.size()), 19000, 600);
    // Growth: January state larger than October's.
    EXPECT_GT(trace.entries[82].state.size(), trace.entries[0].state.size());
}

TEST(Trace, CaseStudy1DowngradesAppearOnDec13) {
    const model::Trace trace = generateTrace({});
    const auto& before = trace.entries[50].state;
    const auto& after = trace.entries[51].state;
    const PrefixValidityIndex idxA(after);
    EXPECT_EQ(idxA.classify({pfx("173.251.91.0/24"), 53725}), RouteValidity::Invalid);
    const PrefixValidityIndex idxB(before);
    EXPECT_EQ(idxB.classify({pfx("173.251.91.0/24"), 53725}), RouteValidity::Unknown);
}

TEST(Trace, CaseStudy2ValidToInvalidOnDec19) {
    const model::Trace trace = generateTrace({});
    const DowngradeReport report =
        diffStates(trace.entries[56].state, trace.entries[57].state);
    bool found = false;
    for (const auto& t : report.tupleTransitions) {
        if (t.route.str() == "79.139.96.0/24 AS51813") {
            found = true;
            EXPECT_EQ(t.before, RouteValidity::Valid);
            EXPECT_EQ(t.after, RouteValidity::Invalid);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Trace, LacnicDipOnDec20) {
    const model::Trace trace = generateTrace({});
    const auto& dayBefore = trace.entries[57].state;
    const auto& outage = trace.entries[58].state;
    const auto& dayAfter = trace.entries[59].state;

    // 4,217 LACNIC pairs disappear for exactly one day (routine growth
    // continues elsewhere, so total sizes are not directly comparable).
    const auto lacnicCount = [](const RpkiState& s) {
        std::size_t n = 0;
        for (const auto& t : s.tuples()) {
            if (t.prefix.family == IpFamily::v4 &&
                t.prefix.firstAddress().toU64() >= 0xB9000000ull &&
                t.prefix.firstAddress().toU64() < 0xC1000000ull) {
                ++n;
            }
        }
        return n;
    };
    EXPECT_EQ(lacnicCount(dayBefore), 4217u);
    EXPECT_EQ(lacnicCount(outage), 0u);
    EXPECT_EQ(lacnicCount(dayAfter), 4217u);

    const DowngradeReport report = diffStates(dayBefore, outage);
    // valid -> unknown dominates (no covering ROAs remain for LACNIC space).
    EXPECT_GT(report.validToUnknownPairs, 4000u);
    // And Figure 4's metric dips.
    EXPECT_LT(report.invalidAddressesAfter, report.invalidAddressesBefore);
}

TEST(Trace, ConsentOverheadStatsMatchSection57) {
    const model::Trace trace = generateTrace({});
    const auto& s = trace.stats;
    EXPECT_EQ(s.bulkRestructured, 3336u);
    ASSERT_GT(s.modifyOrRevokeEvents(), 0u);
    const double renewalShare =
        static_cast<double>(s.renewals) / static_cast<double>(s.modifyOrRevokeEvents());
    EXPECT_NEAR(renewalShare, 0.80, 0.1);
    const double deadShare =
        static_cast<double>(s.needingDead) / static_cast<double>(s.modifyOrRevokeEvents());
    EXPECT_LT(deadShare, 0.06);
}

TEST(Trace, DeterministicForSameSeed) {
    const model::Trace a = generateTrace({});
    const model::Trace b = generateTrace({});
    ASSERT_EQ(a.days(), b.days());
    for (int d = 0; d < a.days(); d += 13) {
        EXPECT_EQ(a.entries[static_cast<std::size_t>(d)].state,
                  b.entries[static_cast<std::size_t>(d)].state)
            << "day " << d;
    }
}

}  // namespace
}  // namespace rpkic
