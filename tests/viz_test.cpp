// Visualizer: node-state evaluation for the Figure-6 scenarios, ASCII and
// SVG rendering.
#include "viz/prefix_tree_viz.hpp"

#include <gtest/gtest.h>

#include "util/errors.hpp"

namespace rpkic {
namespace {

using viz::NodeState;
using viz::PrefixTreeViz;
using viz::VizConfig;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

TEST(Viz, CaseStudy1Figure6Left) {
    // Figure 6(l): the ROA (173.251.0.0/17, max 24, AS 6128) appears; the
    // triangle rooted at the /17 transitions unknown -> invalid for other
    // ASes; feed routes inside it get black circles.
    const PrefixValidityIndex before{RpkiState{}};
    const PrefixValidityIndex after{RpkiState({{pfx("173.251.0.0/17"), 24, 6128}})};
    const std::vector<Route> feed = {
        {pfx("173.251.91.0/24"), 53725},
        {pfx("173.251.54.0/24"), 13599},
        {pfx("173.251.128.0/24"), 7018},  // outside the /17: stays unknown
    };
    const PrefixTreeViz viz(before, after,
                            VizConfig{pfx("173.251.0.0/16"), 8, 53725},
                            feed);

    EXPECT_EQ(viz.stateOf(pfx("173.251.0.0/17")), NodeState::DowngradedToInvalid);
    EXPECT_EQ(viz.stateOf(pfx("173.251.0.0/20")), NodeState::DowngradedToInvalid);
    EXPECT_EQ(viz.stateOf(pfx("173.251.128.0/17")), NodeState::Unknown);
    EXPECT_EQ(viz.stateOf(pfx("173.251.0.0/16")), NodeState::Unknown)
        << "the /16 itself is not covered by the /17 ROA";

    // Exactly half of each level below /17 is downgraded.
    std::size_t downgraded = viz.countState(NodeState::DowngradedToInvalid);
    std::uint64_t expected = 0;
    for (int level = 17; level <= 24; ++level) expected += 1ULL << (level - 17);
    EXPECT_EQ(downgraded, expected);

    ASSERT_EQ(viz.feedMarks().size(), 3u);
    EXPECT_EQ(viz.feedMarks()[0].stateAfter, RouteValidity::Invalid);
    EXPECT_EQ(viz.feedMarks()[2].stateAfter, RouteValidity::Unknown);
}

TEST(Viz, Figure6RightValidTriangleForOwnAs) {
    // Figure 6(r): adding the covering ROA (63.174.16.0/20, AS 17054).
    // From AS 17054's perspective the triangle is valid down to /24.
    const PrefixValidityIndex before{RpkiState({{pfx("63.174.16.0/24"), 24, 19817}})};
    const PrefixValidityIndex after{RpkiState({
        {pfx("63.174.16.0/24"), 24, 19817},
        {pfx("63.174.16.0/20"), 24, 17054},
    })};
    const PrefixTreeViz own(before, after, VizConfig{pfx("63.174.16.0/20"), 4, 17054});
    EXPECT_EQ(own.stateOf(pfx("63.174.16.0/20")), NodeState::Valid);
    EXPECT_EQ(own.stateOf(pfx("63.174.31.0/24")), NodeState::Valid);
    EXPECT_EQ(own.countState(NodeState::Unknown), 0u);

    // From the victim AS's perspective, previously-unknown space downgraded;
    // its own /24 stays valid.
    const PrefixTreeViz victim(before, after, VizConfig{pfx("63.174.16.0/20"), 4, 19817});
    EXPECT_EQ(victim.stateOf(pfx("63.174.16.0/24")), NodeState::Valid);
    EXPECT_EQ(victim.stateOf(pfx("63.174.17.0/24")), NodeState::DowngradedToInvalid);
    EXPECT_EQ(victim.stateOf(pfx("63.174.16.0/20")), NodeState::DowngradedToInvalid);
}

TEST(Viz, AsciiRenderShape) {
    const PrefixValidityIndex before{RpkiState{}};
    const PrefixValidityIndex after{RpkiState({{pfx("10.0.0.0/9"), 10, 1}})};
    const PrefixTreeViz viz(before, after, VizConfig{pfx("10.0.0.0/8"), 3, 1});
    const std::string art = viz.renderAscii();
    EXPECT_NE(art.find("prefix tree rooted at 10.0.0.0/8"), std::string::npos);
    EXPECT_NE(art.find("/8"), std::string::npos);
    EXPECT_NE(art.find("/11"), std::string::npos);
    EXPECT_NE(art.find('v'), std::string::npos);   // valid nodes for AS 1
    EXPECT_NE(art.find('!'), std::string::npos);   // downgraded at /11 level under the /9
    EXPECT_NE(art.find("legend"), std::string::npos);
    // 4 levels plus header and legend.
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 6);
}

TEST(Viz, SvgRenderContainsNodesAndLegend) {
    const PrefixValidityIndex before{RpkiState{}};
    const PrefixValidityIndex after{RpkiState({{pfx("10.0.0.0/9"), 9, 1}})};
    const PrefixTreeViz viz(before, after, VizConfig{pfx("10.0.0.0/8"), 4, 2});
    const std::string svg = viz.renderSvg();
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    // 2^5 - 1 = 31 tree nodes + 4 legend circles.
    EXPECT_EQ(std::count(svg.begin(), svg.end(), '\n') > 30, true);
    EXPECT_NE(svg.find("#e4572e"), std::string::npos);  // downgraded color present
    EXPECT_NE(svg.find("downgraded"), std::string::npos);
}

TEST(Viz, GuardsAgainstAbsurdDepth) {
    const PrefixValidityIndex idx{RpkiState{}};
    EXPECT_THROW(PrefixTreeViz(idx, idx, VizConfig{pfx("10.0.0.0/8"), 30, 1}), UsageError);
    EXPECT_THROW(PrefixTreeViz(idx, idx, VizConfig{pfx("10.0.0.0/30"), 5, 1}), UsageError);
}

TEST(Viz, StateLookupGuards) {
    const PrefixValidityIndex idx{RpkiState{}};
    const PrefixTreeViz viz(idx, idx, VizConfig{pfx("10.0.0.0/8"), 4, 1});
    EXPECT_THROW((void)viz.stateOf(pfx("11.0.0.0/9")), UsageError);
    EXPECT_THROW((void)viz.stateOf(pfx("10.0.0.0/24")), UsageError);
}

}  // namespace
}  // namespace rpkic
