// Filesystem persistence: snapshot <-> directory round-trips, safety
// checks on names, trust-anchor files, and an on-disk validation pass.
#include "rpki/fs_repository.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/errors.hpp"
#include "vanilla/classic_tree.hpp"
#include "vanilla/validation.hpp"

namespace rpkic {
namespace {

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    TempDir() : path(fs::temp_directory_path() /
                     ("rpkic_fs_test_" + std::to_string(::getpid()))) {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string str() const { return path.string(); }
};

TEST(FsRepository, PointDirectoryNames) {
    EXPECT_EQ(pointDirectoryName("rpki://sprint/"), "sprint");
    EXPECT_EQ(pointDirectoryName("rpki://ripe-im0/"), "ripe-im0");
    EXPECT_EQ(pointUriForDirectory("sprint"), "rpki://sprint/");
    EXPECT_THROW((void)pointDirectoryName("rpki://../etc/"), ParseError);
    EXPECT_THROW((void)pointDirectoryName("rpki:///"), ParseError);
    EXPECT_THROW((void)pointUriForDirectory(".hidden"), ParseError);
}

TEST(FsRepository, SnapshotRoundTrip) {
    TempDir dir;
    Repository repo;
    repo.putFile("rpki://a/", "x.roa", {1, 2, 3});
    repo.putFile("rpki://a/", "manifest.mft", {4, 5});
    repo.putFile("rpki://b/", "y.cer", {6});
    const Snapshot original = repo.snapshot();

    writeSnapshotToDisk(original, dir.str());
    const Snapshot back = readSnapshotFromDisk(dir.str());
    EXPECT_EQ(back.points, original.points);
}

TEST(FsRepository, RewriteReplacesStaleFiles) {
    TempDir dir;
    Repository repo;
    repo.putFile("rpki://a/", "old.roa", {1});
    writeSnapshotToDisk(repo.snapshot(), dir.str());

    Repository repo2;
    repo2.putFile("rpki://a/", "new.roa", {2});
    writeSnapshotToDisk(repo2.snapshot(), dir.str());

    const Snapshot back = readSnapshotFromDisk(dir.str());
    EXPECT_EQ(back.file("rpki://a/", "old.roa"), nullptr) << "old file must be gone";
    ASSERT_NE(back.file("rpki://a/", "new.roa"), nullptr);
}

TEST(FsRepository, UnsafeFilenamesRejectedOnWrite) {
    TempDir dir;
    Repository repo;
    repo.putFile("rpki://a/", "../escape", {1});
    EXPECT_THROW(writeSnapshotToDisk(repo.snapshot(), dir.str()), ParseError);
}

TEST(FsRepository, TrustAnchorFileRoundTrip) {
    TempDir dir;
    vanilla::ClassicTree tree;
    tree.addTrustAnchor("ta", ResourceSet::ofPrefixes({IpPrefix::parse("10.0.0.0/8")}));
    const ResourceCert ta = tree.trustAnchors()[0];

    const std::string path = dir.str() + "/ta.cer";
    writeTrustAnchorFile(ta, path);
    const ResourceCert back = readTrustAnchorFile(path);
    EXPECT_EQ(back.encode(), ta.encode());

    // Tampered files are rejected.
    {
        ResourceCert tampered = ta;
        tampered.serial = 999;
        writeTrustAnchorFile(tampered, dir.str() + "/bad.cer");
        EXPECT_THROW((void)readTrustAnchorFile(dir.str() + "/bad.cer"), ParseError);
    }
    EXPECT_THROW((void)readTrustAnchorFile(dir.str() + "/missing.cer"), Error);
}

TEST(FsRepository, ValidationWorksFromDisk) {
    // Publish a small tree to disk, read it back, validate — the
    // rpkic-validate code path.
    TempDir dir;
    vanilla::ClassicTree tree;
    tree.addTrustAnchor("ta", ResourceSet::ofPrefixes({IpPrefix::parse("10.0.0.0/8")}));
    tree.addChild("ta", "org", ResourceSet::ofPrefixes({IpPrefix::parse("10.1.0.0/16")}));
    tree.addRoa("org", "r", 64500, {{IpPrefix::parse("10.1.0.0/16"), 24}});
    Repository repo;
    tree.publish(repo, 0);
    writeSnapshotToDisk(repo.snapshot(), dir.str());

    const Snapshot fromDisk = readSnapshotFromDisk(dir.str());
    const vanilla::Result result =
        vanilla::validateSnapshot(fromDisk, tree.trustAnchors(), vanilla::Options{.now = 0});
    EXPECT_TRUE(result.problems.empty())
        << (result.problems.empty() ? "" : result.problems[0].str());
    EXPECT_EQ(result.roas.size(), 1u);
}

}  // namespace
}  // namespace rpkic
