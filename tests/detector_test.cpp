// Detector: classification semantics (paper §2.2), triangle geometry
// (§4.1), downgrade diffs for the paper's case studies, and a randomized
// property sweep against a brute-force oracle.
#include "detector/diff.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rpkic {
namespace {

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

RpkiState state(std::vector<RoaTuple> tuples) {
    return RpkiState(std::move(tuples));
}

TEST(RpkiState, NormalizesAndDiffs) {
    const RpkiState a = state({{pfx("10.0.0.0/8"), 8, 1}, {pfx("10.0.0.0/8"), 8, 1}});
    EXPECT_EQ(a.size(), 1u);
    const RpkiState b = state({{pfx("10.0.0.0/8"), 8, 1}, {pfx("11.0.0.0/8"), 8, 2}});
    const auto onlyB = b.minus(a);
    ASSERT_EQ(onlyB.size(), 1u);
    EXPECT_EQ(onlyB[0].asn, 2u);
    EXPECT_TRUE(a.contains({pfx("10.0.0.0/8"), 8, 1}));
    EXPECT_FALSE(a.contains({pfx("10.0.0.0/8"), 9, 1}));
}

TEST(RpkiState, FromRoasFlattens) {
    Roa roa;
    roa.asn = 7341;
    roa.prefixes = {{pfx("63.168.93.0/24"), 24}, {pfx("63.174.16.0/20"), 24}};
    const RpkiState s = RpkiState::fromRoas(std::span(&roa, 1));
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.contains({pfx("63.174.16.0/20"), 24, 7341}));
}

TEST(Classify, DesideratumFromSection22) {
    // Legitimate route has a matching ROA; a subprefix hijack must be
    // invalid, an unrelated prefix unknown.
    const PrefixValidityIndex idx(state({{pfx("63.160.0.0/12"), 12, 1239}}));
    EXPECT_EQ(idx.classify({pfx("63.160.0.0/12"), 1239}), RouteValidity::Valid);
    EXPECT_EQ(idx.classify({pfx("63.160.77.0/24"), 666}), RouteValidity::Invalid);
    EXPECT_EQ(idx.classify({pfx("63.160.77.0/24"), 1239}), RouteValidity::Invalid)
        << "maxLength 12 does not authorize longer prefixes even for the right AS";
    EXPECT_EQ(idx.classify({pfx("64.0.0.0/12"), 666}), RouteValidity::Unknown);
    EXPECT_EQ(idx.classify({pfx("63.0.0.0/8"), 1239}), RouteValidity::Unknown)
        << "a shorter prefix is not covered by the /12 ROA";
}

TEST(Classify, MaxLengthWindow) {
    const PrefixValidityIndex idx(state({{pfx("10.0.0.0/17"), 22, 7}}));
    EXPECT_EQ(idx.classify({pfx("10.0.0.0/17"), 7}), RouteValidity::Valid);
    EXPECT_EQ(idx.classify({pfx("10.0.0.0/22"), 7}), RouteValidity::Valid);
    EXPECT_EQ(idx.classify({pfx("10.0.0.0/23"), 7}), RouteValidity::Invalid);
    EXPECT_EQ(idx.classify({pfx("10.0.64.0/18"), 7}), RouteValidity::Valid);
    EXPECT_EQ(idx.classify({pfx("10.0.128.0/17"), 7}), RouteValidity::Unknown);
}

TEST(Classify, PaperTriangleSizeExample) {
    // §4.1: a ROA for a /17 up to maxLength 22 makes 2^(23-17)-1 = 63
    // prefixes valid for the AS.
    const PrefixValidityIndex idx(state({{pfx("10.0.0.0/17"), 22, 7}}));
    EXPECT_EQ(idx.validTriangles(7).prefixCount(), 63u);
    EXPECT_EQ(idx.validTriangles(8).prefixCount(), 0u);
}

TEST(Classify, OverlappingRoasKeepRouteValid) {
    // §4.1: whacking one ROA need not invalidate routes that another ROA
    // (same AS, super-prefix) still validates.
    const PrefixValidityIndex idx(state({
        {pfx("10.0.0.0/16"), 24, 7},
    }));
    const PrefixValidityIndex both(state({
        {pfx("10.0.0.0/16"), 24, 7},
        {pfx("10.0.3.0/24"), 24, 7},
    }));
    EXPECT_EQ(both.classify({pfx("10.0.3.0/24"), 7}), RouteValidity::Valid);
    EXPECT_EQ(idx.classify({pfx("10.0.3.0/24"), 7}), RouteValidity::Valid)
        << "covering ROA with sufficient maxLength keeps the route valid";
}

TEST(Classify, V6Routes) {
    const PrefixValidityIndex idx(state({{pfx("2c0f:f668::/32"), 48, 37600}}));
    EXPECT_EQ(idx.classify({pfx("2c0f:f668::/32"), 37600}), RouteValidity::Valid);
    EXPECT_EQ(idx.classify({pfx("2c0f:f668:1::/48"), 37600}), RouteValidity::Valid);
    EXPECT_EQ(idx.classify({pfx("2c0f:f668:1::/48"), 666}), RouteValidity::Invalid);
    EXPECT_EQ(idx.classify({pfx("2c0f:f668::/49"), 37600}), RouteValidity::Invalid);
    EXPECT_EQ(idx.classify({pfx("2c0f:f669::/32"), 37600}), RouteValidity::Unknown);
}

TEST(Classify, EmptyStateEverythingUnknown) {
    const PrefixValidityIndex idx{RpkiState{}};
    EXPECT_EQ(idx.classify({pfx("8.8.8.0/24"), 15169}), RouteValidity::Unknown);
    EXPECT_EQ(idx.invalidFootprintAddresses(), 0u);
    EXPECT_TRUE(idx.asns().empty());
}

TEST(Diff, CaseStudy1AddedRoaDowngradesCoveredRoutes) {
    // Dec 13: ROA (173.251.0.0/17, max 24, AS 6128) appears; legitimate
    // /24s without their own ROAs downgrade unknown -> invalid.
    const RpkiState before = state({});
    const RpkiState after = state({{pfx("173.251.0.0/17"), 24, 6128}});
    const PrefixValidityIndex idxB(before), idxA(after);

    EXPECT_EQ(idxB.classify({pfx("173.251.91.0/24"), 53725}), RouteValidity::Unknown);
    EXPECT_EQ(idxA.classify({pfx("173.251.91.0/24"), 53725}), RouteValidity::Invalid);
    EXPECT_EQ(idxA.classify({pfx("173.251.54.0/24"), 13599}), RouteValidity::Invalid);
    EXPECT_EQ(idxA.classify({pfx("173.251.0.0/17"), 6128}), RouteValidity::Valid);

    const DowngradeReport report = diffStates(idxB, idxA);
    EXPECT_EQ(report.validToInvalidPairs, 0u);
    EXPECT_GT(report.unknownToValidPairs, 0u);
    // The /17 covers 2^15 addresses, all newly "invalid for >= 1 AS".
    EXPECT_EQ(report.invalidAddressesBefore, 0u);
    EXPECT_EQ(report.invalidAddressesAfter, 32768u);
}

TEST(Diff, CaseStudy2WhackedRoaWithCoveringRoa) {
    // Dec 19: ROA (79.139.96.0/24, AS 51813) deleted while a covering ROA
    // (79.139.96.0/19-20, AS 43782) exists: the route downgrades
    // valid -> invalid.
    const RpkiState before = state({
        {pfx("79.139.96.0/24"), 24, 51813},
        {pfx("79.139.96.0/19"), 20, 43782},
    });
    const RpkiState after = state({
        {pfx("79.139.96.0/19"), 20, 43782},
    });
    const PrefixValidityIndex idxB(before), idxA(after);
    EXPECT_EQ(idxB.classify({pfx("79.139.96.0/24"), 51813}), RouteValidity::Valid);
    EXPECT_EQ(idxA.classify({pfx("79.139.96.0/24"), 51813}), RouteValidity::Invalid);

    const DowngradeReport report = diffStates(idxB, idxA);
    EXPECT_EQ(report.validToInvalidPairs, 1u);
    EXPECT_EQ(report.validToUnknownPairs, 0u);
    ASSERT_FALSE(report.perAs.empty());
    EXPECT_EQ(report.perAs[0].asn, 51813u);
    ASSERT_EQ(report.perAs[0].exampleLostValid.size(), 1u);
    EXPECT_EQ(report.perAs[0].exampleLostValid[0].str(), "79.139.96.0/24");

    // The tuple-level report names the victim route.
    bool found = false;
    for (const auto& t : report.tupleTransitions) {
        if (t.route.str() == "79.139.96.0/24 AS51813") {
            found = true;
            EXPECT_EQ(t.before, RouteValidity::Valid);
            EXPECT_EQ(t.after, RouteValidity::Invalid);
            EXPECT_TRUE(t.isDowngrade());
        }
    }
    EXPECT_TRUE(found);
}

TEST(Diff, WhackedRoaWithoutCoverGoesUnknown) {
    const RpkiState before = state({{pfx("196.6.174.0/23"), 24, 37688}});
    const RpkiState after = state({});
    const DowngradeReport report = diffStates(before, after);
    EXPECT_EQ(report.validToInvalidPairs, 0u);
    // /23 with maxLength 24: levels 23 and 24 -> 1 + 2 = 3 pairs.
    EXPECT_EQ(report.validToUnknownPairs, 3u);
    EXPECT_FALSE(report.tupleTransitions.empty());
    EXPECT_TRUE(report.hasDowngrades());
}

TEST(Diff, CompetingRoaDetected) {
    // Kent et al.'s threat (paper §6): a new ROA for (10.0.7.0/24, AS 666)
    // competes with the existing (10.0.0.0/16, AS 7) ROA — AS 666 can now
    // subprefix-hijack AS 7 "legitimately".
    const RpkiState before = state({{pfx("10.0.0.0/16"), 16, 7}});
    const RpkiState after = state({
        {pfx("10.0.0.0/16"), 16, 7},
        {pfx("10.0.7.0/24"), 24, 666},
    });
    const DowngradeReport report = diffStates(before, after);
    ASSERT_EQ(report.competingRoas.size(), 1u);
    EXPECT_EQ(report.competingRoas[0].added.asn, 666u);
    EXPECT_EQ(report.competingRoas[0].existing.asn, 7u);

    // Same AS extending its own space is NOT competing.
    const RpkiState ownExtension = state({
        {pfx("10.0.0.0/16"), 16, 7},
        {pfx("10.0.7.0/24"), 24, 7},
    });
    EXPECT_TRUE(diffStates(before, ownExtension).competingRoas.empty());

    // A new ROA for uncovered space is NOT competing.
    const RpkiState unrelated = state({
        {pfx("10.0.0.0/16"), 16, 7},
        {pfx("11.0.0.0/16"), 16, 666},
    });
    EXPECT_TRUE(diffStates(before, unrelated).competingRoas.empty());
}

TEST(Diff, NoChangesNoDowngrades) {
    const RpkiState s = state({{pfx("10.0.0.0/16"), 20, 7}});
    const DowngradeReport report = diffStates(s, s);
    EXPECT_FALSE(report.hasDowngrades());
    EXPECT_TRUE(report.tupleTransitions.empty());
    EXPECT_EQ(report.unknownToValidPairs, 0u);
}

TEST(Diff, UnknownToInvalidTrianglesForViz) {
    // Figure 6(r) scenario shape: adding a covering ROA downgrades the
    // uncovered part of the space.
    const RpkiState before = state({{pfx("63.174.16.0/24"), 24, 19817}});
    const RpkiState after = state({
        {pfx("63.174.16.0/24"), 24, 19817},
        {pfx("63.174.16.0/20"), 24, 17054},
    });
    const PrefixValidityIndex idxB(before), idxA(after);
    const TriangleSet tri = unknownToInvalidTriangles(idxB, idxA, 19817);
    // 63.174.16.0/24 at level 24 was already known before; everything else
    // under the /20 from level 20 downward is newly invalid for AS 19817.
    EXPECT_TRUE(tri.containsPrefix(pfx("63.174.17.0/24")));
    EXPECT_FALSE(tri.containsPrefix(pfx("63.174.16.0/24")));
    EXPECT_TRUE(tri.containsPrefix(pfx("63.174.16.0/20")));
}

TEST(SamplePrefixes, ExtractsAlignedBlocks) {
    const PrefixValidityIndex idx(state({{pfx("10.0.0.0/15"), 16, 7}}));
    const auto sample = samplePrefixes(idx.validTriangles(7), 10);
    ASSERT_EQ(sample.size(), 3u);
    EXPECT_EQ(sample[0].str(), "10.0.0.0/15");
    EXPECT_EQ(sample[1].str(), "10.0.0.0/16");
    EXPECT_EQ(sample[2].str(), "10.1.0.0/16");
}

// ---------------------------------------------------------------------------
// Randomized property sweep: classification and diff counts must match a
// brute-force oracle on a confined subtree of the prefix space.

RouteValidity oracleClassify(const std::vector<RoaTuple>& tuples, const Route& r) {
    bool covered = false;
    for (const auto& t : tuples) {
        if (!t.prefix.covers(r.prefix)) continue;
        covered = true;
        if (t.asn == r.origin && r.prefix.length <= t.maxLength) return RouteValidity::Valid;
    }
    return covered ? RouteValidity::Invalid : RouteValidity::Unknown;
}

// All prefixes under 10.0.0.0/24 down to /32, plus the root /24 ancestors.
std::vector<IpPrefix> testUniverse() {
    std::vector<IpPrefix> out;
    for (int len = 24; len <= 32; ++len) {
        const std::uint32_t count = 1u << (len - 24);
        for (std::uint32_t i = 0; i < count; ++i) {
            out.push_back(IpPrefix::v4(0x0A000000u + (i << (32 - len)), len));
        }
    }
    return out;
}

class DetectorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectorProperty, ClassifyMatchesBruteForce) {
    Rng rng(GetParam());
    const std::vector<IpPrefix> universe = testUniverse();
    const std::vector<Asn> asns = {1, 2, 3};

    auto randomState = [&]() {
        std::vector<RoaTuple> tuples;
        const int n = static_cast<int>(rng.nextInRange(0, 12));
        for (int i = 0; i < n; ++i) {
            const IpPrefix& p = universe[static_cast<std::size_t>(rng.nextBelow(universe.size()))];
            const auto maxLen = static_cast<std::uint8_t>(rng.nextInRange(p.length, 32));
            tuples.push_back({p, maxLen, asns[static_cast<std::size_t>(rng.nextBelow(3))]});
        }
        return RpkiState(std::move(tuples));
    };

    for (int iter = 0; iter < 10; ++iter) {
        const RpkiState prev = randomState();
        const RpkiState cur = randomState();
        const PrefixValidityIndex idxPrev(prev), idxCur(cur);

        // unknown->invalid is defined over the tracked AS universe (ASes
        // appearing in some ROA of either state); mirror that here.
        std::vector<Asn> tracked;
        for (const auto& t : prev.tuples()) tracked.push_back(t.asn);
        for (const auto& t : cur.tuples()) tracked.push_back(t.asn);
        std::sort(tracked.begin(), tracked.end());
        tracked.erase(std::unique(tracked.begin(), tracked.end()), tracked.end());

        std::uint64_t v2i = 0, v2u = 0, u2v = 0, u2i = 0;
        for (const auto& p : universe) {
            for (const Asn a : asns) {
                const Route r{p, a};
                const RouteValidity ob = oracleClassify(prev.tuples(), r);
                const RouteValidity oa = oracleClassify(cur.tuples(), r);
                ASSERT_EQ(idxPrev.classify(r), ob) << r.str();
                ASSERT_EQ(idxCur.classify(r), oa) << r.str();
                const bool isTracked = std::binary_search(tracked.begin(), tracked.end(), a);
                if (ob == RouteValidity::Valid && oa == RouteValidity::Invalid) ++v2i;
                if (ob == RouteValidity::Valid && oa == RouteValidity::Unknown) ++v2u;
                if (ob == RouteValidity::Unknown && oa == RouteValidity::Valid) ++u2v;
                if (ob == RouteValidity::Unknown && oa == RouteValidity::Invalid && isTracked) ++u2i;
            }
        }
        const DowngradeReport report = diffStates(idxPrev, idxCur);
        EXPECT_EQ(report.validToInvalidPairs, v2i);
        EXPECT_EQ(report.validToUnknownPairs, v2u);
        EXPECT_EQ(report.unknownToValidPairs, u2v);
        EXPECT_EQ(report.unknownToInvalidPairs, u2i);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace rpkic
