// Algebraic laws across the foundational value types, checked on random
// inputs: interval-set boolean algebra, resource-set lattice laws, WOTS
// digit edge cases, Merkle trees of every power-of-two size, and U128
// arithmetic identities.
#include <gtest/gtest.h>

#include "crypto/merkle.hpp"
#include "crypto/wots.hpp"
#include "ip/interval_set.hpp"
#include "ip/resource_set.hpp"
#include "util/rng.hpp"

namespace rpkic {
namespace {

using Set64 = IntervalSet<std::uint64_t>;

Set64 randomSet(Rng& rng, std::uint64_t universe) {
    Set64 s;
    const int n = static_cast<int>(rng.nextBelow(6));
    for (int i = 0; i < n; ++i) {
        const auto lo = rng.nextBelow(universe);
        const auto hi = rng.nextInRange(lo, std::min(universe - 1, lo + rng.nextBelow(64)));
        s.insert(lo, hi);
    }
    return s;
}

class AlgebraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlgebraProperty, IntervalSetBooleanLaws) {
    Rng rng(GetParam());
    for (int iter = 0; iter < 40; ++iter) {
        const Set64 a = randomSet(rng, 1000);
        const Set64 b = randomSet(rng, 1000);
        const Set64 c = randomSet(rng, 1000);

        // Commutativity and associativity.
        EXPECT_EQ(a.unionWith(b), b.unionWith(a));
        EXPECT_EQ(a.intersect(b), b.intersect(a));
        EXPECT_EQ(a.unionWith(b).unionWith(c), a.unionWith(b.unionWith(c)));
        EXPECT_EQ(a.intersect(b).intersect(c), a.intersect(b.intersect(c)));
        // Absorption and idempotence.
        EXPECT_EQ(a.unionWith(a.intersect(b)), a);
        EXPECT_EQ(a.intersect(a.unionWith(b)), a);
        EXPECT_EQ(a.unionWith(a), a);
        EXPECT_EQ(a.intersect(a), a);
        // Distributivity.
        EXPECT_EQ(a.intersect(b.unionWith(c)),
                  a.intersect(b).unionWith(a.intersect(c)));
        // Difference identities.
        EXPECT_EQ(a.subtract(b).intersect(b), Set64{});
        EXPECT_EQ(a.subtract(b).unionWith(a.intersect(b)), a);
        EXPECT_EQ(a.subtract(a), Set64{});
        // Cardinality consistency: |A| + |B| = |A u B| + |A n B|.
        EXPECT_EQ(a.countU64() + b.countU64(),
                  a.unionWith(b).countU64() + a.intersect(b).countU64());
    }
}

TEST_P(AlgebraProperty, ResourceSetLatticeLaws) {
    Rng rng(GetParam() * 31 + 7);
    auto randomResources = [&rng]() {
        ResourceSet r;
        const int n = static_cast<int>(rng.nextBelow(4)) + 1;
        for (int i = 0; i < n; ++i) {
            const auto base = static_cast<std::uint32_t>(rng.nextBelow(200)) << 20;
            r.addPrefix(IpPrefix::v4(base, static_cast<int>(rng.nextInRange(12, 20))));
        }
        if (rng.nextBool(0.5)) r.addAsnRange(static_cast<Asn>(rng.nextBelow(100)),
                                             static_cast<Asn>(100 + rng.nextBelow(100)));
        return r;
    };
    for (int iter = 0; iter < 25; ++iter) {
        const ResourceSet a = randomResources();
        const ResourceSet b = randomResources();
        // Subset is a partial order consistent with union/intersection.
        EXPECT_TRUE(a.subsetOf(a.unionWith(b)));
        EXPECT_TRUE(a.intersect(b).subsetOf(a));
        EXPECT_TRUE(a.intersect(b).subsetOf(b));
        EXPECT_TRUE(a.subtract(b).subsetOf(a));
        // subtract removes exactly the intersection.
        EXPECT_TRUE(a.subtract(b).unionWith(a.intersect(b)).subsetOf(a));
        EXPECT_TRUE(a.subsetOf(a.subtract(b).unionWith(a.intersect(b))));
        // Overlap is symmetric and matches a non-empty intersection.
        const bool hasOverlap = !a.intersect(b).empty();
        EXPECT_EQ(a.overlaps(b), hasOverlap);
        EXPECT_EQ(b.overlaps(a), hasOverlap);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraProperty, ::testing::Values(3, 5, 7, 11, 13));

TEST(WotsEdgeCases, ExtremeDigestsRoundTrip) {
    // All-zero digest: maximal checksum. All-0xff digest: zero checksum.
    Digest zeros{};
    Digest ones{};
    ones.bytes.fill(0xff);

    for (const Digest& msg : {zeros, ones, sha256("ordinary")}) {
        const auto digits = wots::messageDigits(msg);
        std::uint32_t checksum = 0;
        for (int i = 0; i < wots::kMsgChains; ++i) checksum += 15u - digits[i];
        EXPECT_LE(checksum, 64u * 15u);
        const Digest secretSeed = sha256("s");
        const Digest publicSeed = sha256("p");
        const Digest pk = wots::derivePublicKey(secretSeed, publicSeed, 3);
        const auto sig = wots::sign(secretSeed, publicSeed, 3, msg);
        EXPECT_EQ(wots::publicKeyFromSignature(publicSeed, 3, msg, sig), pk);
    }
}

TEST(MerkleShapes, AllPowerOfTwoSizesVerify) {
    for (std::size_t count : {1u, 2u, 4u, 8u, 32u, 128u}) {
        std::vector<Digest> leaves;
        for (std::size_t i = 0; i < count; ++i) {
            leaves.push_back(sha256("leaf" + std::to_string(i)));
        }
        MerkleTree tree(leaves);
        Rng rng(count);
        for (int probe = 0; probe < 8; ++probe) {
            const std::size_t i = static_cast<std::size_t>(rng.nextBelow(count));
            EXPECT_EQ(merkleRootFromPath(leaves[i], i, tree.path(i)), tree.root())
                << count << " leaves, index " << i;
            // A wrong leaf at the right index must fail (except the trivial
            // one-leaf tree, whose root IS the leaf).
            if (count > 1) {
                EXPECT_NE(merkleRootFromPath(sha256("wrong"), i, tree.path(i)), tree.root());
            }
        }
    }
}

TEST(U128Identities, RandomizedArithmetic) {
    Rng rng(17);
    for (int iter = 0; iter < 200; ++iter) {
        const U128 a{rng.nextU64(), rng.nextU64()};
        const U128 b{rng.nextU64(), rng.nextU64()};
        EXPECT_EQ(a + b, b + a);
        EXPECT_EQ((a + b) - b, a);
        EXPECT_EQ(a - a, U128(0));
        EXPECT_EQ((a ^ b) ^ b, a);
        EXPECT_EQ(~~a, a);
        const int shift = static_cast<int>(rng.nextBelow(128));
        // Shifting out and back loses only the shifted-out bits.
        const U128 masked = (a << shift) >> shift;
        EXPECT_EQ(masked, shift == 0 ? a : (a & (U128::max() >> shift)));
    }
}

}  // namespace
}  // namespace rpkic
