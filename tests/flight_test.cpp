// Flight recorder + postmortem bundles (src/obs/flight/).
//
// Covers the PR's determinism contract end to end: ring wraparound and
// drop accounting, scope stacking, bundle build/parse round-trips, and —
// the load-bearing property — byte-identical postmortem bundles across
// same-seed runs of the soak, the crash sweep, and the fleet at every
// pool size.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "obs/flight/postmortem.hpp"
#include "obs/flight/recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/chaos_soak.hpp"
#include "sim/crash_sweep.hpp"
#include "util/errors.hpp"
#include "util/parallel.hpp"

namespace rpkic {
namespace {

using obs::FlightEvent;
using obs::FlightKind;
using obs::FlightRecorder;
using obs::FlightScope;

TEST(FlightRecorder, RecordsInSequenceOrder) {
    FlightRecorder rec(/*capacity=*/16);
    rec.record(FlightKind::Alarm, "rp", "a");
    rec.record(FlightKind::StoreCommit, "store", "b");
    rec.record(FlightKind::LogLine, "sync", "c");

    const std::vector<FlightEvent> events = rec.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].seq, 1u);
    EXPECT_EQ(events[1].seq, 2u);
    EXPECT_EQ(events[2].seq, 3u);
    EXPECT_EQ(events[0].kind, FlightKind::Alarm);
    EXPECT_EQ(events[1].component, "store");
    EXPECT_EQ(events[2].detail, "c");
    EXPECT_EQ(rec.size(), 3u);
    EXPECT_EQ(rec.dropped(), 0u);
    EXPECT_EQ(rec.totalRecorded(), 3u);
}

TEST(FlightRecorder, RingWrapsKeepingNewestAndCountsDrops) {
    FlightRecorder rec(/*capacity=*/4);
    for (int i = 0; i < 10; ++i) {
        rec.record(FlightKind::LogLine, "c", "event-" + std::to_string(i));
    }
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.dropped(), 6u);
    EXPECT_EQ(rec.totalRecorded(), 10u);

    const std::vector<FlightEvent> events = rec.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // Oldest-retained first, newest last; seq keeps counting past the wrap.
    EXPECT_EQ(events.front().seq, 7u);
    EXPECT_EQ(events.front().detail, "event-6");
    EXPECT_EQ(events.back().seq, 10u);
    EXPECT_EQ(events.back().detail, "event-9");
}

TEST(FlightRecorder, DisabledRecorderRecordsNothing) {
    FlightRecorder rec(/*capacity=*/8, /*enabled=*/false);
    rec.record(FlightKind::Alarm, "rp", "ignored");
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.totalRecorded(), 0u);

    rec.setEnabled(true);
    rec.record(FlightKind::Alarm, "rp", "kept");
    EXPECT_EQ(rec.size(), 1u);
}

TEST(FlightRecorder, DrainReturnsEventsAndClearsRing) {
    FlightRecorder rec(/*capacity=*/4);
    for (int i = 0; i < 6; ++i) rec.record(FlightKind::LogLine, "c", std::to_string(i));
    const std::vector<FlightEvent> drained = rec.drain();
    EXPECT_EQ(drained.size(), 4u);
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.dropped(), 2u);  // drop counter survives the drain
    EXPECT_TRUE(rec.snapshot().empty());
}

TEST(FlightRecorder, ScopesNestAndCloseInLifoOrder) {
    FlightRecorder rec(/*capacity=*/16);
    {
        FlightScope outer(&rec, "soak", "run seed=7");
        {
            FlightScope inner(&rec, "soak", "round r=3");
            const std::vector<std::string> open = rec.openScopes();
            ASSERT_EQ(open.size(), 2u);
            EXPECT_EQ(open[0], "soak run seed=7");
            EXPECT_EQ(open[1], "soak round r=3");
        }
        EXPECT_EQ(rec.openScopes().size(), 1u);
    }
    EXPECT_TRUE(rec.openScopes().empty());

    const std::vector<FlightEvent> events = rec.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, FlightKind::SpanClose);
    EXPECT_EQ(events[0].detail, "round r=3");  // inner closed first
    EXPECT_EQ(events[1].detail, "run seed=7");
}

TEST(FlightRecorder, AttachMetricsCountsEventsAndDrops) {
    obs::Registry registry;
    FlightRecorder rec(/*capacity=*/2);
    rec.attachMetrics(&registry);
    rec.record(FlightKind::Alarm, "rp", "a");
    rec.record(FlightKind::Alarm, "rp", "b");
    rec.record(FlightKind::StoreCommit, "store", "c");  // overwrites one

    const obs::RegistrySnapshot snap = registry.snapshot();
    const obs::FamilySnapshot* events = snap.find("rc_flight_events_total");
    ASSERT_NE(events, nullptr);
    // Eager registration: all kinds present, including never-recorded ones.
    EXPECT_EQ(events->series.size(), obs::kFlightKindCount);
    double alarmCount = -1.0;
    double verdictCount = -1.0;
    for (const obs::SeriesSnapshot& s : events->series) {
        if (s.labels.find("alarm") != std::string::npos) alarmCount = s.value;
        if (s.labels.find("fleet-verdict") != std::string::npos) verdictCount = s.value;
    }
    EXPECT_EQ(alarmCount, 2.0);
    EXPECT_EQ(verdictCount, 0.0);
    const obs::FamilySnapshot* dropped = snap.find("rc_flight_dropped_total");
    ASSERT_NE(dropped, nullptr);
    ASSERT_EQ(dropped->series.size(), 1u);
    EXPECT_EQ(dropped->series[0].value, 1.0);
}

TEST(FlightRecorder, FlightRecordTeesIntoEnabledGlobal) {
    FlightRecorder& global = FlightRecorder::global();
    global.clear();
    FlightRecorder local(/*capacity=*/8);

    // Global disabled: only the local recorder sees the event.
    obs::flightRecord(&local, FlightKind::Alarm, "rp", "one");
    EXPECT_EQ(local.size(), 1u);
    EXPECT_EQ(global.size(), 0u);

    global.setEnabled(true);
    obs::flightRecord(&local, FlightKind::Alarm, "rp", "two");
    EXPECT_EQ(local.size(), 2u);
    EXPECT_EQ(global.size(), 1u);
    global.setEnabled(false);
    global.clear();
}

TEST(Postmortem, BundleRoundTripsThroughParse) {
    obs::Registry registry;
    registry.counter("rc_test_ops_total", "ops").inc(3);
    registry.gauge("rc_test_depth", "depth").set(7);
    obs::Histogram& h = registry.histogram("rc_test_lat_seconds", "lat");
    h.observe(0.001);
    h.observe(0.5);

    FlightRecorder rec(/*capacity=*/8);
    FlightScope scope(&rec, "soak", "run seed=1");
    rec.record(FlightKind::InvariantFail, "soak", "round 3: I2 violated");

    const std::string text = obs::buildPostmortem(
        rec, &registry, "invariant-fail", {{"seed", "1"}, {"round", "3"}});
    const obs::PostmortemBundle bundle = obs::parsePostmortem(text);

    EXPECT_EQ(bundle.version, 1);
    EXPECT_EQ(bundle.trigger, "invariant-fail");
    ASSERT_EQ(bundle.context.size(), 2u);
    EXPECT_EQ(bundle.context[0].first, "seed");
    EXPECT_EQ(bundle.context[0].second, "1");
    ASSERT_EQ(bundle.openScopes.size(), 1u);
    EXPECT_EQ(bundle.openScopes[0], "soak run seed=1");
    ASSERT_EQ(bundle.events.size(), 1u);
    EXPECT_EQ(bundle.events[0].kind, FlightKind::InvariantFail);
    EXPECT_EQ(bundle.events[0].detail, "round 3: I2 violated");
    EXPECT_EQ(bundle.droppedEvents, 0u);

    // Metrics digest: counters and gauges in full, histograms as _count
    // only (bucket shapes depend on clock interleaving; counts do not).
    bool sawCounter = false, sawGauge = false, sawHistCount = false, sawBucket = false;
    for (const std::string& row : bundle.metrics) {
        if (row.find("rc_test_ops_total") != std::string::npos) sawCounter = true;
        if (row.find("rc_test_depth") != std::string::npos) sawGauge = true;
        if (row.find("rc_test_lat_seconds_count") != std::string::npos) sawHistCount = true;
        if (row.find("_bucket") != std::string::npos) sawBucket = true;
    }
    EXPECT_TRUE(sawCounter);
    EXPECT_TRUE(sawGauge);
    EXPECT_TRUE(sawHistCount);
    EXPECT_FALSE(sawBucket);
}

TEST(Postmortem, ParseRejectsMalformedInput) {
    EXPECT_THROW(obs::parsePostmortem(""), ParseError);
    EXPECT_THROW(obs::parsePostmortem("not a bundle\n"), ParseError);
    FlightRecorder rec(4);
    std::string text = obs::buildPostmortem(rec, nullptr, "t", {});
    text.resize(text.size() / 2);  // truncation must not parse
    EXPECT_THROW(obs::parsePostmortem(text), ParseError);
}

TEST(Postmortem, RenderFlightEventsIsStable) {
    FlightRecorder rec(4);
    rec.record(FlightKind::CrashRealized, "soak", "crash=1 round=5");
    const std::string rendered = obs::renderFlightEvents(rec.snapshot());
    EXPECT_EQ(rendered, "evt: seq=1 kind=crash-realized comp=soak | crash=1 round=5\n");
}

// --- determinism: same seed => byte-identical bundles ----------------------

sim::SoakConfig forcedSoakConfig(std::uint64_t seed) {
    sim::SoakConfig cfg;
    cfg.seed = seed;
    cfg.rounds = 12;
    cfg.forceInvariantFail = true;
    return cfg;
}

TEST(FlightDeterminism, ForcedSoakFailureCapturesParseableBundle) {
    const sim::SoakResult r = sim::runSoak(forcedSoakConfig(5));
    EXPECT_FALSE(r.passed);
    ASSERT_FALSE(r.postmortems.empty());
    const obs::CapturedBundle& b = r.postmortems.back();
    EXPECT_EQ(b.trigger, "invariant-fail");
    const obs::PostmortemBundle parsed = obs::parsePostmortem(b.bytes);
    EXPECT_EQ(parsed.trigger, "invariant-fail");
    EXPECT_FALSE(parsed.events.empty());
}

TEST(FlightDeterminism, SameSeedSoakBundlesAreByteIdentical) {
    const sim::SoakResult a = sim::runSoak(forcedSoakConfig(7));
    const sim::SoakResult b = sim::runSoak(forcedSoakConfig(7));
    ASSERT_EQ(a.postmortems.size(), b.postmortems.size());
    ASSERT_FALSE(a.postmortems.empty());
    for (std::size_t i = 0; i < a.postmortems.size(); ++i) {
        EXPECT_EQ(a.postmortems[i].label, b.postmortems[i].label);
        EXPECT_EQ(a.postmortems[i].bytes, b.postmortems[i].bytes) << "bundle " << i;
    }
}

TEST(FlightDeterminism, CrashSoakCapturesCrashRealizedBundles) {
    sim::SoakConfig cfg;
    cfg.seed = 3;
    cfg.rounds = 16;
    cfg.crashEvery = 4;
    const sim::SoakResult a = sim::runSoak(cfg);
    const sim::SoakResult b = sim::runSoak(cfg);
    ASSERT_FALSE(a.postmortems.empty());
    bool sawCrash = false;
    for (const obs::CapturedBundle& bundle : a.postmortems) {
        if (bundle.trigger == "crash-realized") sawCrash = true;
        EXPECT_NO_THROW(obs::parsePostmortem(bundle.bytes));
    }
    EXPECT_TRUE(sawCrash);
    ASSERT_EQ(a.postmortems.size(), b.postmortems.size());
    for (std::size_t i = 0; i < a.postmortems.size(); ++i) {
        EXPECT_EQ(a.postmortems[i].bytes, b.postmortems[i].bytes) << "bundle " << i;
    }
}

TEST(FlightDeterminism, SameSeedSweepRecorderStreamsMatch) {
    sim::SweepConfig cfg;
    cfg.seed = 2;
    cfg.rounds = 3;
    obs::FlightRecorder recA(FlightRecorder::kDefaultCapacity);
    obs::FlightRecorder recB(FlightRecorder::kDefaultCapacity);
    sim::SweepConfig cfgA = cfg;
    cfgA.recorder = &recA;
    sim::SweepConfig cfgB = cfg;
    cfgB.recorder = &recB;
    const sim::SweepResult a = sim::runCrashSweep(cfgA);
    const sim::SweepResult b = sim::runCrashSweep(cfgB);
    EXPECT_TRUE(a.passed);
    EXPECT_TRUE(b.passed);
    EXPECT_GT(recA.totalRecorded(), 0u);  // every fired crash is an event
    EXPECT_EQ(obs::renderFlightEvents(recA.snapshot()),
              obs::renderFlightEvents(recB.snapshot()));
}

TEST(FlightDeterminism, FleetBundleBytesIdenticalAtEveryPoolSize) {
    // A member crashed at epoch 0 with no rejoin plus a stalled member:
    // deterministic verdict traffic and store/alarm hooks from the
    // parallel phase, reassembled in member order. The recorder stream —
    // and therefore a bundle built from it — must not depend on the pool.
    std::string reference;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        rc::parallel::Pool pool(threads);
        obs::FlightRecorder rec(FlightRecorder::kDefaultCapacity);
        obs::Registry registry;
        fleet::FleetConfig cfg;
        cfg.seed = 11;
        cfg.members = 5;
        cfg.quorum = 3;
        cfg.epochs = 12;
        cfg.faulty = fleet::MemberFaultSpec::parseSet("1:crash:3:4,2:stall:6");
        cfg.pool = &pool;
        cfg.recorder = &rec;
        cfg.registry = &registry;
        const fleet::FleetResult r = fleet::runFleet(cfg);
        EXPECT_TRUE(r.passed) << (r.violations.empty() ? "" : r.violations.front());
        const std::string bundle = obs::buildPostmortem(rec, &registry, "test", {});
        if (reference.empty()) {
            reference = bundle;
        } else {
            EXPECT_EQ(bundle, reference) << "pool size " << threads;
        }
    }
    EXPECT_FALSE(reference.empty());
}

TEST(FlightDeterminism, PassingFleetCapturesNoBundles) {
    // Bundles are a failure artifact: a clean run must carry none.
    fleet::FleetConfig cfg;
    cfg.seed = 4;
    cfg.members = 3;
    cfg.quorum = 2;
    cfg.epochs = 6;
    const fleet::FleetResult r = fleet::runFleet(cfg);
    EXPECT_TRUE(r.passed) << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_TRUE(r.postmortems.empty());
}

}  // namespace
}  // namespace rpkic
