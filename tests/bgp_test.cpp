// BGP substrate: topology, propagation, policy-based selection, and the
// Table-3 interactions between local policy, hijacks, and RPKI
// manipulation.
#include "bgp/bgp.hpp"

#include <gtest/gtest.h>

#include "detector/validity_index.hpp"

namespace rpkic {
namespace {

using bgp::Announcement;
using bgp::AsGraph;
using bgp::HijackScenario;
using bgp::LocalPolicy;
using bgp::RoutingSim;
using bgp::runScenario;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

/// Line topology 1 - 2 - 3 - 4 - 5: victim at 1, attacker at 5.
AsGraph lineGraph() {
    AsGraph g;
    for (Asn a = 1; a < 5; ++a) g.addEdge(a, a + 1);
    return g;
}

bgp::Classifier classifierFor(std::shared_ptr<PrefixValidityIndex> idx) {
    return [idx](const Route& r) { return idx->classify(r); };
}

TEST(AsGraph, DistancesAndNeighbors) {
    const AsGraph g = lineGraph();
    EXPECT_EQ(g.nodeCount(), 5u);
    const auto dist = g.distancesFrom(1);
    EXPECT_EQ(dist.at(1), 0);
    EXPECT_EQ(dist.at(5), 4);
    EXPECT_EQ(g.neighbors(3).size(), 2u);
    EXPECT_TRUE(g.neighbors(99).empty());
}

TEST(AsGraph, RandomTopologyConnected) {
    Rng rng(5);
    const AsGraph g = AsGraph::randomTopology(200, 2, rng);
    EXPECT_EQ(g.nodeCount(), 200u);
    EXPECT_EQ(g.distancesFrom(1).size(), 200u) << "graph must be connected";
}

TEST(Bgp, ShortestPathWinsWithoutRpki) {
    const AsGraph g = lineGraph();
    auto idx = std::make_shared<PrefixValidityIndex>(RpkiState{});
    RoutingSim sim(g, LocalPolicy::AcceptAll, classifierFor(idx));
    const std::vector<Announcement> anns = {{pfx("10.0.0.0/16"), 1}, {pfx("10.0.0.0/16"), 5}};
    sim.announce(anns);
    // AS2 is nearer to AS1; AS4 nearer to AS5.
    EXPECT_EQ(sim.routeForPrefix(2, pfx("10.0.0.0/16"))->origin, 1u);
    EXPECT_EQ(sim.routeForPrefix(4, pfx("10.0.0.0/16"))->origin, 5u);
}

TEST(Bgp, LongestPrefixMatchForwarding) {
    const AsGraph g = lineGraph();
    auto idx = std::make_shared<PrefixValidityIndex>(RpkiState{});
    RoutingSim sim(g, LocalPolicy::AcceptAll, classifierFor(idx));
    const std::vector<Announcement> anns = {{pfx("10.0.0.0/16"), 1}, {pfx("10.0.7.0/24"), 5}};
    sim.announce(anns);
    // Traffic for the /24 follows the more specific route even though the
    // /16 is closer.
    const auto d = sim.forwardingDecision(2, pfx("10.0.7.0/24"));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->origin, 5u);
    const auto d2 = sim.forwardingDecision(2, pfx("10.0.8.0/24"));
    ASSERT_TRUE(d2.has_value());
    EXPECT_EQ(d2->origin, 1u);
}

// --- Table 3, row by row ----------------------------------------------------

struct Table3Fixture {
    AsGraph graph = lineGraph();
    // ROA authorizes the victim (AS 1) for 10.0.0.0/16 only (maxLength 16).
    std::shared_ptr<PrefixValidityIndex> withRoa = std::make_shared<PrefixValidityIndex>(
        RpkiState({{pfx("10.0.0.0/16"), 16, 1}}));
    // Manipulated RPKI: the victim's ROA was whacked and a covering ROA
    // for someone else (AS 9) exists, so the victim's route is INVALID.
    std::shared_ptr<PrefixValidityIndex> whacked = std::make_shared<PrefixValidityIndex>(
        RpkiState({{pfx("10.0.0.0/12"), 12, 9}}));
};

TEST(Table3, DropInvalidStopsPrefixHijack) {
    Table3Fixture f;
    const HijackScenario s{pfx("10.0.0.0/16"), 1, pfx("10.0.0.0/16"), 5, pfx("10.0.1.0/24")};
    const double reached =
        runScenario(f.graph, LocalPolicy::DropInvalid, classifierFor(f.withRoa), s);
    EXPECT_DOUBLE_EQ(reached, 1.0) << "hijacker's route is invalid and dropped everywhere";
}

TEST(Table3, DropInvalidStopsSubprefixHijack) {
    Table3Fixture f;
    const HijackScenario s{pfx("10.0.0.0/16"), 1, pfx("10.0.1.0/24"), 5, pfx("10.0.1.0/24")};
    const double reached =
        runScenario(f.graph, LocalPolicy::DropInvalid, classifierFor(f.withRoa), s);
    EXPECT_DOUBLE_EQ(reached, 1.0)
        << "the /24 is invalid (covered by the ROA, maxLength 16) and dropped";
}

TEST(Table3, DeprefInvalidStopsPrefixHijackButNotSubprefix) {
    Table3Fixture f;
    const HijackScenario samePrefix{pfx("10.0.0.0/16"), 1, pfx("10.0.0.0/16"), 5,
                                    pfx("10.0.1.0/24")};
    EXPECT_DOUBLE_EQ(
        runScenario(f.graph, LocalPolicy::DeprefInvalid, classifierFor(f.withRoa), samePrefix),
        1.0)
        << "valid route preferred over invalid for the same prefix";

    const HijackScenario subprefix{pfx("10.0.0.0/16"), 1, pfx("10.0.1.0/24"), 5,
                                   pfx("10.0.1.0/24")};
    EXPECT_DOUBLE_EQ(
        runScenario(f.graph, LocalPolicy::DeprefInvalid, classifierFor(f.withRoa), subprefix),
        0.0)
        << "subprefix hijacks remain possible: longest-prefix-match wins";
}

TEST(Table3, DropInvalidTakesWhackedPrefixOffline) {
    Table3Fixture f;
    // No attacker; the RPKI was manipulated so the victim's route is invalid.
    const HijackScenario s{pfx("10.0.0.0/16"), 1, std::nullopt, 0, pfx("10.0.1.0/24")};
    EXPECT_EQ(f.whacked->classify({pfx("10.0.0.0/16"), 1}), RouteValidity::Invalid);
    const double reached =
        runScenario(f.graph, LocalPolicy::DropInvalid, classifierFor(f.whacked), s);
    EXPECT_DOUBLE_EQ(reached, 0.0) << "prefix goes offline";
}

TEST(Table3, DeprefInvalidKeepsWhackedPrefixOnline) {
    Table3Fixture f;
    const HijackScenario s{pfx("10.0.0.0/16"), 1, std::nullopt, 0, pfx("10.0.1.0/24")};
    const double reached =
        runScenario(f.graph, LocalPolicy::DeprefInvalid, classifierFor(f.whacked), s);
    EXPECT_DOUBLE_EQ(reached, 1.0) << "invalid route still selected when it is the only one";
}

TEST(Table3, AcceptAllVulnerableToHijack) {
    Table3Fixture f;
    const HijackScenario s{pfx("10.0.0.0/16"), 1, pfx("10.0.0.0/16"), 5, pfx("10.0.1.0/24")};
    const double reached =
        runScenario(f.graph, LocalPolicy::AcceptAll, classifierFor(f.withRoa), s);
    EXPECT_LT(reached, 1.0) << "without RPKI enforcement, part of the topology is hijacked";
    EXPECT_GT(reached, 0.0);
}

TEST(Bgp, MixedPolicyDependence) {
    // §3.1: availability at one router depends on policies at others — a
    // depref-invalid AS behind a drop-invalid chokepoint loses the route.
    // Here every AS drops invalid; the depref observer (modeled by asking
    // for the route at the far end) has nothing to fall back on.
    Table3Fixture f;
    RoutingSim sim(f.graph, LocalPolicy::DropInvalid, classifierFor(f.whacked));
    const std::vector<Announcement> anns = {{pfx("10.0.0.0/16"), 1}};
    sim.announce(anns);
    EXPECT_EQ(sim.routeForPrefix(5, pfx("10.0.0.0/16")), nullptr);
}

}  // namespace
}  // namespace rpkic
