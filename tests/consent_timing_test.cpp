// Appendix C: timing of bulk updates — fast subtree creation/deletion,
// slow (ts-per-level) broadening and narrowing, the broadened-too-early
// race that produces a false child-too-broad impression at a lagging
// relying party, and how the ts wait prevents it.
#include <gtest/gtest.h>

#include "consent/bulk.hpp"
#include "rpki/chaos.hpp"
#include "rp/relying_party.hpp"

namespace rpkic {
namespace {

using consent::Authority;
using consent::AuthorityDirectory;
using consent::AuthorityOptions;
using consent::BulkReport;
using rp::AlarmType;
using rp::RelyingParty;
using rp::RpOptions;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

struct Fixture {
    Repository repo;
    AuthorityDirectory dir{5, AuthorityOptions{.ts = 3, .signerHeight = 6,
                                               .manifestLifetime = 1000}};
    SimClock clock;
    Authority* root;

    Fixture() {
        root = &dir.createTrustAnchor(
            "root", ResourceSet::ofPrefixes({pfx("10.0.0.0/8"), pfx("20.0.0.0/8")}), repo,
            clock.now());
    }

    RelyingParty rp(const std::string& name) {
        return RelyingParty(name, {root->cert()}, RpOptions{.ts = 3, .tg = 12});
    }
};

TEST(Timing, NewSubtreeIsFast) {
    Fixture f;
    BulkReport report;
    Authority& leaf = consent::createChainFast(
        f.dir, *f.root, {"a", "b", "c"},
        {ResourceSet::ofPrefixes({pfx("10.0.0.0/10")}),
         ResourceSet::ofPrefixes({pfx("10.0.0.0/12")}),
         ResourceSet::ofPrefixes({pfx("10.0.0.0/14")})},
        f.repo, f.clock, &report);
    EXPECT_EQ(report.elapsed, 0);  // "no matter how deep, done quickly"
    leaf.issueRoa("r", 64500, {{pfx("10.0.0.0/14"), 24}}, f.repo, f.clock.now());

    // A relying party discovers the whole chain in ONE sync.
    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    EXPECT_EQ(alice.validRoas().size(), 1u);
    EXPECT_NE(alice.findRc(leaf.cert().uri), nullptr);
}

TEST(Timing, DeleteSubtreeIsFast) {
    Fixture f;
    consent::createChainFast(f.dir, *f.root, {"a", "b"},
                             {ResourceSet::ofPrefixes({pfx("10.0.0.0/10")}),
                              ResourceSet::ofPrefixes({pfx("10.0.0.0/12")})},
                             f.repo, f.clock);
    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    const BulkReport report = consent::deleteSubtreeFast(f.dir, *f.root, "a", f.repo, f.clock);
    EXPECT_EQ(report.elapsed, 0);
    EXPECT_EQ(report.manifestUpdates, 1u);  // all .deads in one update

    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    EXPECT_EQ(alice.findRc(f.dir.get("a").cert().uri)->status, rp::RcStatus::NoLongerValid);
    EXPECT_EQ(alice.findRc(f.dir.get("b").cert().uri)->status, rp::RcStatus::NoLongerValid);
}

TEST(Timing, BroadenChainWaitsTsPerLevel) {
    Fixture f;
    consent::createChainFast(f.dir, *f.root, {"a", "b"},
                             {ResourceSet::ofPrefixes({pfx("10.0.0.0/10")}),
                              ResourceSet::ofPrefixes({pfx("10.0.0.0/12")})},
                             f.repo, f.clock);
    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    const ResourceSet added = ResourceSet::ofPrefixes({pfx("20.0.0.0/12")});
    const Time start = f.clock.now();
    const BulkReport report =
        consent::broadenChainTopDown(f.dir, *f.root, {"a", "b"}, added, f.repo, f.clock);
    EXPECT_EQ(report.elapsed, 2 * 3);  // two levels, ts = 3 each
    EXPECT_EQ(f.clock.now(), start + 6);

    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    EXPECT_TRUE(
        alice.findRc(f.dir.get("b").cert().uri)->cert.resources.containsPrefix(pfx("20.0.0.0/12")));
    // The leaf can now use the new space.
    f.dir.get("b").issueRoa("new", 64501, {{pfx("20.0.0.0/12"), 24}}, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u);
}

TEST(Timing, InheritChainBroadensWithoutWaits) {
    Fixture f;
    consent::createChainFast(f.dir, *f.root, {"a", "b"},
                             {ResourceSet::ofPrefixes({pfx("10.0.0.0/10")}),
                              ResourceSet::inherit()},
                             f.repo, f.clock);
    const BulkReport report = consent::broadenChainTopDown(
        f.dir, *f.root, {"a", "b"}, ResourceSet::ofPrefixes({pfx("20.0.0.0/12")}), f.repo,
        f.clock);
    // Only "a" needs an explicit broadening + wait; "b" inherits.
    EXPECT_EQ(report.elapsed, 3);
    EXPECT_EQ(report.manifestUpdates, 1u);
}

TEST(Timing, NarrowChainBottomUpWithConsent) {
    // Manual bottom-up narrowing with the relying party syncing within ts
    // at every step, as the paper's timing model requires.
    Fixture f;
    consent::createChainFast(f.dir, *f.root, {"a", "b"},
                             {ResourceSet::ofPrefixes({pfx("10.0.0.0/10")}),
                              ResourceSet::ofPrefixes({pfx("10.0.0.0/12")})},
                             f.repo, f.clock);
    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    const ResourceSet removed = ResourceSet::ofPrefixes({pfx("10.0.0.0/14")});

    // Step 1 (deepest first): a narrows b, with b's consent.
    f.clock.advance(1);
    Authority& a = f.dir.get("a");
    Authority& b = f.dir.get("b");
    const auto deadsB = f.dir.collectNarrowingConsent(b, removed);
    a.narrowChild("b", removed, deadsB, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");

    // Wait ts, then step 2: root narrows a. b no longer overlaps the
    // removed space, so only a consents — and Alice, being in sync, agrees.
    f.clock.advance(f.dir.options().ts);
    const auto deadsA = f.dir.collectNarrowingConsent(a, removed);
    EXPECT_EQ(deadsA.size(), 1u);
    f.root->narrowChild("a", removed, deadsA, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    EXPECT_FALSE(
        alice.findRc(b.cert().uri)->cert.resources.containsPrefix(pfx("10.0.0.0/14")));
    EXPECT_TRUE(alice.sawDeadForResources(b.cert().uri, removed));
}

TEST(Timing, NarrowChainHelperAndTheLateRpCaveat) {
    // The bulk helper performs the same steps with ts waits. A relying
    // party that does NOT keep up (syncing only at the end, > ts late)
    // processes the root's chain before the child's point and cannot yet
    // know the descendant consented — exactly the false-alarm case the
    // paper warns about ("Otherwise, she may raise false alarms when
    // authorities don't misbehave", §5.4).
    Fixture f;
    consent::createChainFast(f.dir, *f.root, {"a", "b"},
                             {ResourceSet::ofPrefixes({pfx("10.0.0.0/10")}),
                              ResourceSet::ofPrefixes({pfx("10.0.0.0/12")})},
                             f.repo, f.clock);
    RelyingParty lateRp = f.rp("late");
    lateRp.sync(f.repo.snapshot(), f.clock.now());

    const ResourceSet removed = ResourceSet::ofPrefixes({pfx("10.0.0.0/14")});
    const BulkReport report =
        consent::narrowChainBottomUp(f.dir, *f.root, {"a", "b"}, removed, f.repo, f.clock);
    EXPECT_EQ(report.elapsed, 2 * 3);
    EXPECT_EQ(report.manifestUpdates, 2u);

    lateRp.sync(f.repo.snapshot(), f.clock.now());  // 2*ts late: out of window
    EXPECT_TRUE(lateRp.alarms().has(AlarmType::UnilateralRevocation))
        << "a relying party violating its ts sync obligation may raise false alarms";

    // A fresh relying party (initial sync of the final state) is clean.
    RelyingParty fresh = f.rp("fresh");
    fresh.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(fresh.alarms().count(), 0u)
        << (fresh.alarms().count() ? fresh.alarms().all()[0].str() : "");
    EXPECT_FALSE(fresh.findRc(f.dir.get("b").cert().uri)
                     ->cert.resources.containsPrefix(pfx("10.0.0.0/14")));
}

TEST(Timing, BroadenedTooEarlyRaceConfusesLaggingRp) {
    // The race Appendix C's ts wait prevents: the child uses broadened
    // space while a relying party still holds the parent's OLD state. The
    // child's new RC appears too broad from that stale viewpoint.
    Fixture f;
    consent::createChainFast(f.dir, *f.root, {"a", "b"},
                             {ResourceSet::ofPrefixes({pfx("10.0.0.0/10")}),
                              ResourceSet::ofPrefixes({pfx("10.0.0.0/12")})},
                             f.repo, f.clock);
    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());
    const Snapshot staleRoot = f.repo.snapshot();  // root's point, old resources for "a"

    // Violation: broaden a AND have a immediately broaden b (no ts wait).
    f.clock.advance(1);
    const ResourceSet added = ResourceSet::ofPrefixes({pfx("20.0.0.0/12")});
    f.root->broadenChild("a", added, f.repo, f.clock.now());
    f.dir.get("a").broadenChild("b", added, f.repo, f.clock.now());

    // Alice's fetch of the root's point is delayed (she is within ts of her
    // last sync, so this is a legal schedule): she sees the NEW "a" point
    // but the OLD root point.
    Snapshot snap = f.repo.snapshot();
    ASSERT_TRUE(serveStalePoint(snap, staleRoot, f.root->pubPointUri()));
    alice.sync(snap, f.clock.now());
    EXPECT_TRUE(alice.alarms().has(AlarmType::ChildTooBroad))
        << "the race must surface as a (false) child-too-broad impression";

    // With the proper ts discipline a fresh relying party never sees it.
    RelyingParty bob = f.rp("bob");
    bob.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_FALSE(bob.alarms().has(AlarmType::ChildTooBroad));
}

}  // namespace
}  // namespace rpkic
