// TSan acceptance target for rc::parallel (the pool-level companion to
// obs_threads_test): multiple submitter threads hammer one shared pool
// with overlapping jobs while a thread-safe observer keeps exact
// accounting. Runs in every build; CI additionally runs it under
// -DRC_SANITIZE=thread, where the job-lifetime protocol (shared-ptr jobs,
// claim-counter handoff, completion signalling) is what's under test.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace rc::parallel {
namespace {

class AtomicObserver final : public Observer {
public:
    void poolStarted(std::size_t threads) override { pools_.fetch_add(threads); }
    void taskEnqueued(std::size_t queueDepth) override {
        enqueued_.fetch_add(1);
        (void)queueDepth;
    }
    std::uint64_t taskStarted() override { return started_.fetch_add(1) + 1; }
    void taskFinished(std::uint64_t startToken, std::size_t queueDepth) override {
        (void)startToken;
        (void)queueDepth;
        finished_.fetch_add(1);
    }

    std::atomic<std::uint64_t> pools_{0};
    std::atomic<std::uint64_t> enqueued_{0};
    std::atomic<std::uint64_t> started_{0};
    std::atomic<std::uint64_t> finished_{0};
};

TEST(PoolThreads, ConcurrentSubmittersKeepExactAccounting) {
    constexpr std::size_t kSubmitters = 6;
    constexpr std::size_t kJobsPerSubmitter = 40;
    constexpr std::size_t kIndexesPerJob = 37;

    AtomicObserver obs;
    Pool pool(4, &obs);
    std::atomic<std::uint64_t> bodyRuns{0};

    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&] {
            for (std::size_t j = 0; j < kJobsPerSubmitter; ++j) {
                pool.parallelFor(kIndexesPerJob,
                                 [&](std::size_t) { bodyRuns.fetch_add(1); });
            }
        });
    }
    for (auto& t : submitters) t.join();

    EXPECT_EQ(bodyRuns.load(), kSubmitters * kJobsPerSubmitter * kIndexesPerJob);
    EXPECT_EQ(obs.started_.load(), kSubmitters * kJobsPerSubmitter);
    EXPECT_EQ(obs.finished_.load(), kSubmitters * kJobsPerSubmitter);
    EXPECT_EQ(obs.enqueued_.load(), kSubmitters * kJobsPerSubmitter);
}

TEST(PoolThreads, RapidTinyJobsExerciseJobRetirement) {
    // Tiny jobs maximize the window where a worker picks a job up exactly
    // as its last index completes — the historical use-after-free window.
    Pool pool(8);
    std::atomic<std::uint64_t> total{0};
    for (int round = 0; round < 3000; ++round) {
        pool.parallelFor(2, [&](std::size_t i) { total.fetch_add(i + 1); });
    }
    EXPECT_EQ(total.load(), 3000u * 3u);
}

TEST(PoolThreads, ConcurrentSubmittersWithDistinctSlotWrites) {
    // The detector's pattern: each index writes its own slot, the
    // submitter reads every slot after parallelFor returns. Completion
    // must publish the writes (done-counter release/acquire pairing).
    Pool pool(4);
    constexpr std::size_t kSubmitters = 4;
    std::vector<std::thread> submitters;
    std::atomic<int> failures{0};
    submitters.reserve(kSubmitters);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
            for (int round = 0; round < 50; ++round) {
                const std::size_t n = 64 + s;
                std::vector<std::uint64_t> slots(n, 0);
                pool.parallelFor(n, [&](std::size_t i) { slots[i] = i * 3 + 1; });
                for (std::size_t i = 0; i < n; ++i) {
                    if (slots[i] != i * 3 + 1) failures.fetch_add(1);
                }
            }
        });
    }
    for (auto& t : submitters) t.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(PoolThreads, ManyPoolsStartAndStopCleanly) {
    // Construction/destruction under churn: worker join must not race the
    // queue drain.
    for (int round = 0; round < 50; ++round) {
        Pool pool(3);
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(11, [&](std::size_t i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 55u);
    }
}

}  // namespace
}  // namespace rc::parallel
