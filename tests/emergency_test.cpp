// Paper §5.1: "During emergencies (disputes, lost/stolen keys) when it is
// impossible to obtain consent from the subject of the RC, the issuer can
// just unilaterally revoke the RC; these actions will be visible to
// relying parties, who will raise alarms and investigate the situation
// out-of-band."
//
// The design's point is not to make emergency response impossible — it is
// to make it VISIBLE. These tests pin that behaviour down.
#include <gtest/gtest.h>

#include "consent/authority.hpp"
#include "rp/relying_party.hpp"

namespace rpkic {
namespace {

using consent::Authority;
using consent::AuthorityDirectory;
using consent::AuthorityOptions;
using rp::AlarmType;
using rp::RcStatus;
using rp::RelyingParty;
using rp::RpOptions;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

TEST(Emergency, LostKeyRevocationIsPossibleAndVisible) {
    Repository repo;
    AuthorityDirectory dir(71, AuthorityOptions{.ts = 3, .signerHeight = 6,
                                                .manifestLifetime = 100});
    SimClock clock;
    Authority& rir = dir.createTrustAnchor("rir", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                           repo, clock.now());
    Authority& org = dir.createChild(rir, "org", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}),
                                     repo, clock.now());
    org.issueRoa("site", 64500, {{pfx("10.1.0.0/20"), 24}}, repo, clock.now());

    RelyingParty alice("alice", {rir.cert()}, RpOptions{.ts = 3, .tg = 6});
    alice.sync(repo.snapshot(), clock.now());

    // org's key is stolen. No .dead can be trusted from it; the RIR revokes
    // unilaterally. The operation SUCCEEDS...
    clock.advance(1);
    rir.unsafeUnilateralRevokeChild("org", repo, clock.now());
    alice.sync(repo.snapshot(), clock.now());

    // ...the compromised space is out of the valid set...
    EXPECT_TRUE(alice.validRoas().empty());
    EXPECT_EQ(alice.findRc(org.cert().uri)->status, RcStatus::NoLongerValid);

    // ...and the action is on the record: an accountable alarm that names
    // the RIR, which the RIR can answer out of band ("yes — key theft").
    const auto alarms = alice.alarms().ofType(AlarmType::UnilateralRevocation);
    ASSERT_FALSE(alarms.empty());
    EXPECT_TRUE(alarms[0].accountable);
    EXPECT_EQ(alarms[0].perpetrator, rir.cert().uri);
    EXPECT_EQ(alarms[0].victim, org.cert().uri);
}

TEST(Emergency, ReissueAfterEmergencyRestoresService) {
    Repository repo;
    AuthorityDirectory dir(72, AuthorityOptions{.ts = 3, .signerHeight = 6,
                                                .manifestLifetime = 100});
    SimClock clock;
    Authority& rir = dir.createTrustAnchor("rir", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                           repo, clock.now());
    Authority& org = dir.createChild(rir, "org", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}),
                                     repo, clock.now());
    org.issueRoa("site", 64500, {{pfx("10.1.0.0/20"), 24}}, repo, clock.now());

    RelyingParty alice("alice", {rir.cert()}, RpOptions{.ts = 3, .tg = 6});
    alice.sync(repo.snapshot(), clock.now());

    clock.advance(1);
    rir.unsafeUnilateralRevokeChild("org", repo, clock.now());
    alice.sync(repo.snapshot(), clock.now());
    ASSERT_TRUE(alice.validRoas().empty());

    // The holder comes back with a fresh key under a new name/URI and
    // reissues its ROA: service restored, the alarm remains on the record.
    clock.advance(1);
    Authority& org2 = dir.createChild(rir, "org-fresh",
                                      ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}), repo,
                                      clock.now());
    org2.issueRoa("site", 64500, {{pfx("10.1.0.0/20"), 24}}, repo, clock.now());
    const std::size_t alarmsAfterEmergency = alice.alarms().count();
    alice.sync(repo.snapshot(), clock.now());

    EXPECT_EQ(alice.validRoas().size(), 1u);
    EXPECT_EQ(alice.findRc(org2.cert().uri)->status, RcStatus::Valid);
    EXPECT_EQ(alice.alarms().count(), alarmsAfterEmergency)
        << "recovery itself raises nothing new";
}

TEST(Emergency, DisputeVsConsentAreDistinguishable) {
    // Two revocations side by side: one consensual, one not. A third party
    // reading Alice's alarm log can tell exactly which one was disputed —
    // the transparency the paper is after.
    Repository repo;
    AuthorityDirectory dir(73, AuthorityOptions{.ts = 3, .signerHeight = 6,
                                                .manifestLifetime = 100});
    SimClock clock;
    Authority& rir = dir.createTrustAnchor("rir", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                           repo, clock.now());
    Authority& good = dir.createChild(rir, "amicable",
                                      ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}), repo,
                                      clock.now());
    Authority& bad = dir.createChild(rir, "disputed",
                                     ResourceSet::ofPrefixes({pfx("10.2.0.0/16")}), repo,
                                     clock.now());

    RelyingParty alice("alice", {rir.cert()}, RpOptions{.ts = 3, .tg = 6});
    alice.sync(repo.snapshot(), clock.now());

    clock.advance(1);
    const auto deads = dir.collectRevocationConsent(good);
    rir.revokeChild("amicable", deads, repo, clock.now());
    rir.unsafeUnilateralRevokeChild("disputed", repo, clock.now());
    alice.sync(repo.snapshot(), clock.now());

    // Both are gone...
    EXPECT_EQ(alice.findRc(good.cert().uri)->status, RcStatus::NoLongerValid);
    EXPECT_EQ(alice.findRc(bad.cert().uri)->status, RcStatus::NoLongerValid);
    // ...but only the disputed one is in the alarm log.
    const auto alarms = alice.alarms().ofType(AlarmType::UnilateralRevocation);
    ASSERT_EQ(alarms.size(), 1u);
    EXPECT_EQ(alarms[0].victim, bad.cert().uri);
    // And Alice holds the consensual one's .dead as proof of the opposite.
    EXPECT_TRUE(alice.sawDeadFor(good.cert().uri, good.cert().serial));
    EXPECT_FALSE(alice.sawDeadFor(bad.cert().uri, bad.cert().serial));
}

}  // namespace
}  // namespace rpkic
