// Chaos engine + resilient sync: fault plans round-trip, the sync engine
// absorbs transient faults without alarms, Stalloris-style stale serving
// is refused and surfaces as visible staleness (never a silent validity
// revert), and the soak harness is reproducible from a serialized plan.
#include <gtest/gtest.h>

#include <set>

#include "consent/authority.hpp"
#include "rp/relying_party.hpp"
#include "rp/sync_engine.hpp"
#include "rpki/chaos.hpp"
#include "rpki/objects.hpp"
#include "sim/chaos_soak.hpp"
#include "util/errors.hpp"

namespace rpkic {
namespace {

using consent::Authority;
using consent::AuthorityDirectory;
using consent::AuthorityOptions;
using rp::AlarmType;
using rp::FetchOutcome;
using rp::PointHealth;
using rp::RelyingParty;
using rp::RpOptions;
using rp::SyncEngine;
using rp::SyncPolicy;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

// ---------------------------------------------------------------------------
// FaultPlan serialization

FaultPlan samplePlan() {
    FaultPlan plan;
    plan.seed = 42;
    plan.rounds = 30;
    plan.retryBudget = 2;
    plan.adversarialPpm = 150000;
    plan.stallHorizon = 6;
    plan.faults.push_back({FaultKind::DropFile, "rpki://org/", "r1.roa", 3, 1, 1, 0});
    plan.faults.push_back(
        {FaultKind::Corrupt, "rpki://org/", "manifest.mft", 5, 2, Fault::kAllAttempts, 17});
    plan.faults.push_back({FaultKind::Truncate, "rpki://isp/", "x.cer", 7, 1, 2, 9});
    plan.faults.push_back(
        {FaultKind::DropPoint, "rpki://isp/", "", 8, 3, Fault::kAllAttempts, 0});
    plan.faults.push_back({FaultKind::WithholdManifest, "rpki://org/", "", 9, 1, 1, 0});
    plan.faults.push_back(
        {FaultKind::ServeStale, "rpki://org/", "", 12, 4, Fault::kAllAttempts, 10});
    plan.faults.push_back({FaultKind::Flap, "rpki://isp/", "", 15, 6, Fault::kAllAttempts, 2});
    return plan;
}

TEST(FaultPlan, TextRoundTripsExactly) {
    const FaultPlan plan = samplePlan();
    const std::string text = plan.serialize();
    const FaultPlan back = FaultPlan::parse(text);
    EXPECT_EQ(back, plan);
    // Canonical: serializing again is byte-identical.
    EXPECT_EQ(back.serialize(), text);
}

TEST(FaultPlan, TlvRoundTripsExactly) {
    const FaultPlan plan = samplePlan();
    const Bytes wire = plan.encode();
    const FaultPlan back = FaultPlan::decode(ByteView(wire.data(), wire.size()));
    EXPECT_EQ(back, plan);
    EXPECT_EQ(back.encode(), wire);
}

TEST(FaultPlan, MalformedInputsRaiseParseError) {
    EXPECT_THROW((void)FaultPlan::parse("not a fault plan"), ParseError);
    EXPECT_THROW((void)FaultPlan::parse("faultplan v2 seed=1 rounds=1"), ParseError);
    EXPECT_THROW(
        (void)FaultPlan::parse(samplePlan().serialize() + "fault kind=meteor point=x\n"),
        ParseError);
    const Bytes wire = samplePlan().encode();
    for (const std::size_t cut : {std::size_t{0}, std::size_t{3}, wire.size() / 2}) {
        EXPECT_THROW((void)FaultPlan::decode(ByteView(wire.data(), cut)), ParseError);
    }
    Bytes garbled = wire;
    garbled[0] ^= 0xff;  // magic
    EXPECT_THROW((void)FaultPlan::decode(ByteView(garbled.data(), garbled.size())),
                 ParseError);
}

TEST(FaultPlan, ActivationWindows) {
    Fault f;
    f.round = 4;
    f.rounds = 2;
    f.attempts = 1;
    EXPECT_FALSE(f.activeAt(3, 0));
    EXPECT_TRUE(f.activeAt(4, 0));
    EXPECT_FALSE(f.activeAt(4, 1));  // transient: retry heals it
    EXPECT_TRUE(f.activeAt(5, 0));
    EXPECT_FALSE(f.activeAt(6, 0));
    f.attempts = Fault::kAllAttempts;
    EXPECT_TRUE(f.activeAt(5, 7));  // persistent: survives every retry
}

TEST(FaultPlan, KindTaxonomyRoundTripsThroughTheSentinel) {
    // Every kind up to the kLast sentinel must have a unique name that
    // parses back — adding a kind without wiring it can no longer pass.
    std::set<std::string> names;
    for (int k = 0; k <= static_cast<int>(FaultKind::kLast); ++k) {
        const FaultKind kind = static_cast<FaultKind>(k);
        const std::string name{toString(kind)};
        EXPECT_NE(name, "?") << "kind " << k << " missing from toString";
        EXPECT_TRUE(names.insert(name).second) << "duplicate kind name: " << name;
        EXPECT_EQ(faultKindFromString(name), kind);
    }
    // The semantic attack-zoo kinds are part of the taxonomy.
    EXPECT_EQ(names.count("oversized-object"), 1u);
    EXPECT_EQ(names.count("inject-junk"), 1u);
    EXPECT_EQ(names.count("chain-graft"), 1u);
    EXPECT_THROW((void)faultKindFromString("meteor"), ParseError);
}

TEST(FaultPlan, PackFieldRoundTripsAndLegacyPlansStillParse) {
    FaultPlan plan = samplePlan();
    plan.pack = "stalloris-drain";
    plan.faults.push_back({FaultKind::OversizedObject, "rpki://org/", "manifest.mft", 4, 2,
                           Fault::kAllAttempts, 4096});
    plan.faults.push_back(
        {FaultKind::InjectJunk, "rpki://org/", "junk.bin", 5, 1, Fault::kAllAttempts, 64});
    plan.faults.push_back(
        {FaultKind::ChainGraft, "rpki://org/", "manifest.7.mft", 6, 1, Fault::kAllAttempts, 6});
    const std::string text = plan.serialize();
    EXPECT_NE(text.find("pack=stalloris-drain"), std::string::npos);
    EXPECT_EQ(FaultPlan::parse(text), plan);
    const Bytes wire = plan.encode();
    EXPECT_EQ(FaultPlan::decode(ByteView(wire.data(), wire.size())), plan);
    // A pack-free plan never mentions pack=, so pre-attack-zoo plan files
    // keep round-tripping byte-identically.
    EXPECT_EQ(samplePlan().serialize().find("pack="), std::string::npos);
    EXPECT_EQ(FaultPlan::parse(samplePlan().serialize()).pack, "");
}

// ---------------------------------------------------------------------------
// Per-RP sub-seeding (fleet members must never alias fault plans)

TEST(MemberSeed, GridOfDerivedSeedsIsCollisionFree) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t master = 0; master < 64; ++master) {
        for (std::uint32_t rp = 0; rp < 64; ++rp) {
            EXPECT_TRUE(seen.insert(deriveMemberSeed(master, rp)).second)
                << "master=" << master << " rp=" << rp;
        }
    }
    // Derived seeds never collide with their own master either.
    for (std::uint64_t master = 0; master < 64; ++master) {
        for (std::uint32_t rp = 0; rp < 64; ++rp) {
            EXPECT_NE(deriveMemberSeed(master, rp), master);
        }
    }
}

TEST(MemberSeed, AdjacentMembersGetIndependentStreams) {
    // The classic aliasing hazard: seed+i for member i makes member 1 of
    // master s replay member 0 of master s+1. The mixed derivation breaks
    // that, and the resulting RNG streams diverge immediately.
    EXPECT_NE(deriveMemberSeed(100, 1), deriveMemberSeed(101, 0));
    Rng a(deriveMemberSeed(7, 0));
    Rng b(deriveMemberSeed(7, 1));
    bool diverged = false;
    for (int i = 0; i < 8; ++i) diverged = diverged || a.nextU64() != b.nextU64();
    EXPECT_TRUE(diverged);
}

TEST(MemberSeed, DerivationIsDeterministic) {
    EXPECT_EQ(deriveMemberSeed(42, 3), deriveMemberSeed(42, 3));
}

// ---------------------------------------------------------------------------
// SyncEngine under scheduled faults

struct World {
    Repository repo;
    AuthorityDirectory dir{121,
                           AuthorityOptions{.ts = 4, .signerHeight = 6,
                                            .manifestLifetime = 1000}};
    SimClock clock;
    Authority* root;
    Authority* org;

    World() {
        root = &dir.createTrustAnchor("root", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                      repo, clock.now());
        org = &dir.createChild(*root, "org", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}),
                               repo, clock.now());
        org->issueRoa("r1", 64500, {{pfx("10.1.0.0/20"), 24}}, repo, clock.now());
    }
};

TEST(SyncEngine, TransientFaultsAreAbsorbedWithoutAlarms) {
    World w;
    RepositorySource honest(w.repo);
    ChaosSource chaos(honest, FaultPlan{});
    const std::string orgPoint = w.org->cert().pubPointUri;
    // A glitch on the first attempt of rounds 1 and 2: one retry heals it.
    chaos.addFault({FaultKind::DropPoint, orgPoint, "", 1, 2, 1, 0});

    RelyingParty alice("alice", {w.root->cert()}, RpOptions{.ts = 4, .tg = 8});
    SyncEngine engine(alice, chaos, SyncPolicy{.maxAttempts = 3});

    for (int round = 0; round < 4; ++round) {
        engine.syncRound(w.clock.now());
        // Health is a per-round verdict: Degraded while retries were
        // needed (rounds 1-2), Healthy on clean first-attempt rounds.
        EXPECT_EQ(engine.healthOf(orgPoint),
                  (round == 1 || round == 2) ? PointHealth::Degraded : PointHealth::Healthy)
            << "round " << round;
        w.clock.advance(1);
        w.org->refreshManifest(w.repo, w.clock.now());
    }

    const rp::PointTelemetry* pt = engine.telemetryFor(orgPoint);
    ASSERT_NE(pt, nullptr);
    EXPECT_EQ(pt->roundsDelivered, 4u);       // every round ultimately delivered
    EXPECT_EQ(pt->roundsFailed, 0u);
    EXPECT_EQ(pt->retries, 2u);               // one retry per glitched round
    EXPECT_EQ(pt->faultsAbsorbed, 2u);
    EXPECT_GT(pt->backoffSpent, 0);
    EXPECT_EQ(pt->rejections.at(FetchOutcome::Unreachable), 2u);
    EXPECT_EQ(engine.totals().retries, 2u);
    EXPECT_EQ(engine.totals().faultsAbsorbed, 2u);

    // Absorbed faults are invisible to the relying party: no alarms, no
    // staleness, full validity.
    EXPECT_EQ(alice.alarms().count(), 0u);
    EXPECT_FALSE(alice.isPointStale(orgPoint));
    EXPECT_EQ(alice.validRoas().size(), 1u);
}

TEST(SyncEngine, BudgetExhaustionDegradesGracefullyAndQuarantines) {
    World w;
    RepositorySource honest(w.repo);
    ChaosSource chaos(honest, FaultPlan{});
    const std::string orgPoint = w.org->cert().pubPointUri;
    // Persistently unreachable from round 1 for 4 rounds.
    chaos.addFault({FaultKind::DropPoint, orgPoint, "", 1, 4, Fault::kAllAttempts, 0});

    RelyingParty alice("alice", {w.root->cert()}, RpOptions{.ts = 4, .tg = 8});
    SyncEngine engine(alice, chaos, SyncPolicy{.maxAttempts = 3, .quarantineAfter = 3});

    engine.syncRound(w.clock.now());  // round 0: honest
    ASSERT_EQ(alice.validRoas().size(), 1u);

    std::vector<PointHealth> healthByRound;
    std::vector<std::uint64_t> attemptsByRound;
    for (int round = 1; round <= 4; ++round) {
        w.clock.advance(1);
        const rp::SyncReport rep = engine.syncRound(w.clock.now());
        healthByRound.push_back(engine.healthOf(orgPoint));
        attemptsByRound.push_back(rep.attempts);
        // §5.3.2 graceful degradation: the cache keeps serving.
        EXPECT_EQ(alice.validRoas().size(), 1u) << "round " << round;
    }
    EXPECT_EQ(healthByRound[0], PointHealth::Stale);
    EXPECT_EQ(healthByRound[1], PointHealth::Stale);
    EXPECT_EQ(healthByRound[2], PointHealth::Quarantined);
    EXPECT_EQ(healthByRound[3], PointHealth::Quarantined);
    // Quarantine cuts the attempt budget to 1 (Stalloris resource lesson).
    // Per-round attempts include root's point, delivered first try (+1).
    EXPECT_EQ(attemptsByRound[0], 4u);  // org: full budget of 3
    EXPECT_EQ(attemptsByRound[3], 2u);  // org: quarantined, 1 attempt
    // The relying party knows, via the prescribed unaccountable channel.
    EXPECT_TRUE(alice.isPointStale(orgPoint));
    EXPECT_TRUE(alice.alarms().has(AlarmType::MissingInformation));
    for (const auto& a : alice.alarms().all()) {
        EXPECT_FALSE(a.accountable) << a.str();
    }

    // Round 5: the fault window ends; one clean round recovers the point.
    w.clock.advance(1);
    engine.syncRound(w.clock.now());
    EXPECT_EQ(engine.healthOf(orgPoint), PointHealth::Degraded);  // just out of quarantine
    EXPECT_FALSE(alice.isPointStale(orgPoint));
    const rp::PointTelemetry* pt = engine.telemetryFor(orgPoint);
    ASSERT_NE(pt, nullptr);
    EXPECT_EQ(pt->recoveries, 1u);
    EXPECT_EQ(pt->longestStaleStreak, 4u);
}

TEST(SyncEngine, StallorisStaleServingIsRefusedNeverSilent) {
    // The Stalloris pattern: after the relying party has seen manifest
    // number N, the repository alternates serving the old state (a pin to
    // an earlier round) and withholding the manifest. The engine must
    // refuse both — leaving the point visibly stale with a
    // missing-information alarm — and must never silently revert validity
    // to the older object set.
    World w;
    RepositorySource honest(w.repo);
    ChaosSource chaos(honest, FaultPlan{});
    const std::string orgPoint = w.org->cert().pubPointUri;
    chaos.addFault({FaultKind::ServeStale, orgPoint, "", 2, 1, Fault::kAllAttempts, 0});
    chaos.addFault(
        {FaultKind::WithholdManifest, orgPoint, "", 3, 1, Fault::kAllAttempts, 0});
    chaos.addFault({FaultKind::ServeStale, orgPoint, "", 4, 1, Fault::kAllAttempts, 0});

    RelyingParty alice("alice", {w.root->cert()}, RpOptions{.ts = 4, .tg = 8});
    // quarantineAfter above the window so the full budget is probed.
    SyncEngine engine(alice, chaos, SyncPolicy{.maxAttempts = 2, .quarantineAfter = 5});

    engine.syncRound(w.clock.now());  // round 0: r1 valid
    ASSERT_EQ(alice.validRoas().size(), 1u);

    w.clock.advance(1);  // round 1: r2 published; engine accepts the new manifest
    w.org->issueRoa("r2", 64501, {{pfx("10.1.16.0/20"), 24}}, w.repo, w.clock.now());
    engine.syncRound(w.clock.now());
    ASSERT_EQ(alice.validRoas().size(), 2u);

    for (int round = 2; round <= 4; ++round) {  // the Stalloris rounds
        w.clock.advance(1);
        engine.syncRound(w.clock.now());
        // Never a silent revert: both ROAs stay valid from the cache.
        EXPECT_EQ(alice.validRoas().size(), 2u) << "round " << round;
        // And never silent: the point is flagged stale.
        EXPECT_TRUE(alice.isPointStale(orgPoint)) << "round " << round;
        EXPECT_EQ(engine.healthOf(orgPoint), PointHealth::Stale) << "round " << round;
    }

    const rp::PointTelemetry* pt = engine.telemetryFor(orgPoint);
    ASSERT_NE(pt, nullptr);
    EXPECT_EQ(pt->rejections.at(FetchOutcome::Regressed), 4u);        // 2 stale rounds x 2
    EXPECT_EQ(pt->rejections.at(FetchOutcome::ManifestMissing), 2u);  // withhold round
    EXPECT_TRUE(alice.alarms().has(AlarmType::MissingInformation));
    for (const auto& a : alice.alarms().all()) {
        EXPECT_FALSE(a.accountable) << a.str();  // nothing accusable happened
    }

    // Round 5: honest again; the pin is gone and the point recovers.
    w.clock.advance(1);
    engine.syncRound(w.clock.now());
    EXPECT_FALSE(alice.isPointStale(orgPoint));
    EXPECT_EQ(alice.validRoas().size(), 2u);
}

// ---------------------------------------------------------------------------
// Semantic attack-zoo kinds and overlays (the adversary packs schedule
// these; here each ChaosSource mechanism is pinned in isolation)

TEST(ChaosSource, OversizedObjectServesDeterministicGarbage) {
    World w;
    RepositorySource honest(w.repo);
    ChaosSource chaos(honest, FaultPlan{});
    const std::string orgPoint = w.org->cert().pubPointUri;
    chaos.addFault({FaultKind::OversizedObject, orgPoint, "manifest.mft", 1, 1,
                    Fault::kAllAttempts, 4096});

    const auto clean = chaos.fetchPoint(orgPoint, 0, 0);
    ASSERT_TRUE(clean.has_value());
    const auto hit = chaos.fetchPoint(orgPoint, 1, 0);
    ASSERT_TRUE(hit.has_value());
    const Bytes& blob = hit->at("manifest.mft");
    EXPECT_EQ(blob.size(), 4096u);
    EXPECT_NE(blob, clean->at("manifest.mft"));
    EXPECT_GT(chaos.faultApplications(), 0u);
    // The blob is attempt-stable and replay-stable: a fresh source running
    // the same plan serves it bit for bit.
    EXPECT_EQ(chaos.fetchPoint(orgPoint, 1, 1)->at("manifest.mft"), blob);
    RepositorySource honestAgain(w.repo);
    ChaosSource replay(honestAgain, chaos.plan());
    EXPECT_EQ(replay.fetchPoint(orgPoint, 1, 0)->at("manifest.mft"), blob);
}

TEST(ChaosSource, InjectedJunkIsAdditiveAndRaisesNothing) {
    World w;
    RepositorySource honest(w.repo);
    ChaosSource chaos(honest, FaultPlan{});
    const std::string orgPoint = w.org->cert().pubPointUri;
    chaos.addFault(
        {FaultKind::InjectJunk, orgPoint, "evil.bin", 1, 2, Fault::kAllAttempts, 64});

    const auto clean = chaos.fetchPoint(orgPoint, 0, 0);
    ASSERT_TRUE(clean.has_value());
    EXPECT_EQ(clean->count("evil.bin"), 0u);
    const auto hit = chaos.fetchPoint(orgPoint, 1, 0);
    ASSERT_TRUE(hit.has_value());
    ASSERT_EQ(hit->count("evil.bin"), 1u);
    EXPECT_EQ(hit->at("evil.bin").size(), 64u);
    for (const auto& [name, bytes] : *clean) {
        EXPECT_EQ(hit->at(name), bytes) << name << " was not left intact";
    }

    // A relying party must shrug: a file the manifest never logged is not
    // an alarm condition (the packs' built-in false-positive probe).
    RelyingParty alice("alice", {w.root->cert()}, RpOptions{.ts = 4, .tg = 8});
    SyncEngine engine(alice, chaos, SyncPolicy{.maxAttempts = 2});
    for (int round = 0; round < 3; ++round) {
        engine.syncRound(w.clock.now());
        w.clock.advance(1);
        w.org->refreshManifest(w.repo, w.clock.now());
    }
    EXPECT_EQ(alice.alarms().count(), 0u);
    EXPECT_EQ(alice.validRoas().size(), 1u);
}

TEST(ChaosSource, ChainGraftSwapsOrDropsPreservedManifests) {
    World w;
    // Two refreshes give the point preserved copies of two old manifests.
    const std::uint64_t m0 = w.org->manifestNumber();
    w.clock.advance(1);
    w.org->refreshManifest(w.repo, w.clock.now());
    w.clock.advance(1);
    w.org->refreshManifest(w.repo, w.clock.now());
    RepositorySource honest(w.repo);
    ChaosSource chaos(honest, FaultPlan{});
    const std::string orgPoint = w.org->cert().pubPointUri;
    const std::string victim = preservedManifestName(m0 + 1);

    const auto clean = chaos.fetchPoint(orgPoint, 0, 0);
    ASSERT_TRUE(clean.has_value());
    ASSERT_EQ(clean->count(victim), 1u);
    ASSERT_EQ(clean->count(preservedManifestName(m0)), 1u);

    // Graft: the preserved link's bytes become another manifest's.
    chaos.addFault(
        {FaultKind::ChainGraft, orgPoint, victim, 1, 1, Fault::kAllAttempts, m0});
    const auto grafted = chaos.fetchPoint(orgPoint, 1, 0);
    ASSERT_TRUE(grafted.has_value());
    EXPECT_EQ(grafted->at(victim), clean->at(preservedManifestName(m0)));

    // Graft from an absent source: the link is cut instead.
    chaos.addFault(
        {FaultKind::ChainGraft, orgPoint, victim, 2, 1, Fault::kAllAttempts, m0 + 900});
    const auto cut = chaos.fetchPoint(orgPoint, 2, 0);
    ASSERT_TRUE(cut.has_value());
    EXPECT_EQ(cut->count(victim), 0u);
}

TEST(ChaosSource, OverlaysReplaceDeliveryWholesaleForOneRound) {
    World w;
    RepositorySource honest(w.repo);
    ChaosSource chaos(honest, FaultPlan{});
    const std::string orgPoint = w.org->cert().pubPointUri;
    FileMap forged;
    forged["mirror.bin"] = Bytes{1, 2, 3};
    chaos.setOverlay(orgPoint, 1, forged);

    const auto before = chaos.fetchPoint(orgPoint, 0, 0);
    ASSERT_TRUE(before.has_value());
    EXPECT_EQ(before->count("mirror.bin"), 0u);
    EXPECT_EQ(chaos.overlayApplications(), 0u);

    const auto during = chaos.fetchPoint(orgPoint, 1, 0);
    ASSERT_TRUE(during.has_value());
    EXPECT_EQ(*during, forged);  // wholesale: honest files are gone
    EXPECT_EQ(chaos.overlayApplications(), 1u);
    // Attempt-granular accounting, identical content per attempt.
    EXPECT_EQ(*chaos.fetchPoint(orgPoint, 1, 1), forged);
    EXPECT_EQ(chaos.overlayApplications(), 2u);

    const auto after = chaos.fetchPoint(orgPoint, 2, 0);
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(after->count("mirror.bin"), 0u);  // scoped to its round
}

// ---------------------------------------------------------------------------
// Soak harness

TEST(ChaosSoak, SeedsPassAndPlansReplayIdentically) {
    for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
        sim::SoakConfig cfg;
        cfg.seed = seed;
        cfg.rounds = 15;
        const sim::SoakResult first = sim::runSoak(cfg);
        EXPECT_TRUE(first.passed) << "seed " << seed << ": " << first.violations.size()
                                  << " violations";
        EXPECT_GT(first.stats.faultApplications, 0u) << "chaos never fired?";

        // Text round-trip, then replay: the outcome must be identical.
        const FaultPlan parsed = FaultPlan::parse(first.plan.serialize());
        EXPECT_EQ(parsed, first.plan);
        const sim::SoakResult again = sim::runSoakWithPlan(parsed);
        EXPECT_EQ(again.passed, first.passed);
        EXPECT_EQ(again.violations, first.violations);
        EXPECT_EQ(again.stats.faultApplications, first.stats.faultApplications);
        EXPECT_EQ(again.stats.attempts, first.stats.attempts);
        EXPECT_EQ(again.stats.retries, first.stats.retries);
        EXPECT_EQ(again.stats.faultsAbsorbed, first.stats.faultsAbsorbed);
        EXPECT_EQ(again.stats.pointRoundsFailed, first.stats.pointRoundsFailed);
        EXPECT_EQ(again.stats.alarms, first.stats.alarms);
        EXPECT_EQ(again.stats.accountableAlarms, first.stats.accountableAlarms);
        EXPECT_EQ(again.stats.validRoasFinal, first.stats.validRoasFinal);
        EXPECT_EQ(again.plan, first.plan);
    }
}

TEST(ChaosSoak, RetryBudgetZeroDemonstrablyDegrades) {
    sim::SoakConfig strong;
    strong.seed = 11;
    strong.rounds = 20;
    strong.retryBudget = 2;
    sim::SoakConfig weak = strong;
    weak.retryBudget = 0;

    const sim::SoakResult s = sim::runSoak(strong);
    const sim::SoakResult w = sim::runSoak(weak);
    EXPECT_TRUE(s.passed);
    EXPECT_TRUE(w.passed);  // transparency invariants hold even weakened
    // ...but delivery is demonstrably worse: no absorbed faults, more
    // rounds on stale cache.
    EXPECT_GT(s.stats.faultsAbsorbed, 0u);
    EXPECT_EQ(w.stats.faultsAbsorbed, 0u);
    EXPECT_EQ(w.stats.retries, 0u);
    EXPECT_GT(w.stats.pointRoundsFailed, s.stats.pointRoundsFailed);
}

TEST(ChaosSoak, HonestWorldRaisesNoAccountableAlarms) {
    // Invariant I6 armed: all-honest authorities, full chaos. Every alarm
    // must stay in the unaccountable (missing-information) class.
    sim::SoakConfig cfg;
    cfg.seed = 5;
    cfg.rounds = 20;
    cfg.adversarialProbability = 0.0;
    cfg.faultRate = 0.5;
    const sim::SoakResult r = sim::runSoak(cfg);
    EXPECT_TRUE(r.passed) << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_EQ(r.stats.accountableAlarms, 0u);
    EXPECT_GT(r.stats.faultApplications, 0u);
}

}  // namespace
}  // namespace rpkic
