// RTR serving plane (src/serve/): RFC 1982 serial arithmetic, PDU
// encoders against the RFC 8210 wire layout, EpochStore publish / delta
// / eviction semantics (wraparound included), the RtrCore session state
// machine as pure bytes-in/bytes-out, and the socket-level RtrServer
// with Serial Notify fan-out. See docs/SERVING.md.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/epoch.hpp"
#include "serve/rtr.hpp"

namespace rpkic::serve {
namespace {

RoaTuple tuple(const char* prefix, std::uint8_t maxLength, Asn asn) {
    return RoaTuple{IpPrefix::parse(prefix), maxLength, asn};
}

std::shared_ptr<const RpkiState> state(std::vector<RoaTuple> tuples) {
    return std::make_shared<const RpkiState>(std::move(tuples));
}

struct ParsedPdu {
    PduHeader header;
    std::string bytes;  ///< the whole PDU, header included
};

/// Splits a response buffer into PDUs; fails the test on torn framing.
std::vector<ParsedPdu> parsePdus(const std::string& buf) {
    std::vector<ParsedPdu> pdus;
    std::size_t at = 0;
    while (at < buf.size()) {
        ParsedPdu pdu;
        EXPECT_TRUE(peekPduHeader(std::string_view(buf).substr(at), &pdu.header));
        EXPECT_GE(pdu.header.length, 8u);
        EXPECT_LE(at + pdu.header.length, buf.size());
        if (at + pdu.header.length > buf.size()) break;
        pdu.bytes = buf.substr(at, pdu.header.length);
        at += pdu.header.length;
        pdus.push_back(std::move(pdu));
    }
    return pdus;
}

std::uint32_t u32At(const std::string& bytes, std::size_t at) {
    return (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at])) << 24) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 1])) << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 2])) << 8) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 3]));
}

// ---------------------------------------------------------------------------
// RFC 1982 serial arithmetic

TEST(SerialLess, TableDriven) {
    struct Case {
        std::uint32_t a, b;
        bool aBeforeB, bBeforeA;
    };
    const Case cases[] = {
        {0, 0, false, false},
        {5, 5, false, false},
        {0, 1, true, false},
        {1, 2, true, false},
        {0, 0x7fffffffu, true, false},          // max forward distance
        {0xffffffffu, 0, true, false},          // increment wraps
        {0xfffffffeu, 2, true, false},          // delta spans the wrap
        {0x80000000u, 0x80000001u, true, false},
        {42, 42 + 0x7fffffffu, true, false},
        // The 2^31 antipode is undefined in RFC 1982: neither precedes.
        {0, 0x80000000u, false, false},
        {0x12345678u, 0x12345678u + 0x80000000u, false, false},
    };
    for (const Case& c : cases) {
        EXPECT_EQ(serialLess(c.a, c.b), c.aBeforeB) << c.a << " < " << c.b;
        EXPECT_EQ(serialLess(c.b, c.a), c.bBeforeA) << c.b << " < " << c.a;
    }
}

// ---------------------------------------------------------------------------
// PDU encoders vs the RFC 8210 wire layout

TEST(PduEncoding, HeadersRoundTripThroughPeek) {
    struct Case {
        std::string bytes;
        PduType type;
        std::uint16_t session;
        std::uint32_t length;
    };
    std::vector<Case> cases;
    {
        std::string out;
        appendSerialNotify(out, 7, 123);
        cases.push_back({out, PduType::SerialNotify, 7, 12});
    }
    {
        std::string out;
        appendSerialQuery(out, 7, 123);
        cases.push_back({out, PduType::SerialQuery, 7, 12});
    }
    {
        std::string out;
        appendResetQuery(out);
        cases.push_back({out, PduType::ResetQuery, 0, 8});
    }
    {
        std::string out;
        appendCacheResponse(out, 9);
        cases.push_back({out, PduType::CacheResponse, 9, 8});
    }
    {
        std::string out;
        appendEndOfData(out, 9, 55, 3600, 600, 7200);
        cases.push_back({out, PduType::EndOfData, 9, 24});
    }
    {
        std::string out;
        appendCacheReset(out);
        cases.push_back({out, PduType::CacheReset, 0, 8});
    }
    for (const Case& c : cases) {
        ASSERT_EQ(c.bytes.size(), c.length);
        PduHeader header;
        ASSERT_TRUE(peekPduHeader(c.bytes, &header));
        EXPECT_EQ(header.version, kRtrVersion);
        EXPECT_EQ(header.type, static_cast<std::uint8_t>(c.type));
        EXPECT_EQ(header.session, c.session);
        EXPECT_EQ(header.length, c.length);
    }
    PduHeader header;
    EXPECT_FALSE(peekPduHeader("short", &header));
}

TEST(PduEncoding, Ipv4PrefixCarriesFlagsLengthsAddressAsn) {
    std::string out;
    appendPrefixPdu(out, tuple("10.2.0.0/16", 24, 64512), true);
    ASSERT_EQ(out.size(), 20u);
    PduHeader header;
    ASSERT_TRUE(peekPduHeader(out, &header));
    EXPECT_EQ(header.type, static_cast<std::uint8_t>(PduType::Ipv4Prefix));
    EXPECT_EQ(out[8], 1);   // flags: announce
    EXPECT_EQ(out[9], 16);  // prefix length
    EXPECT_EQ(out[10], 24); // max length
    EXPECT_EQ(out[11], 0);  // zero
    EXPECT_EQ(u32At(out, 12), 0x0a020000u);
    EXPECT_EQ(u32At(out, 16), 64512u);

    std::string withdraw;
    appendPrefixPdu(withdraw, tuple("10.2.0.0/16", 24, 64512), false);
    EXPECT_EQ(withdraw[8], 0);  // flags: withdraw
}

TEST(PduEncoding, Ipv6PrefixIs32BytesWithFullAddress) {
    std::string out;
    appendPrefixPdu(out, tuple("2001:db8::/32", 48, 64513), true);
    ASSERT_EQ(out.size(), 32u);
    PduHeader header;
    ASSERT_TRUE(peekPduHeader(out, &header));
    EXPECT_EQ(header.type, static_cast<std::uint8_t>(PduType::Ipv6Prefix));
    EXPECT_EQ(out[9], 32);  // prefix length
    EXPECT_EQ(out[10], 48); // max length
    EXPECT_EQ(u32At(out, 12), 0x20010db8u);
    EXPECT_EQ(u32At(out, 16), 0u);
    EXPECT_EQ(u32At(out, 20), 0u);
    EXPECT_EQ(u32At(out, 24), 0u);
    EXPECT_EQ(u32At(out, 28), 64513u);
}

TEST(PduEncoding, ErrorReportEmbedsOffendingPduAndText) {
    std::string bad;
    appendResetQuery(bad);
    std::string out;
    appendErrorReport(out, RtrError::CorruptData, bad, "nope");
    PduHeader header;
    ASSERT_TRUE(peekPduHeader(out, &header));
    EXPECT_EQ(header.type, static_cast<std::uint8_t>(PduType::ErrorReport));
    EXPECT_EQ(header.session, static_cast<std::uint16_t>(RtrError::CorruptData));
    ASSERT_EQ(header.length, 8u + 4 + bad.size() + 4 + 4);
    EXPECT_EQ(u32At(out, 8), bad.size());
    EXPECT_EQ(out.substr(12, bad.size()), bad);
    EXPECT_EQ(u32At(out, 12 + bad.size()), 4u);
    EXPECT_EQ(out.substr(16 + bad.size()), "nope");
}

// ---------------------------------------------------------------------------
// EpochStore

TEST(EpochStore, FirstEpochIsSnapshotOnly) {
    EpochStore store;
    const auto epoch = store.publish(1, state({tuple("10.0.0.0/8", 8, 1),
                                               tuple("10.1.0.0/16", 24, 2)}));
    EXPECT_EQ(epoch->serial, 0u);
    EXPECT_EQ(epoch->round, 1u);
    EXPECT_EQ(epoch->snapshotPdus.size(), 2 * 20u);
    EXPECT_TRUE(epoch->deltaPdus.empty());
    EXPECT_EQ(store.current(), epoch);
    EXPECT_EQ(store.epochsHeld(), 1u);
    ASSERT_TRUE(store.deltasSince(0).has_value());
    EXPECT_EQ(*store.deltasSince(0), "");
}

TEST(EpochStore, DeltaAnnouncesThenWithdraws) {
    EpochStore store;
    store.publish(1, state({tuple("10.0.0.0/8", 8, 1), tuple("10.1.0.0/16", 24, 2)}));
    const auto epoch = store.publish(
        2, state({tuple("10.1.0.0/16", 24, 2), tuple("10.2.0.0/16", 16, 3)}));
    EXPECT_EQ(epoch->serial, 1u);
    EXPECT_EQ(epoch->announced, 1u);
    EXPECT_EQ(epoch->withdrawn, 1u);
    const std::vector<ParsedPdu> pdus = parsePdus(epoch->deltaPdus);
    ASSERT_EQ(pdus.size(), 2u);
    EXPECT_EQ(pdus[0].bytes[8], 1);  // announce 10.2.0.0/16 first
    EXPECT_EQ(u32At(pdus[0].bytes, 12), 0x0a020000u);
    EXPECT_EQ(pdus[1].bytes[8], 0);  // then withdraw 10.0.0.0/8
    EXPECT_EQ(u32At(pdus[1].bytes, 12), 0x0a000000u);
    EXPECT_EQ(*store.deltasSince(0), epoch->deltaPdus);
    EXPECT_EQ(*store.deltasSince(1), "");
}

TEST(EpochStore, DeltasConcatenateAcrossEpochs) {
    EpochStore store;
    store.publish(1, state({tuple("10.0.0.0/8", 8, 1)}));
    const auto e1 = store.publish(2, state({tuple("10.0.0.0/8", 8, 1),
                                            tuple("10.1.0.0/16", 24, 2)}));
    const auto e2 = store.publish(3, state({tuple("10.1.0.0/16", 24, 2)}));
    ASSERT_TRUE(store.deltasSince(0).has_value());
    EXPECT_EQ(*store.deltasSince(0), e1->deltaPdus + e2->deltaPdus);
    EXPECT_EQ(*store.deltasSince(1), e2->deltaPdus);
}

TEST(EpochStore, EvictionAndAheadSerialsForceCacheReset) {
    EpochStore::Options options;
    options.capacity = 2;
    EpochStore store(options);
    for (std::uint64_t round = 1; round <= 4; ++round) {
        store.publish(round, state({tuple("10.0.0.0/8", 8,
                                          static_cast<Asn>(round))}));
    }
    EXPECT_EQ(store.epochsHeld(), 2u);  // serials 2 and 3 survive
    EXPECT_FALSE(store.deltasSince(0).has_value());  // evicted
    EXPECT_FALSE(store.deltasSince(1).has_value());  // evicted
    EXPECT_TRUE(store.deltasSince(2).has_value());
    EXPECT_EQ(*store.deltasSince(3), "");
    EXPECT_FALSE(store.deltasSince(4).has_value());  // ahead of the store
    EXPECT_FALSE(store.deltasSince(0x90000000u).has_value());
}

TEST(EpochStore, SerialsWrapAtTwoToThe32) {
    EpochStore::Options options;
    options.firstSerial = 0xfffffffeu;
    EpochStore store(options);
    store.publish(1, state({tuple("10.0.0.0/8", 8, 1)}));
    const auto e1 = store.publish(2, state({tuple("10.0.0.0/8", 8, 1),
                                            tuple("10.1.0.0/16", 24, 2)}));
    const auto e2 = store.publish(3, state({tuple("10.1.0.0/16", 24, 2)}));
    EXPECT_EQ(e1->serial, 0xffffffffu);
    EXPECT_EQ(e2->serial, 0u);
    EXPECT_EQ(store.current()->serial, 0u);
    // A client at the pre-wrap serial still gets an incremental delta.
    ASSERT_TRUE(store.deltasSince(0xfffffffeu).has_value());
    EXPECT_EQ(*store.deltasSince(0xfffffffeu), e1->deltaPdus + e2->deltaPdus);
    EXPECT_EQ(*store.deltasSince(0xffffffffu), e2->deltaPdus);
    EXPECT_EQ(*store.deltasSince(0), "");
}

// ---------------------------------------------------------------------------
// RtrCore: bytes-in/bytes-out session semantics

TEST(RtrCore, ResetQueryGetsCacheResponseSnapshotEndOfData) {
    EpochStore store;
    const auto epoch = store.publish(1, state({tuple("10.0.0.0/8", 24, 1),
                                               tuple("2001:db8::/32", 48, 2)}));
    RtrCore core(store);
    std::string in, out;
    appendResetQuery(in);
    EXPECT_TRUE(core.consume(in, out));
    EXPECT_TRUE(in.empty());
    const std::vector<ParsedPdu> pdus = parsePdus(out);
    ASSERT_EQ(pdus.size(), 4u);  // cache response, v4 prefix, v6 prefix, EOD
    EXPECT_EQ(pdus[0].header.type, static_cast<std::uint8_t>(PduType::CacheResponse));
    EXPECT_EQ(pdus[0].header.session, store.sessionId());
    EXPECT_EQ(pdus[1].bytes + pdus[2].bytes, epoch->snapshotPdus);
    EXPECT_EQ(pdus[3].header.type, static_cast<std::uint8_t>(PduType::EndOfData));
    EXPECT_EQ(u32At(pdus[3].bytes, 8), epoch->serial);
    EXPECT_EQ(u32At(pdus[3].bytes, 12), 3600u);  // refresh advice
}

TEST(RtrCore, SerialQueryAtCurrentSerialGetsEmptyDelta) {
    EpochStore store;
    store.publish(1, state({tuple("10.0.0.0/8", 24, 1)}));
    RtrCore core(store);
    std::string in, out;
    appendSerialQuery(in, store.sessionId(), 0);
    EXPECT_TRUE(core.consume(in, out));
    const std::vector<ParsedPdu> pdus = parsePdus(out);
    ASSERT_EQ(pdus.size(), 2u);  // cache response + EOD, no prefixes
    EXPECT_EQ(pdus[0].header.type, static_cast<std::uint8_t>(PduType::CacheResponse));
    EXPECT_EQ(pdus[1].header.type, static_cast<std::uint8_t>(PduType::EndOfData));
}

TEST(RtrCore, SerialQueryBehindCurrentGetsTheDelta) {
    EpochStore store;
    store.publish(1, state({tuple("10.0.0.0/8", 24, 1)}));
    const auto e1 = store.publish(2, state({tuple("10.0.0.0/8", 24, 1),
                                            tuple("10.1.0.0/16", 24, 2)}));
    RtrCore core(store);
    std::string in, out;
    appendSerialQuery(in, store.sessionId(), 0);
    EXPECT_TRUE(core.consume(in, out));
    const std::vector<ParsedPdu> pdus = parsePdus(out);
    ASSERT_EQ(pdus.size(), 3u);
    EXPECT_EQ(pdus[1].bytes, e1->deltaPdus);
    EXPECT_EQ(u32At(pdus[2].bytes, 8), e1->serial);
}

TEST(RtrCore, EmptyStoreAnswersNoDataAvailableAndKeepsSession) {
    EpochStore store;
    RtrCore core(store);
    std::string in, out;
    appendSerialQuery(in, store.sessionId(), 0);
    EXPECT_TRUE(core.consume(in, out));  // recoverable: retry later
    std::vector<ParsedPdu> pdus = parsePdus(out);
    ASSERT_EQ(pdus.size(), 1u);
    EXPECT_EQ(pdus[0].header.type, static_cast<std::uint8_t>(PduType::ErrorReport));
    EXPECT_EQ(pdus[0].header.session, static_cast<std::uint16_t>(RtrError::NoDataAvailable));

    out.clear();
    appendResetQuery(in);
    EXPECT_TRUE(core.consume(in, out));
    pdus = parsePdus(out);
    ASSERT_EQ(pdus.size(), 1u);
    EXPECT_EQ(pdus[0].header.session, static_cast<std::uint16_t>(RtrError::NoDataAvailable));
}

TEST(RtrCore, ForeignSessionIdForcesCacheReset) {
    EpochStore store;
    store.publish(1, state({tuple("10.0.0.0/8", 24, 1)}));
    RtrCore core(store);
    std::string in, out;
    appendSerialQuery(in, static_cast<std::uint16_t>(store.sessionId() + 1), 0);
    EXPECT_TRUE(core.consume(in, out));
    const std::vector<ParsedPdu> pdus = parsePdus(out);
    ASSERT_EQ(pdus.size(), 1u);
    EXPECT_EQ(pdus[0].header.type, static_cast<std::uint8_t>(PduType::CacheReset));
}

TEST(RtrCore, ReconnectAfterEvictionResetsThenSnapshots) {
    EpochStore::Options options;
    options.capacity = 2;
    EpochStore store(options);
    for (std::uint64_t round = 1; round <= 5; ++round) {
        store.publish(round, state({tuple("10.0.0.0/8", 8,
                                          static_cast<Asn>(round))}));
    }
    RtrCore core(store);
    // The cache held serial 0, which fell off the ring while it was away.
    std::string in, out;
    appendSerialQuery(in, store.sessionId(), 0);
    EXPECT_TRUE(core.consume(in, out));
    std::vector<ParsedPdu> pdus = parsePdus(out);
    ASSERT_EQ(pdus.size(), 1u);
    EXPECT_EQ(pdus[0].header.type, static_cast<std::uint8_t>(PduType::CacheReset));
    // RFC 8210 recovery: drop state, come back with a Reset Query.
    out.clear();
    appendResetQuery(in);
    EXPECT_TRUE(core.consume(in, out));
    pdus = parsePdus(out);
    ASSERT_EQ(pdus.size(), 3u);
    EXPECT_EQ(pdus[1].bytes, store.current()->snapshotPdus);
    EXPECT_EQ(u32At(pdus[2].bytes, 8), store.current()->serial);
}

TEST(RtrCore, VersionMismatchSendsErrorReportAndCloses) {
    EpochStore store;
    RtrCore core(store);
    std::string in, out;
    appendResetQuery(in);
    in[0] = 0;  // RFC 6810 v0 speaker
    EXPECT_FALSE(core.consume(in, out));
    EXPECT_TRUE(in.empty());
    const std::vector<ParsedPdu> pdus = parsePdus(out);
    ASSERT_EQ(pdus.size(), 1u);
    EXPECT_EQ(pdus[0].header.session,
              static_cast<std::uint16_t>(RtrError::UnsupportedVersion));
}

TEST(RtrCore, ImplausibleLengthIsCorruptData) {
    EpochStore store;
    RtrCore core(store);
    for (const std::uint32_t badLength : {0u, 5u, 1u << 20}) {
        std::string in, out;
        appendResetQuery(in);
        in[4] = static_cast<char>((badLength >> 24) & 0xff);
        in[5] = static_cast<char>((badLength >> 16) & 0xff);
        in[6] = static_cast<char>((badLength >> 8) & 0xff);
        in[7] = static_cast<char>(badLength & 0xff);
        EXPECT_FALSE(core.consume(in, out)) << badLength;
        const std::vector<ParsedPdu> pdus = parsePdus(out);
        ASSERT_EQ(pdus.size(), 1u);
        EXPECT_EQ(pdus[0].header.session,
                  static_cast<std::uint16_t>(RtrError::CorruptData));
    }
}

TEST(RtrCore, WrongSizeSerialQueryIsCorruptData) {
    EpochStore store;
    RtrCore core(store);
    std::string in, out;
    appendSerialQuery(in, store.sessionId(), 0);
    in[7] = 10;       // claim 10 bytes
    in.resize(10);    // and deliver them
    EXPECT_FALSE(core.consume(in, out));
    const std::vector<ParsedPdu> pdus = parsePdus(out);
    ASSERT_EQ(pdus.size(), 1u);
    EXPECT_EQ(pdus[0].header.session, static_cast<std::uint16_t>(RtrError::CorruptData));
}

TEST(RtrCore, TruncatedPduWaitsForMoreBytes) {
    EpochStore store;
    store.publish(1, state({tuple("10.0.0.0/8", 24, 1)}));
    RtrCore core(store);
    std::string full;
    appendSerialQuery(full, store.sessionId(), 0);
    std::string in = full.substr(0, 5);  // header itself is torn
    std::string out;
    EXPECT_TRUE(core.consume(in, out));
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(in.size(), 5u);  // untouched, waiting
    in += full.substr(5, 5);   // header complete, body torn
    EXPECT_TRUE(core.consume(in, out));
    EXPECT_TRUE(out.empty());
    in += full.substr(10);     // complete
    EXPECT_TRUE(core.consume(in, out));
    EXPECT_TRUE(in.empty());
    EXPECT_FALSE(parsePdus(out).empty());
}

TEST(RtrCore, ClientErrorReportDropsSessionSilently) {
    EpochStore store;
    RtrCore core(store);
    std::string in, out;
    appendErrorReport(in, RtrError::InternalError, "", "router gave up");
    EXPECT_FALSE(core.consume(in, out));
    EXPECT_TRUE(out.empty());  // §5.10: never answer an Error Report
}

TEST(RtrCore, UnknownPduTypeIsUnsupported) {
    EpochStore store;
    RtrCore core(store);
    std::string in, out;
    appendCacheResponse(in, 1);  // a cache→router PDU arriving at the cache
    EXPECT_FALSE(core.consume(in, out));
    const std::vector<ParsedPdu> pdus = parsePdus(out);
    ASSERT_EQ(pdus.size(), 1u);
    EXPECT_EQ(pdus[0].header.session,
              static_cast<std::uint16_t>(RtrError::UnsupportedPduType));
}

TEST(RtrCore, MetersQueriesResponsesAndErrors) {
    obs::Registry registry;
    EpochStore::Options storeOptions;
    storeOptions.registry = &registry;
    EpochStore store(storeOptions);
    store.publish(1, state({tuple("10.0.0.0/8", 24, 1)}));
    store.publish(2, state({tuple("10.0.0.0/8", 24, 1), tuple("10.1.0.0/16", 24, 2)}));
    RtrCore::Options coreOptions;
    coreOptions.registry = &registry;
    RtrCore core(store, coreOptions);

    std::string in, out;
    appendResetQuery(in);
    appendSerialQuery(in, store.sessionId(), 0);
    EXPECT_TRUE(core.consume(in, out));
    out.clear();
    appendCacheReset(in);  // not a router→cache PDU: protocol error
    EXPECT_FALSE(core.consume(in, out));

    const obs::RegistrySnapshot snap = registry.snapshot();
    const obs::FamilySnapshot* queries = snap.find("rc_rtr_queries_total");
    ASSERT_NE(queries, nullptr);
    double serial = 0, reset = 0;
    for (const obs::SeriesSnapshot& s : queries->series) {
        if (s.labels.find("serial") != std::string::npos) serial = s.value;
        if (s.labels.find("reset") != std::string::npos) reset = s.value;
    }
    EXPECT_EQ(serial, 1.0);
    EXPECT_EQ(reset, 1.0);
    const obs::FamilySnapshot* published = snap.find("rc_rtr_epochs_published_total");
    ASSERT_NE(published, nullptr);
    EXPECT_EQ(published->series[0].value, 2.0);
    const obs::FamilySnapshot* errors = snap.find("rc_rtr_protocol_errors_total");
    ASSERT_NE(errors, nullptr);
    EXPECT_EQ(errors->series[0].value, 1.0);
    const obs::FamilySnapshot* deltaBytes = snap.find("rc_rtr_delta_bytes_total");
    ASSERT_NE(deltaBytes, nullptr);
    EXPECT_EQ(deltaBytes->series[0].value, 20.0);  // one announce PDU
}

// ---------------------------------------------------------------------------
// RtrServer over real sockets

/// Minimal blocking RTR client: connect, write PDUs, read exact counts.
class RtrClient {
public:
    explicit RtrClient(std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        timeval timeout{};
        timeout.tv_sec = 10;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        connected_ =
            fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    }
    ~RtrClient() {
        if (fd_ >= 0) ::close(fd_);
    }
    bool connected() const { return connected_; }

    bool sendAll(const std::string& data) {
        std::size_t sent = 0;
        while (sent < data.size()) {
            const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, 0);
            if (n <= 0) return false;
            sent += static_cast<std::size_t>(n);
        }
        return true;
    }

    /// Reads whole PDUs until End of Data / Cache Reset / Error Report
    /// (or transport error). Returns the parsed sequence.
    std::vector<ParsedPdu> readResponse() {
        std::vector<ParsedPdu> pdus;
        std::string buf;
        while (true) {
            PduHeader header;
            while (!peekPduHeader(buf, &header) || buf.size() < header.length) {
                char chunk[4096];
                const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
                if (n <= 0) return pdus;
                buf.append(chunk, static_cast<std::size_t>(n));
            }
            ParsedPdu pdu;
            pdu.header = header;
            pdu.bytes = buf.substr(0, header.length);
            buf.erase(0, header.length);
            pdus.push_back(std::move(pdu));
            const auto type = static_cast<PduType>(header.type);
            if (type == PduType::EndOfData || type == PduType::CacheReset ||
                type == PduType::ErrorReport || type == PduType::SerialNotify) {
                return pdus;
            }
        }
    }

private:
    int fd_ = -1;
    bool connected_ = false;
};

TEST(RtrServer, ServesSnapshotDeltaAndNotifyOverTcp) {
    EpochStore store;
    const auto e0 = store.publish(1, state({tuple("10.0.0.0/8", 24, 1),
                                            tuple("2001:db8::/32", 48, 2)}));
    RtrServer server(store);
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;
    ASSERT_NE(server.port(), 0);

    RtrClient client(server.port());
    ASSERT_TRUE(client.connected());

    // Cold cache: Reset Query → Cache Response + full snapshot + EOD.
    std::string query;
    appendResetQuery(query);
    ASSERT_TRUE(client.sendAll(query));
    std::vector<ParsedPdu> pdus = client.readResponse();
    ASSERT_EQ(pdus.size(), 4u);
    EXPECT_EQ(pdus[0].header.type, static_cast<std::uint8_t>(PduType::CacheResponse));
    EXPECT_EQ(pdus[1].bytes + pdus[2].bytes, e0->snapshotPdus);
    EXPECT_EQ(pdus[3].header.type, static_cast<std::uint8_t>(PduType::EndOfData));
    EXPECT_EQ(u32At(pdus[3].bytes, 8), e0->serial);

    // A new round publishes; notify() pokes every connected cache.
    const auto e1 = store.publish(2, state({tuple("10.0.0.0/8", 24, 1),
                                            tuple("10.9.0.0/16", 24, 9),
                                            tuple("2001:db8::/32", 48, 2)}));
    server.notify();
    pdus = client.readResponse();
    ASSERT_EQ(pdus.size(), 1u);
    EXPECT_EQ(pdus[0].header.type, static_cast<std::uint8_t>(PduType::SerialNotify));
    EXPECT_EQ(u32At(pdus[0].bytes, 8), e1->serial);

    // The poked cache comes back with a Serial Query and gets the delta.
    query.clear();
    appendSerialQuery(query, store.sessionId(), e0->serial);
    ASSERT_TRUE(client.sendAll(query));
    pdus = client.readResponse();
    ASSERT_EQ(pdus.size(), 3u);
    EXPECT_EQ(pdus[1].bytes, e1->deltaPdus);
    EXPECT_EQ(u32At(pdus[2].bytes, 8), e1->serial);

    EXPECT_EQ(server.sessionsOpen(), 1u);
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(RtrServer, ProtocolErrorClosesTheConnection) {
    EpochStore store;
    store.publish(1, state({tuple("10.0.0.0/8", 24, 1)}));
    RtrServer server(store);
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    RtrClient client(server.port());
    ASSERT_TRUE(client.connected());
    std::string bad;
    appendResetQuery(bad);
    bad[0] = 0;  // unsupported version
    ASSERT_TRUE(client.sendAll(bad));
    std::vector<ParsedPdu> pdus = client.readResponse();
    ASSERT_EQ(pdus.size(), 1u);
    EXPECT_EQ(pdus[0].header.type, static_cast<std::uint8_t>(PduType::ErrorReport));
    EXPECT_EQ(pdus[0].header.session,
              static_cast<std::uint16_t>(RtrError::UnsupportedVersion));
    // The server hangs up after draining the Error Report.
    EXPECT_TRUE(client.readResponse().empty());
    server.stop();
}

}  // namespace
}  // namespace rpkic::serve
