// End-to-end integration across every layer: the census model publishes a
// signed object tree; the vanilla validator extracts the valid-ROA set;
// the detector indexes and diffs it; the visualizer renders an incident;
// and the BGP substrate measures the routing impact — the full pipeline a
// monitoring deployment would run.
#include <gtest/gtest.h>

#include "bgp/bgp.hpp"
#include "detector/diff.hpp"
#include "detector/state_io.hpp"
#include "model/census.hpp"
#include "vanilla/validation.hpp"
#include "viz/prefix_tree_viz.hpp"

namespace rpkic {
namespace {

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

TEST(IntegrationPipeline, CensusToDetectorToBgp) {
    // --- 1. Build + publish + validate a scaled census ---------------------
    model::CensusConfig config;
    config.scale = 0.03;
    config.pairTarget = 600;
    config.publishBudget = 4;  // this test republishes the tree three times
    model::Census census = model::buildProductionCensus(config);
    Repository repo;
    census.tree.publish(repo, 0);
    const vanilla::Result day0 = vanilla::validateSnapshot(
        repo.snapshot(), census.tree.trustAnchors(), vanilla::Options{.now = 0});
    ASSERT_TRUE(day0.problems.empty())
        << (day0.problems.empty() ? "" : day0.problems[0].str());
    const RpkiState state0 = day0.roaState();
    ASSERT_GT(state0.size(), 10u);

    // --- 2. An incident: one leaf's ROA is whacked, a covering ROA exists --
    // Pick a leaf with a ROA and delete it after adding a covering ROA at
    // the RIR level for a different AS.
    std::string victimLeaf;
    for (const auto& name : census.tree.nodeNames()) {
        if (name.find("-org") == std::string::npos) continue;
        victimLeaf = name;  // any org leaf; the census may not have given it ROAs
        break;
    }
    ASSERT_FALSE(victimLeaf.empty());
    // Deterministic victim: issue our own ROA pair on that leaf.
    const IpPrefix victimBlock = census.tree.certOf(victimLeaf).resources.v4().empty()
                                     ? pfx("10.99.0.0/24")
                                     : [&] {
                                           const auto iv = census.tree.certOf(victimLeaf)
                                                               .resources.v4()
                                                               .intervals()
                                                               .front();
                                           return IpPrefix::v4(
                                               static_cast<std::uint32_t>(iv.lo), 24);
                                       }();
    census.tree.addRoa(victimLeaf, "victim-roa", 64999, {{victimBlock, 24}});
    IpPrefix covering = victimBlock;
    covering.length = 20;
    covering = covering.canonicalized();
    census.tree.addRoa(victimLeaf, "covering-roa", 65000, {{covering, 24}});
    census.tree.publish(repo, 1);
    const vanilla::Result day1 = vanilla::validateSnapshot(
        repo.snapshot(), census.tree.trustAnchors(), vanilla::Options{.now = 1});
    ASSERT_TRUE(day1.problems.empty());

    census.tree.deleteRoa(victimLeaf, "victim-roa");
    census.tree.publish(repo, 2);
    const vanilla::Result day2 = vanilla::validateSnapshot(
        repo.snapshot(), census.tree.trustAnchors(), vanilla::Options{.now = 2});
    ASSERT_TRUE(day2.problems.empty());

    // --- 3. Detector flags the downgrade ------------------------------------
    const PrefixValidityIndex idx1(day1.roaState());
    const PrefixValidityIndex idx2(day2.roaState());
    const DowngradeReport report = diffStates(idx1, idx2);
    EXPECT_GE(report.validToInvalidPairs, 1u);
    bool sawVictim = false;
    for (const auto& t : report.tupleTransitions) {
        if (t.route.origin == 64999 && t.after == RouteValidity::Invalid) sawVictim = true;
    }
    EXPECT_TRUE(sawVictim);

    // --- 4. Visualizer renders the incident ---------------------------------
    IpPrefix vizRoot = victimBlock;
    vizRoot.length = 18;
    vizRoot = vizRoot.canonicalized();
    const viz::PrefixTreeViz viz(idx1, idx2, viz::VizConfig{vizRoot, 6, 64999});
    EXPECT_GT(viz.countState(viz::NodeState::Invalid) +
                  viz.countState(viz::NodeState::DowngradedToInvalid),
              0u);
    EXPECT_NE(viz.renderSvg().find("</svg>"), std::string::npos);

    // --- 5. BGP impact under drop-invalid ------------------------------------
    Rng rng(5);
    const bgp::AsGraph graph = bgp::AsGraph::randomTopology(60, 2, rng);
    auto classifier = [&idx2](const Route& r) { return idx2.classify(r); };
    bgp::RoutingSim sim(graph, bgp::LocalPolicy::DropInvalid, classifier);
    const std::vector<bgp::Announcement> anns = {{victimBlock, 1}};
    // AS 1 announces the victim block, which the manipulated RPKI now
    // classifies invalid: with drop-invalid the prefix goes offline.
    sim.announce(anns);
    EXPECT_DOUBLE_EQ(sim.fractionReaching(1, victimBlock), 0.0);

    // --- 6. State round-trips through the text format -----------------------
    const RpkiState reparsed = parseStateText(stateToText(day2.roaState()));
    EXPECT_EQ(reparsed, day2.roaState());
}

}  // namespace
}  // namespace rpkic
