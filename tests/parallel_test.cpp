// rc::parallel unit tests: exactly-once index execution, ordered
// reassembly, lowest-index error semantics, observer accounting, and the
// RC_THREADS / --threads parsing policy. The cross-thread TSan stress
// lives in parallel_threads_test.cpp; the detector-level differential
// suite in detector_parallel_test.cpp.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "util/errors.hpp"

namespace rc::parallel {
namespace {

TEST(Pool, RunsEveryIndexExactlyOnce) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                      std::size_t{8}}) {
        Pool pool(threads);
        EXPECT_EQ(pool.threads(), threads);
        for (const std::size_t n :
             {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{64},
              std::size_t{1000}}) {
            std::vector<std::atomic<int>> hits(n);
            pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                             << " index=" << i;
            }
        }
    }
}

TEST(Pool, SizeOneRunsInlineOnTheCallingThread) {
    Pool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(16);
    pool.parallelFor(seen.size(), [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
    for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(Pool, ParallelMapPreservesIndexOrder) {
    Pool pool(4);
    const std::vector<std::uint64_t> out =
        pool.parallelMap<std::uint64_t>(257, [](std::size_t i) {
            return static_cast<std::uint64_t>(i) * i;
        });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], static_cast<std::uint64_t>(i) * i);
    }
}

TEST(Pool, MapReduceOrderedMatchesSequentialForNonCommutativeFold) {
    // String concatenation is order-sensitive; ordered reduction must give
    // the sequential answer at every thread count.
    std::string expected;
    for (int i = 0; i < 40; ++i) expected += std::to_string(i) + ";";
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
        Pool pool(threads);
        const std::string got = pool.mapReduceOrdered<std::string, std::string>(
            40, std::string{},
            [](std::size_t i) { return std::to_string(i) + ";"; },
            [](std::string& acc, std::string&& part) { acc += part; });
        EXPECT_EQ(got, expected) << "threads=" << threads;
    }
}

TEST(Pool, LowestIndexExceptionWinsAndAllIndicesRun) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        Pool pool(threads);
        std::atomic<std::size_t> attempts{0};
        try {
            pool.parallelFor(100, [&](std::size_t i) {
                attempts.fetch_add(1);
                if (i == 17 || i == 18 || i == 90) {
                    throw rpkic::UsageError("boom at " + std::to_string(i));
                }
            });
            FAIL() << "expected the body's exception to propagate";
        } catch (const rpkic::UsageError& e) {
            EXPECT_NE(std::string(e.what()).find("boom at 17"), std::string::npos)
                << "threads=" << threads << ": got '" << e.what() << "'";
        }
        EXPECT_EQ(attempts.load(), 100u)
            << "every index must be attempted even when some throw";
    }
}

TEST(Pool, ReusableAcrossManyJobs) {
    Pool pool(4);
    std::uint64_t total = 0;
    for (int round = 0; round < 200; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(round % 7 + 1, [&](std::size_t i) {
            sum.fetch_add(i + 1);
        });
        total += sum.load();
    }
    EXPECT_GT(total, 0u);
}

class CountingObserver final : public Observer {
public:
    void poolStarted(std::size_t threads) override { poolThreads_.store(threads); }
    void taskEnqueued(std::size_t queueDepth) override {
        enqueued_.fetch_add(1);
        lastDepth_.store(queueDepth);
    }
    std::uint64_t taskStarted() override { return started_.fetch_add(1) + 1; }
    void taskFinished(std::uint64_t startToken, std::size_t queueDepth) override {
        EXPECT_GT(startToken, 0u);
        finished_.fetch_add(1);
        lastDepth_.store(queueDepth);
    }

    std::atomic<std::size_t> poolThreads_{0};
    std::atomic<std::uint64_t> enqueued_{0};
    std::atomic<std::uint64_t> started_{0};
    std::atomic<std::uint64_t> finished_{0};
    std::atomic<std::size_t> lastDepth_{0};
};

TEST(Pool, ObserverSeesEveryJob) {
    CountingObserver obs;
    {
        Pool pool(4, &obs);
        EXPECT_EQ(obs.poolThreads_.load(), 4u);
        for (int i = 0; i < 10; ++i) {
            pool.parallelFor(32, [](std::size_t) {});
        }
    }
    EXPECT_EQ(obs.started_.load(), 10u);
    EXPECT_EQ(obs.finished_.load(), 10u);
    EXPECT_EQ(obs.enqueued_.load(), 10u);  // all 10 jobs went through the queue
    EXPECT_EQ(obs.lastDepth_.load(), 0u);  // drained when the last job finished
}

TEST(Pool, InlineJobsSkipTheQueueButStillReport) {
    CountingObserver obs;
    Pool pool(1, &obs);
    pool.parallelFor(8, [](std::size_t) {});
    EXPECT_EQ(obs.started_.load(), 1u);
    EXPECT_EQ(obs.finished_.load(), 1u);
    EXPECT_EQ(obs.enqueued_.load(), 0u);  // sequential mode never enqueues
}

TEST(ThreadSpec, ParsesPositiveIntegers) {
    EXPECT_EQ(parseThreadSpec("1"), 1u);
    EXPECT_EQ(parseThreadSpec("8"), 8u);
    EXPECT_EQ(parseThreadSpec("256"), 256u);
}

TEST(ThreadSpec, ZeroMeansHardwareThreads) {
    EXPECT_EQ(parseThreadSpec("0"), hardwareThreads());
    EXPECT_GE(hardwareThreads(), 1u);
}

TEST(ThreadSpec, RejectsMalformedAndOversized) {
    EXPECT_THROW(parseThreadSpec(""), rpkic::UsageError);
    EXPECT_THROW(parseThreadSpec("four"), rpkic::UsageError);
    EXPECT_THROW(parseThreadSpec("4x"), rpkic::UsageError);
    EXPECT_THROW(parseThreadSpec("-2"), rpkic::UsageError);
    EXPECT_THROW(parseThreadSpec("257"), rpkic::UsageError);
    EXPECT_THROW(parseThreadSpec("99999999999999999999"), rpkic::UsageError);
}

TEST(ThreadSpec, DefaultThreadCountFollowsEnv) {
    // setenv/unsetenv here is safe: gtest runs tests sequentially and no
    // pool construction races this test.
    ASSERT_EQ(unsetenv("RC_THREADS"), 0);
    EXPECT_EQ(defaultThreadCount(), 1u) << "unset env means sequential";
    ASSERT_EQ(setenv("RC_THREADS", "4", 1), 0);
    EXPECT_EQ(defaultThreadCount(), 4u);
    ASSERT_EQ(setenv("RC_THREADS", "0", 1), 0);
    EXPECT_EQ(defaultThreadCount(), hardwareThreads());
    ASSERT_EQ(setenv("RC_THREADS", "not-a-number", 1), 0);
    EXPECT_EQ(defaultThreadCount(), 1u) << "a broken env var must not fail the process";
    ASSERT_EQ(unsetenv("RC_THREADS"), 0);
}

TEST(DefaultPool, ConfigureReplacesThePool) {
    configureDefaultPool(3);
    EXPECT_EQ(defaultPool().threads(), 3u);
    std::atomic<std::size_t> hits{0};
    defaultPool().parallelFor(50, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 50u);
    configureDefaultPool(1);  // restore the process default for later tests
    EXPECT_EQ(defaultPool().threads(), 1u);
}

}  // namespace
}  // namespace rc::parallel
