// SHA-256 correctness against FIPS 180-4 / NIST CAVP vectors, plus
// streaming-interface behaviour.
#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/bytes.hpp"
#include "util/errors.hpp"

namespace rpkic {
namespace {

TEST(Sha256, EmptyInput) {
    EXPECT_EQ(sha256("").hex(),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(sha256("abc").hex(),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(h.finish().hex(),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
    // 64 bytes: exercises the padding path where the length does not fit
    // in the final block.
    const std::string msg(64, 'x');
    EXPECT_EQ(sha256(msg), sha256(msg));
    EXPECT_NE(sha256(msg), sha256(std::string(65, 'x')));
}

TEST(Sha256, StreamingMatchesOneShot) {
    const std::string msg = "The Resource Public Key Infrastructure (RPKI) is a new "
                            "infrastructure that prevents some of the most devastating "
                            "attacks on interdomain routing.";
    for (std::size_t split = 0; split <= msg.size(); split += 7) {
        Sha256 h;
        h.update(std::string_view(msg).substr(0, split));
        h.update(std::string_view(msg).substr(split));
        EXPECT_EQ(h.finish(), sha256(msg)) << "split at " << split;
    }
}

TEST(Sha256, ResetReusesObject) {
    Sha256 h;
    h.update("abc");
    EXPECT_EQ(h.finish().hex(),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    h.reset();
    h.update("");
    EXPECT_EQ(h.finish().hex(),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, PairHashMatchesConcatenation) {
    const Digest a = sha256("left");
    const Digest b = sha256("right");
    Bytes concat(a.bytes.begin(), a.bytes.end());
    concat.insert(concat.end(), b.bytes.begin(), b.bytes.end());
    EXPECT_EQ(sha256Pair(a, b), sha256(ByteView(concat.data(), concat.size())));
    EXPECT_NE(sha256Pair(a, b), sha256Pair(b, a));
}

TEST(Digest, HexRoundTrip) {
    const Digest d = sha256("round trip");
    EXPECT_EQ(Digest::fromHex(d.hex()), d);
}

TEST(Digest, ZeroDetection) {
    Digest d;
    EXPECT_TRUE(d.isZero());
    d.bytes[31] = 1;
    EXPECT_FALSE(d.isZero());
}

TEST(Digest, Ordering) {
    Digest a, b;
    a.bytes[0] = 1;
    b.bytes[0] = 2;
    EXPECT_LT(a, b);
    EXPECT_EQ(a, a);
}

TEST(HexCodec, RoundTrip) {
    const Bytes data = {0x00, 0x01, 0x7f, 0x80, 0xff};
    EXPECT_EQ(toHex(ByteView(data.data(), data.size())), "00017f80ff");
    EXPECT_EQ(fromHex("00017f80ff"), data);
}

TEST(HexCodec, RejectsMalformed) {
    EXPECT_THROW(fromHex("abc"), ParseError);
    EXPECT_THROW(fromHex("zz"), ParseError);
}

}  // namespace
}  // namespace rpkic
