// Multi-RP fleet: vote wire format round-trips and rejects malformed
// input, the message bus is a deterministic fault surface, the consensus
// tracker separates crashed / stalled / mirror-fed members, and runFleet
// upholds I10 (correct majority masks any sub-quorum minority) and I11
// (every masked member attributed with its configured fault class) with
// byte-identical transcripts at every thread count.
#include <gtest/gtest.h>

#include "fleet/fleet.hpp"
#include "rpki/chaos.hpp"
#include "util/errors.hpp"
#include "util/parallel.hpp"

namespace rpkic::fleet {
namespace {

Digest digestOf(const std::string& s) {
    return sha256(s);
}

VrpVote sampleVote() {
    VrpVote v;
    v.member = 2;
    v.epoch = 7;
    v.vrpHash = digestOf("vrp-state");
    v.vrpCount = 42;
    v.claims.push_back({"rpki://isp/", 3, digestOf("isp-m3")});
    v.claims.push_back({"rpki://org/", 5, digestOf("org-m5")});
    return v;
}

// ---------------------------------------------------------------------------
// Vote wire format

TEST(VoteWire, BinaryRoundTripsExactly) {
    const VrpVote v = sampleVote();
    const Bytes wire = v.encode();
    const VrpVote back = VrpVote::decode(ByteView(wire.data(), wire.size()));
    EXPECT_EQ(back, v);
    EXPECT_EQ(back.encode(), wire);
}

TEST(VoteWire, EmptyClaimsRoundTrip) {
    VrpVote v;
    v.member = 0;
    v.epoch = 0;
    v.vrpHash = digestOf("");
    const Bytes wire = v.encode();
    EXPECT_EQ(VrpVote::decode(ByteView(wire.data(), wire.size())), v);
}

TEST(VoteWire, RejectsTruncationAndTrailingGarbage) {
    const Bytes wire = sampleVote().encode();
    for (std::size_t len = 0; len < wire.size(); ++len) {
        EXPECT_THROW(VrpVote::decode(ByteView(wire.data(), len)), ParseError) << "len=" << len;
    }
    Bytes padded = wire;
    padded.push_back(0);
    EXPECT_THROW(VrpVote::decode(ByteView(padded.data(), padded.size())), ParseError);
}

TEST(VoteWire, RejectsBadMagic) {
    Bytes wire = sampleVote().encode();
    wire[0] ^= 0xff;
    EXPECT_THROW(VrpVote::decode(ByteView(wire.data(), wire.size())), ParseError);
}

TEST(VoteWire, RejectsUnsortedOrDuplicateClaims) {
    VrpVote unsorted = sampleVote();
    std::swap(unsorted.claims[0], unsorted.claims[1]);
    Bytes wire = unsorted.encode();  // encode() does not sort for us
    EXPECT_THROW(VrpVote::decode(ByteView(wire.data(), wire.size())), ParseError);

    VrpVote dup = sampleVote();
    dup.claims.push_back(dup.claims.back());
    wire = dup.encode();
    EXPECT_THROW(VrpVote::decode(ByteView(wire.data(), wire.size())), ParseError);
}

TEST(VoteText, LineRoundTrips) {
    const VrpVote v = sampleVote();
    const std::string line = v.str();
    EXPECT_EQ(VrpVote::parseLine(line), v);

    VrpVote empty;
    empty.vrpHash = digestOf("x");
    EXPECT_EQ(VrpVote::parseLine(empty.str()), empty);
}

// ---------------------------------------------------------------------------
// Message bus

ByteView bytesOf(const char* s) {
    return ByteView(reinterpret_cast<const std::uint8_t*>(s), std::char_traits<char>::length(s));
}

TEST(Bus, DeliversSortedBySenderAndSequence) {
    MessageBus bus(4);
    bus.send(2, 3, 0, bytesOf("from-2"));
    bus.send(0, 3, 0, bytesOf("from-0"));
    bus.send(1, 3, 0, bytesOf("from-1"));
    const auto got = bus.collect(3, 0);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].from, 0u);
    EXPECT_EQ(got[1].from, 1u);
    EXPECT_EQ(got[2].from, 2u);
    EXPECT_TRUE(bus.collect(3, 0).empty());  // collect drains
}

TEST(Bus, LoseDropsAndDelayPostpones) {
    MessageBus bus(3);
    bus.addFault(LinkFault{LinkFaultKind::Lose, 0, 2, 0, 1, 0});
    bus.addFault(LinkFault{LinkFaultKind::Delay, 1, 2, 0, 1, 2});
    bus.send(0, 2, 0, bytesOf("lost"));
    bus.send(1, 2, 0, bytesOf("late"));
    EXPECT_TRUE(bus.collect(2, 0).empty());
    EXPECT_TRUE(bus.collect(2, 1).empty());
    const auto got = bus.collect(2, 2);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].from, 1u);
    EXPECT_EQ(bus.stats().lost, 1u);
    EXPECT_EQ(bus.stats().delayed, 1u);
}

TEST(Bus, CorruptFlipsExactlyOneBit) {
    MessageBus bus(2);
    bus.addFault(LinkFault{LinkFaultKind::Corrupt, 0, 1, 0, 1, 3});
    bus.send(0, 1, 0, bytesOf("a"));
    const auto got = bus.collect(1, 0);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].payload[0], static_cast<std::uint8_t>('a') ^ (1u << 3));
    EXPECT_EQ(bus.stats().corrupted, 1u);
}

TEST(Bus, PartitionSplitsByBitmask) {
    MessageBus bus(4);
    // Members 0 and 1 on one side (bits 0,1 set); 2 and 3 on the other.
    bus.addFault(LinkFault{LinkFaultKind::Partition, LinkFault::kMatchAny, LinkFault::kMatchAny, 0,
                           1, 0b0011});
    bus.send(0, 1, 0, bytesOf("same-side"));
    bus.send(0, 2, 0, bytesOf("cross"));
    bus.send(3, 2, 0, bytesOf("same-side"));
    EXPECT_EQ(bus.collect(1, 0).size(), 1u);
    EXPECT_EQ(bus.collect(2, 0).size(), 1u);  // only the same-side message
    EXPECT_EQ(bus.stats().lost, 1u);
}

TEST(Bus, LinkFaultLineRoundTrips) {
    const LinkFault f{LinkFaultKind::Partition, LinkFault::kMatchAny, 2, 5, 3, 0b0101};
    EXPECT_EQ(LinkFault::parseLine(f.str()), f);
}

// ---------------------------------------------------------------------------
// Consensus tracker

VrpVote voteWith(std::uint32_t member, std::uint64_t epoch, const std::string& world,
                 std::vector<VoteClaim> claims = {}) {
    VrpVote v;
    v.member = member;
    v.epoch = epoch;
    v.vrpHash = digestOf(world);
    v.claims = std::move(claims);
    std::sort(v.claims.begin(), v.claims.end());
    return v;
}

TEST(Consensus, UnanimityFastPath) {
    ConsensusTracker tracker(3, 2);
    const auto d = tracker.decide(
        0, {voteWith(0, 0, "w"), voteWith(1, 0, "w"), voteWith(2, 0, "w")});
    EXPECT_EQ(d.outcome, ConsensusOutcome::Unanimous);
    EXPECT_EQ(d.agreeing, 3u);
    EXPECT_TRUE(d.verdicts.empty());
    EXPECT_EQ(d.winners, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Consensus, ExactThresholdQuorum) {
    // f = 2 faulty of N = 2f+1 = 5 at Q = f+1 = 3: the honest three still
    // carry the epoch.
    ConsensusTracker tracker(5, 3);
    const VoteClaim honest{"rpki://org/", 4, digestOf("m4")};
    const auto d = tracker.decide(0, {
                                         voteWith(0, 0, "w", {honest}),
                                         voteWith(1, 0, "evil-a"),
                                         voteWith(2, 0, "w", {honest}),
                                         voteWith(3, 0, "evil-b"),
                                         voteWith(4, 0, "w", {honest}),
                                     });
    EXPECT_EQ(d.outcome, ConsensusOutcome::Quorum);
    EXPECT_EQ(d.agreeing, 3u);
    EXPECT_EQ(d.winners, (std::vector<std::uint32_t>{0, 2, 4}));
    EXPECT_EQ(d.winningHash, digestOf("w"));
    ASSERT_EQ(d.verdicts.size(), 2u);
    EXPECT_EQ(d.verdicts[0].member, 1u);
    EXPECT_EQ(d.verdicts[1].member, 3u);
}

TEST(Consensus, NoQuorumWithholdsAndAttributesNothing) {
    ConsensusTracker tracker(5, 3);
    const auto d = tracker.decide(0, {voteWith(0, 0, "a"), voteWith(1, 0, "a"),
                                      voteWith(2, 0, "b"), voteWith(3, 0, "b")});
    EXPECT_EQ(d.outcome, ConsensusOutcome::NoQuorum);
    EXPECT_EQ(d.agreeing, 2u);
    EXPECT_TRUE(d.winners.empty());
    // No quorum means no trustworthy reference to attribute against.
    EXPECT_TRUE(d.verdicts.empty());
}

TEST(Consensus, AbsentMemberIsCrashedUnaccountable) {
    ConsensusTracker tracker(3, 2);
    const auto d = tracker.decide(0, {voteWith(0, 0, "w"), voteWith(2, 0, "w")});
    ASSERT_EQ(d.verdicts.size(), 1u);
    EXPECT_EQ(d.verdicts[0].member, 1u);
    EXPECT_EQ(d.verdicts[0].cls, MemberFaultClass::Crashed);
    EXPECT_EQ(d.verdicts[0].table7, rp::AlarmType::MissingInformation);
    EXPECT_FALSE(d.verdicts[0].accountable);
}

TEST(Consensus, LaggingMemberIsStalledUnaccountable) {
    ConsensusTracker tracker(3, 2);
    const VoteClaim oldClaim{"rpki://org/", 3, digestOf("m3")};
    const VoteClaim newClaim{"rpki://org/", 4, digestOf("m4")};
    // Epoch 0: everyone at m3 — the tracker records the majority history.
    tracker.decide(0, {voteWith(0, 0, "w0", {oldClaim}), voteWith(1, 0, "w0", {oldClaim}),
                       voteWith(2, 0, "w0", {oldClaim})});
    // Epoch 1: member 1 is pinned at m3 while the majority moved to m4.
    const auto d =
        tracker.decide(1, {voteWith(0, 1, "w1", {newClaim}), voteWith(1, 1, "w0", {oldClaim}),
                           voteWith(2, 1, "w1", {newClaim})});
    ASSERT_EQ(d.verdicts.size(), 1u);
    EXPECT_EQ(d.verdicts[0].cls, MemberFaultClass::Stalled);
    EXPECT_EQ(d.verdicts[0].table7, rp::AlarmType::MissingInformation);
    EXPECT_FALSE(d.verdicts[0].accountable);
}

TEST(Consensus, ConflictingDigestIsMirrorFedAccountable) {
    ConsensusTracker tracker(3, 2);
    const VoteClaim honest{"rpki://org/", 4, digestOf("m4")};
    const VoteClaim forged{"rpki://org/", 4, digestOf("forged-m4")};
    const auto d = tracker.decide(0, {voteWith(0, 0, "w", {honest}),
                                      voteWith(1, 0, "x", {forged}),
                                      voteWith(2, 0, "w", {honest})});
    ASSERT_EQ(d.verdicts.size(), 1u);
    EXPECT_EQ(d.verdicts[0].cls, MemberFaultClass::MirrorFed);
    EXPECT_EQ(d.verdicts[0].table7, rp::AlarmType::GlobalInconsistency);
    EXPECT_TRUE(d.verdicts[0].accountable);  // two manifests, one number
}

TEST(Consensus, HistoryConflictConvictsLaggingMirror) {
    ConsensusTracker tracker(3, 2);
    const VoteClaim m3{"rpki://org/", 3, digestOf("m3")};
    const VoteClaim m4{"rpki://org/", 4, digestOf("m4")};
    const VoteClaim forgedM3{"rpki://org/", 3, digestOf("forged-m3")};
    tracker.decide(0, {voteWith(0, 0, "w0", {m3}), voteWith(1, 0, "w0", {m3}),
                       voteWith(2, 0, "w0", {m3})});
    // Member 1 lags at number 3 but with a digest the quorum never saw at
    // number 3: that is a mirror world, not a stall.
    const auto d = tracker.decide(1, {voteWith(0, 1, "w1", {m4}),
                                      voteWith(1, 1, "x", {forgedM3}),
                                      voteWith(2, 1, "w1", {m4})});
    ASSERT_EQ(d.verdicts.size(), 1u);
    EXPECT_EQ(d.verdicts[0].cls, MemberFaultClass::MirrorFed);
    EXPECT_TRUE(d.verdicts[0].accountable);
}

TEST(Consensus, AheadOfMajorityIsMirrorFed) {
    ConsensusTracker tracker(3, 2);
    const VoteClaim m4{"rpki://org/", 4, digestOf("m4")};
    const VoteClaim m9{"rpki://org/", 9, digestOf("m9")};
    const auto d = tracker.decide(0, {voteWith(0, 0, "w", {m4}), voteWith(1, 0, "x", {m9}),
                                      voteWith(2, 0, "w", {m4})});
    ASSERT_EQ(d.verdicts.size(), 1u);
    EXPECT_EQ(d.verdicts[0].cls, MemberFaultClass::MirrorFed);
}

// ---------------------------------------------------------------------------
// MemberFaultSpec

TEST(FaultSpec, ParsesAndPrints) {
    const auto set = MemberFaultSpec::parseSet("1:crash:5:6,3:mirror:4,0:stall");
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set[0], (MemberFaultSpec{1, MemberFaultClass::Crashed, 5, 6}));
    EXPECT_EQ(set[1], (MemberFaultSpec{3, MemberFaultClass::MirrorFed, 4}));
    EXPECT_EQ(set[2], (MemberFaultSpec{0, MemberFaultClass::Stalled, 0}));
    for (const auto& s : set) EXPECT_EQ(MemberFaultSpec::parse(s.str()), s);
    EXPECT_TRUE(MemberFaultSpec::parseSet("").empty());
    EXPECT_THROW(MemberFaultSpec::parse("1:sabotage"), ParseError);
    EXPECT_THROW(MemberFaultSpec::parse("1"), ParseError);
}

// ---------------------------------------------------------------------------
// Fleet integration

FleetConfig baseConfig() {
    FleetConfig cfg;
    cfg.seed = 11;
    cfg.members = 5;
    cfg.quorum = 3;
    cfg.epochs = 12;
    return cfg;
}

TEST(Fleet, AllHonestIsUnanimousEveryEpoch) {
    FleetConfig cfg = baseConfig();
    cfg.members = 3;
    cfg.quorum = 2;
    cfg.epochs = 8;
    const FleetResult r = runFleet(cfg);
    EXPECT_TRUE(r.passed) << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_EQ(r.stats.epochs, 8u);
    EXPECT_EQ(r.stats.unanimousEpochs, 8u);
    EXPECT_EQ(r.stats.outputEpochs, 8u);
    EXPECT_EQ(r.stats.finalOutputRoas, r.stats.twinFinalRoas);
    EXPECT_EQ(r.stats.verdictsCrashed + r.stats.verdictsStalled + r.stats.verdictsMirrorFed, 0u);
    for (const TranscriptEpoch& row : r.transcript.rows) {
        EXPECT_TRUE(row.hasOutput);
        EXPECT_EQ(row.decision.outcome, ConsensusOutcome::Unanimous);
    }
}

TEST(Fleet, CrashedMemberIsMaskedAttributedAndRejoins) {
    FleetConfig cfg = baseConfig();
    cfg.faulty = MemberFaultSpec::parseSet("1:crash:3:4");
    const FleetResult r = runFleet(cfg);
    EXPECT_TRUE(r.passed) << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_GE(r.stats.crashes, 1u);
    EXPECT_EQ(r.stats.restarts, 1u);
    EXPECT_GE(r.stats.verdictsCrashed, 1u);
    EXPECT_EQ(r.stats.outputEpochs, cfg.epochs);  // majority never lost
    // After rejoining at epoch 7 the member votes with the majority again.
    const TranscriptEpoch& last = r.transcript.rows.back();
    EXPECT_EQ(last.decision.outcome, ConsensusOutcome::Unanimous);
    EXPECT_EQ(last.votes.size(), 5u);
}

TEST(Fleet, StalledAndMirrorFedMinorityIsMaskedAndAttributed) {
    FleetConfig cfg = baseConfig();
    cfg.epochs = 16;
    cfg.faulty = MemberFaultSpec::parseSet("2:stall:4,4:mirror:6");
    const FleetResult r = runFleet(cfg);
    EXPECT_TRUE(r.passed) << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_EQ(r.stats.outputEpochs, cfg.epochs);
    EXPECT_GE(r.stats.verdictsStalled, 1u);
    EXPECT_GE(r.stats.verdictsMirrorFed, 1u);
    // The mirror-fed member must at some point be convicted accountably.
    bool accountableMirror = false;
    for (const TranscriptEpoch& row : r.transcript.rows) {
        for (const MemberVerdict& v : row.decision.verdicts) {
            if (v.member == 4 && v.cls == MemberFaultClass::MirrorFed && v.accountable) {
                accountableMirror = true;
            }
        }
    }
    EXPECT_TRUE(accountableMirror);
}

TEST(Fleet, NoQuorumEpochWithholdsOutput) {
    FleetConfig cfg = baseConfig();
    cfg.members = 3;
    cfg.quorum = 3;  // unanimity required: one crash starves the quorum
    cfg.epochs = 6;
    cfg.faulty = MemberFaultSpec::parseSet("0:crash:2");
    const FleetResult r = runFleet(cfg);
    EXPECT_TRUE(r.passed) << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_GE(r.stats.noQuorumEpochs, 1u);
    bool sawWithheld = false;
    for (const TranscriptEpoch& row : r.transcript.rows) {
        if (row.decision.outcome == ConsensusOutcome::NoQuorum) {
            EXPECT_FALSE(row.hasOutput);  // withheld, never guessed
            EXPECT_TRUE(row.decision.verdicts.empty());
            sawWithheld = true;
        }
    }
    EXPECT_TRUE(sawWithheld);
    bool sawNoQuorumAlarm = false;
    for (const rp::Alarm& a : r.alarms) {
        if (a.victim == "fleet-output" && a.type == rp::AlarmType::MissingInformation &&
            !a.accountable) {
            sawNoQuorumAlarm = true;
        }
    }
    EXPECT_TRUE(sawNoQuorumAlarm);
}

TEST(Fleet, TranscriptIsByteIdenticalAcrossThreadCounts) {
    FleetConfig cfg = baseConfig();
    cfg.faulty = MemberFaultSpec::parseSet("1:crash:5:6,3:mirror:4");
    std::string reference;
    for (const std::size_t threads : {1u, 2u, 4u}) {
        rc::parallel::Pool pool(threads);
        FleetConfig run = cfg;
        run.pool = &pool;
        const FleetResult r = runFleet(run);
        const std::string text = r.transcript.serialize();
        if (reference.empty()) {
            reference = text;
        } else {
            EXPECT_EQ(text, reference) << "threads=" << threads;
        }
    }
    EXPECT_FALSE(reference.empty());
}

TEST(Fleet, TranscriptRoundTripsThroughText) {
    FleetConfig cfg = baseConfig();
    cfg.faulty = MemberFaultSpec::parseSet("1:crash:3:4,2:stall:6");
    const FleetResult r = runFleet(cfg);
    const std::string text = r.transcript.serialize();
    const FleetTranscript back = FleetTranscript::parse(text);
    EXPECT_EQ(back, r.transcript);
    EXPECT_EQ(back.serialize(), text);
}

TEST(Fleet, RejoinedMemberRecoversFromDurableStore) {
    FleetConfig cfg = baseConfig();
    cfg.epochs = 14;
    cfg.faulty = MemberFaultSpec::parseSet("0:crash:4:3");
    obs::Registry registry;
    cfg.registry = &registry;
    const FleetResult r = runFleet(cfg);
    EXPECT_TRUE(r.passed) << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_EQ(r.stats.restarts, 1u);
    // The restart path is the durable-store recovery path, visible in the
    // shared registry via the member's rc_store_* family.
    const std::string exposition = registry.renderPrometheus();
    EXPECT_NE(exposition.find("rc_fleet_restarts_total 1"), std::string::npos);
}

TEST(Fleet, VoteLossOnTheBusDoesNotCrashTheFleet) {
    FleetConfig cfg = baseConfig();
    cfg.epochs = 8;
    // Lose every vote member 2 sends during epochs [2, 5).
    cfg.linkFaults.push_back(LinkFault{LinkFaultKind::Lose, 2, LinkFault::kMatchAny, 2, 3, 0});
    const FleetResult r = runFleet(cfg);
    EXPECT_TRUE(r.passed) << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_GE(r.stats.messagesLost, 1u);
    EXPECT_EQ(r.stats.outputEpochs, 8u);  // 4 of 5 votes still reach quorum
}

TEST(Fleet, MultiSeedSweepHoldsInvariants) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        FleetConfig cfg = baseConfig();
        cfg.seed = seed;
        cfg.epochs = 10;
        cfg.faulty = MemberFaultSpec::parseSet("1:crash:5:6,3:mirror:4");
        const FleetResult r = runFleet(cfg);
        EXPECT_TRUE(r.passed) << "seed=" << seed << ": "
                              << (r.violations.empty() ? "" : r.violations.front());
    }
}

TEST(Fleet, RejectsBadParameters) {
    FleetConfig cfg = baseConfig();
    cfg.quorum = 6;
    EXPECT_THROW(runFleet(cfg), UsageError);
    cfg = baseConfig();
    cfg.faulty = MemberFaultSpec::parseSet("7:crash:1");
    EXPECT_THROW(runFleet(cfg), UsageError);
    cfg = baseConfig();
    cfg.faulty = MemberFaultSpec::parseSet("1:crash:1,1:stall:2");
    EXPECT_THROW(runFleet(cfg), UsageError);
}

}  // namespace
}  // namespace rpkic::fleet
