// ResourceSet: RFC 3779 subset semantics, inherit handling, set algebra.
#include "ip/resource_set.hpp"

#include <gtest/gtest.h>

#include "util/errors.hpp"

namespace rpkic {
namespace {

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

TEST(ResourceSet, EmptyAndInherit) {
    ResourceSet empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_FALSE(empty.isInherit());

    const ResourceSet inh = ResourceSet::inherit();
    EXPECT_TRUE(inh.isInherit());
    EXPECT_FALSE(inh.empty());
    EXPECT_THROW((void)inh.containsPrefix(pfx("10.0.0.0/8")), UsageError);
}

TEST(ResourceSet, ContainsPrefix) {
    const ResourceSet r = ResourceSet::ofPrefixes({pfx("10.0.0.0/8"), pfx("192.168.0.0/16")});
    EXPECT_TRUE(r.containsPrefix(pfx("10.0.0.0/8")));
    EXPECT_TRUE(r.containsPrefix(pfx("10.42.0.0/16")));
    EXPECT_TRUE(r.containsPrefix(pfx("192.168.7.0/24")));
    EXPECT_FALSE(r.containsPrefix(pfx("11.0.0.0/8")));
    EXPECT_FALSE(r.containsPrefix(pfx("0.0.0.0/0")));
}

TEST(ResourceSet, SubsetIsRangeBasedNotPrefixBased) {
    // Two /9s together equal the /8: subset must hold even though neither
    // /9 equals the /8 as a prefix.
    ResourceSet child = ResourceSet::ofPrefixes({pfx("10.0.0.0/9"), pfx("10.128.0.0/9")});
    const ResourceSet parent = ResourceSet::ofPrefixes({pfx("10.0.0.0/8")});
    EXPECT_TRUE(child.subsetOf(parent));
    EXPECT_TRUE(parent.subsetOf(child));  // ranges are equal

    child.addPrefix(pfx("11.0.0.0/24"));
    EXPECT_FALSE(child.subsetOf(parent));
}

TEST(ResourceSet, SubsetWithAsns) {
    ResourceSet parent = ResourceSet::ofPrefixes({pfx("10.0.0.0/8")});
    parent.addAsnRange(100, 200);
    ResourceSet child = ResourceSet::ofPrefixes({pfx("10.1.0.0/16")});
    child.addAsn(150);
    EXPECT_TRUE(child.subsetOf(parent));
    child.addAsn(300);
    EXPECT_FALSE(child.subsetOf(parent));
}

TEST(ResourceSet, InheritSubsetRules) {
    const ResourceSet inh = ResourceSet::inherit();
    const ResourceSet concrete = ResourceSet::ofPrefixes({pfx("10.0.0.0/8")});
    EXPECT_TRUE(inh.subsetOf(concrete));
    EXPECT_TRUE(inh.subsetOf(inh));
    EXPECT_FALSE(concrete.subsetOf(inh));
}

TEST(ResourceSet, EffectiveResourcesResolution) {
    const ResourceSet parentEff = ResourceSet::ofPrefixes({pfx("10.0.0.0/8")});
    const ResourceSet own = ResourceSet::ofPrefixes({pfx("10.1.0.0/16")});
    EXPECT_EQ(&effectiveResources(own, parentEff), &own);
    EXPECT_EQ(&effectiveResources(ResourceSet::inherit(), parentEff), &parentEff);
}

TEST(ResourceSet, MixedFamilies) {
    ResourceSet r;
    r.addPrefix(pfx("196.6.174.0/23"));
    r.addPrefix(pfx("2c0f:f668::/32"));
    EXPECT_TRUE(r.containsPrefix(pfx("196.6.174.0/24")));
    EXPECT_TRUE(r.containsPrefix(pfx("2c0f:f668:1234::/48")));
    EXPECT_FALSE(r.containsPrefix(pfx("2c0f:f669::/32")));

    // Case Study 3: overwriting an RC's v4 resources with v6 resources
    // means the old ROA prefix is no longer covered.
    const ResourceSet overwritten = ResourceSet::ofPrefixes({pfx("2c0f:f668::/32")});
    const ResourceSet roaNeeds = ResourceSet::ofPrefixes({pfx("196.6.174.0/23")});
    EXPECT_FALSE(roaNeeds.subsetOf(overwritten));
}

TEST(ResourceSet, SubtractAndOverlap) {
    const ResourceSet a = ResourceSet::ofPrefixes({pfx("10.0.0.0/8")});
    const ResourceSet b = ResourceSet::ofPrefixes({pfx("10.0.0.0/9")});
    const ResourceSet diff = a.subtract(b);
    EXPECT_TRUE(diff.containsPrefix(pfx("10.128.0.0/9")));
    EXPECT_FALSE(diff.containsPrefix(pfx("10.0.0.0/9")));
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(diff.overlaps(b));
}

TEST(ResourceSet, UnionAndIntersect) {
    const ResourceSet a = ResourceSet::ofPrefixes({pfx("10.0.0.0/9")});
    const ResourceSet b = ResourceSet::ofPrefixes({pfx("10.128.0.0/9")});
    const ResourceSet u = a.unionWith(b);
    EXPECT_TRUE(u.containsPrefix(pfx("10.0.0.0/8")));
    EXPECT_TRUE(a.intersect(b).empty());
}

TEST(ResourceSet, V4AddressCount) {
    const ResourceSet r = ResourceSet::ofPrefixes({pfx("10.0.0.0/24"), pfx("10.0.1.0/24")});
    EXPECT_EQ(r.v4AddressCount(), 512u);
}

TEST(ResourceSet, StringForm) {
    ResourceSet r = ResourceSet::ofPrefixes({pfx("10.0.0.0/24")});
    r.addAsn(65000);
    const std::string s = r.str();
    EXPECT_NE(s.find("10.0.0.0-10.0.0.255"), std::string::npos);
    EXPECT_NE(s.find("AS65000"), std::string::npos);
    EXPECT_EQ(ResourceSet::inherit().str(), "{inherit}");
}

TEST(ResourceSet, InheritGuards) {
    ResourceSet inh = ResourceSet::inherit();
    EXPECT_THROW(inh.addPrefix(pfx("10.0.0.0/8")), UsageError);
    EXPECT_THROW(inh.addAsn(1), UsageError);
    const ResourceSet concrete = ResourceSet::ofPrefixes({pfx("10.0.0.0/8")});
    EXPECT_THROW((void)inh.unionWith(concrete), UsageError);
    EXPECT_THROW((void)concrete.overlaps(inh), UsageError);
}

}  // namespace
}  // namespace rpkic
