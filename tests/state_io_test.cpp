// State text-format parsing/serialization round-trips and error handling.
#include "detector/state_io.hpp"

#include <gtest/gtest.h>

#include "util/errors.hpp"

namespace rpkic {
namespace {

TEST(StateIo, ParsesCanonicalFormat) {
    const RpkiState s = parseStateText(
        "# production RPKI excerpt\n"
        "79.139.96.0/19-20 AS43782\n"
        "79.139.96.0/24 AS51813\n"
        "\n"
        "2c0f:f668::/32 37600  # bare ASN + trailing comment\n");
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(s.contains({IpPrefix::parse("79.139.96.0/19"), 20, 43782}));
    EXPECT_TRUE(s.contains({IpPrefix::parse("79.139.96.0/24"), 24, 51813}));
    EXPECT_TRUE(s.contains({IpPrefix::parse("2c0f:f668::/32"), 32, 37600}));
}

TEST(StateIo, DefaultMaxLengthIsPrefixLength) {
    const RpkiState s = parseStateText("10.0.0.0/16 AS1\n");
    EXPECT_EQ(s.tuples()[0].maxLength, 16);
}

TEST(StateIo, RoundTripIsCanonical) {
    const RpkiState s = parseStateText(
        "10.0.0.0/16-24 AS5\n"
        "9.0.0.0/8 AS2\n"
        "10.0.0.0/16-24 AS5\n");  // duplicate collapses
    const std::string text = stateToText(s);
    EXPECT_EQ(parseStateText(text), s);
    EXPECT_EQ(text, "9.0.0.0/8 AS2\n10.0.0.0/16-24 AS5\n");  // sorted, deduped
}

TEST(StateIo, RejectsMalformedLines) {
    EXPECT_THROW(parseStateText("10.0.0.0/16\n"), ParseError);           // no ASN
    EXPECT_THROW(parseStateText("10.0.0.0/16 AS1 junk\n"), ParseError);  // trailing
    EXPECT_THROW(parseStateText("10.0.0.0/16 ASx\n"), ParseError);       // bad ASN
    EXPECT_THROW(parseStateText("10.0.0.0/16-12 AS1\n"), ParseError);    // maxLen < len
    EXPECT_THROW(parseStateText("10.0.0.0/16-129 AS1\n"), ParseError);   // maxLen > 128
    EXPECT_THROW(parseStateText("10.0.0.0/16-33 AS1\n"), ParseError);    // maxLen > v4 width
    EXPECT_THROW(parseStateText("not-a-prefix AS1\n"), ParseError);
    EXPECT_THROW(parseStateText("10.0.0.0/16 AS99999999999\n"), ParseError);
}

TEST(StateIo, ErrorsCarryLineNumbers) {
    try {
        parseStateText("10.0.0.0/8 AS1\n\nbroken\n");
        FAIL() << "should have thrown";
    } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
    }
}

TEST(StateIo, FileRoundTrip) {
    const RpkiState s = parseStateText("10.0.0.0/16-20 AS7\n");
    const std::string path = "/tmp/rpkic_state_io_test.state";
    saveStateFile(path, s);
    EXPECT_EQ(loadStateFile(path), s);
    EXPECT_THROW(loadStateFile("/nonexistent/dir/x.state"), Error);
}

}  // namespace
}  // namespace rpkic
