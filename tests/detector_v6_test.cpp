// IPv6 triangles in the detector: classification, diff pair counts, and a
// property sweep against a brute-force oracle on a confined v6 subtree.
#include <gtest/gtest.h>

#include "detector/diff.hpp"
#include "util/rng.hpp"

namespace rpkic {
namespace {

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

RpkiState state(std::vector<RoaTuple> tuples) {
    return RpkiState(std::move(tuples));
}

TEST(DetectorV6, TriangleMembership) {
    const PrefixValidityIndex idx(state({{pfx("2c0f:f668::/32"), 40, 37600}}));
    const TriangleSet6& valid = idx.validTriangles6(37600);
    EXPECT_TRUE(valid.containsPrefix(pfx("2c0f:f668::/32")));
    EXPECT_TRUE(valid.containsPrefix(pfx("2c0f:f668:8000::/33")));
    EXPECT_TRUE(valid.containsPrefix(pfx("2c0f:f668:ff00::/40")));
    EXPECT_FALSE(valid.containsPrefix(pfx("2c0f:f668:ff80::/41")))
        << "below maxLength";
    EXPECT_FALSE(valid.containsPrefix(pfx("2c0f:f669::/32")));
    // Known triangle reaches the bottom.
    EXPECT_TRUE(idx.knownTriangles6().containsPrefix(
        pfx("2c0f:f668::1/128")));
}

TEST(DetectorV6, TrianglePairCounts) {
    // /32 with maxLength 35: levels 32..35 -> 1+2+4+8 = 15 prefixes.
    const PrefixValidityIndex idx(state({{pfx("2c0f:f668::/32"), 35, 1}}));
    EXPECT_EQ(idx.validTriangles6(1).prefixCount(), 15u);
    EXPECT_DOUBLE_EQ(idx.validTriangles6(1).prefixCountDouble(), 15.0);
}

TEST(DetectorV6, DiffCountsWhackedRoa) {
    // Case Study 3's second act, in reverse: the v6 ROA disappears.
    const RpkiState before = state({{pfx("2c0f:f668::/32"), 33, 37600}});
    const RpkiState after = state({});
    const DowngradeReport report = diffStates(before, after);
    // Levels 32 and 33: 1 + 2 = 3 pairs, valid -> unknown.
    EXPECT_EQ(report.validToUnknownPairs, 3u);
    EXPECT_EQ(report.validToInvalidPairs, 0u);
    ASSERT_EQ(report.tupleTransitions.size(), 1u);
    EXPECT_EQ(report.tupleTransitions[0].after, RouteValidity::Unknown);
}

TEST(DetectorV6, DiffCountsCoveredWhack) {
    const RpkiState before = state({
        {pfx("2c0f:f668::/32"), 32, 1},
        {pfx("2c0f:f668::/48"), 48, 2},
    });
    const RpkiState after = state({{pfx("2c0f:f668::/32"), 32, 1}});
    const DowngradeReport report = diffStates(before, after);
    EXPECT_EQ(report.validToInvalidPairs, 1u) << "the /48 is still covered by the /32";
    EXPECT_EQ(report.validToUnknownPairs, 0u);
}

TEST(DetectorV6, MixedFamilyStatesStayIndependent) {
    const RpkiState before = state({
        {pfx("10.0.0.0/16"), 16, 1},
        {pfx("2c0f:f668::/32"), 32, 1},
    });
    const RpkiState after = state({{pfx("10.0.0.0/16"), 16, 1}});
    const DowngradeReport report = diffStates(before, after);
    EXPECT_EQ(report.validToUnknownPairs, 1u) << "only the v6 tuple was whacked";
    const PrefixValidityIndex idx(after);
    EXPECT_EQ(idx.classify({pfx("10.0.0.0/16"), 1}), RouteValidity::Valid);
    EXPECT_EQ(idx.classify({pfx("2c0f:f668::/32"), 1}), RouteValidity::Unknown);
}

// --- brute-force property sweep under 2c0f:f668::/112 (levels 112..120) ---

RouteValidity oracleClassify(const std::vector<RoaTuple>& tuples, const Route& r) {
    bool covered = false;
    for (const auto& t : tuples) {
        if (!t.prefix.covers(r.prefix)) continue;
        covered = true;
        if (t.asn == r.origin && r.prefix.length <= t.maxLength) return RouteValidity::Valid;
    }
    return covered ? RouteValidity::Invalid : RouteValidity::Unknown;
}

class DetectorV6Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectorV6Property, ClassifyMatchesBruteForce) {
    Rng rng(GetParam());
    const IpPrefix root = pfx("2c0f:f668::/112");
    std::vector<IpPrefix> universe;
    for (int len = 112; len <= 120; ++len) {
        const std::uint64_t count = 1ULL << (len - 112);
        for (std::uint64_t i = 0; i < count; ++i) {
            IpPrefix p = root;
            p.addr = root.firstAddress() | (U128{0, i} << (128 - len));
            p.length = static_cast<std::uint8_t>(len);
            universe.push_back(p);
        }
    }
    const std::vector<Asn> asns = {1, 2};

    for (int iter = 0; iter < 6; ++iter) {
        std::vector<RoaTuple> tuples;
        const int n = static_cast<int>(rng.nextInRange(0, 8));
        for (int i = 0; i < n; ++i) {
            const IpPrefix& p = universe[static_cast<std::size_t>(rng.nextBelow(universe.size()))];
            const auto maxLen = static_cast<std::uint8_t>(rng.nextInRange(p.length, 122));
            tuples.push_back({p, maxLen, asns[static_cast<std::size_t>(rng.nextBelow(2))]});
        }
        const RpkiState s(std::move(tuples));
        const PrefixValidityIndex idx(s);
        for (const auto& p : universe) {
            for (const Asn a : asns) {
                const Route r{p, a};
                ASSERT_EQ(idx.classify(r), oracleClassify(s.tuples(), r)) << r.str();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorV6Property, ::testing::Values(7, 14, 21, 28));

}  // namespace
}  // namespace rpkic
