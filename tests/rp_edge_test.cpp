// Relying-party edge cases: replay prevention, stale-then-recover cycles,
// forged .dead objects, desynchronization beyond the preservation window,
// vertical ROA checks, and hash-window expiry in the global check.
#include <gtest/gtest.h>

#include "consent/authority.hpp"
#include "rpki/chaos.hpp"
#include "rp/relying_party.hpp"

namespace rpkic {
namespace {

using consent::Authority;
using consent::AuthorityDirectory;
using consent::AuthorityOptions;
using rp::AlarmType;
using rp::RcStatus;
using rp::RelyingParty;
using rp::RpOptions;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

struct Fixture {
    Repository repo;
    AuthorityDirectory dir{31, AuthorityOptions{.ts = 3, .signerHeight = 6,
                                                .manifestLifetime = 100}};
    SimClock clock;
    Authority* root;
    Authority* org;

    Fixture() {
        root = &dir.createTrustAnchor("root", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                      repo, clock.now());
        org = &dir.createChild(*root, "org", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}),
                               repo, clock.now());
    }

    RelyingParty rp(const std::string& name) {
        return RelyingParty(name, {root->cert()}, RpOptions{.ts = 3, .tg = 6});
    }
};

TEST(RpEdge, ReplayedRcRaisesInvalidSyntax) {
    // §5.3.2 "Preventing replays": an authority cannot put a revoked RC
    // back and reuse its old .dead later — serials must keep increasing.
    Fixture f;
    Authority& victim = f.dir.createChild(
        *f.org, "victim", ResourceSet::ofPrefixes({pfx("10.1.0.0/20")}), f.repo, f.clock.now());
    const Bytes oldRcBytes = victim.cert().encode();
    const std::string rcFile = "victim.cer";

    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    // Consensual revocation first — no alarm.
    f.clock.advance(1);
    const auto deads = f.dir.collectRevocationConsent(victim);
    f.org->revokeChild("victim", deads, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    ASSERT_EQ(alice.alarms().count(), 0u);

    // Replay: the old RC bytes reappear (old serial <= high-water mark).
    f.clock.advance(1);
    f.org->unsafeReintroduceFile(rcFile, oldRcBytes, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    const auto alarms = alice.alarms().ofType(AlarmType::InvalidSyntax);
    ASSERT_FALSE(alarms.empty());
    EXPECT_TRUE(alarms[0].accountable);
    // Two independent rules catch this: "RC logged beside its own .dead"
    // (the .deads are still logged) and the serial high-water check.
    bool serialOrDead = false;
    for (const auto& a : alarms) {
        serialOrDead |= a.detail.find("serial") != std::string::npos ||
                        a.detail.find(".dead") != std::string::npos;
    }
    EXPECT_TRUE(serialOrDead);
    // The replayed RC must not become valid again.
    EXPECT_NE(alice.findRc(victim.cert().uri)->status, RcStatus::Valid);
}

TEST(RpEdge, StaleThenRecoverKeepsContinuity) {
    Fixture f;
    f.org->issueRoa("r", 64500, {{pfx("10.1.0.0/20"), 24}}, f.repo, f.clock.now());
    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());
    ASSERT_EQ(alice.validRoas().size(), 1u);

    // One sync where org's manifest is missing: stale, old data retained.
    f.clock.advance(1);
    Snapshot broken = f.repo.snapshot();
    ASSERT_TRUE(dropFile(broken, f.org->pubPointUri(), kManifestName));
    alice.sync(broken, f.clock.now());
    EXPECT_TRUE(alice.alarms().has(AlarmType::MissingInformation));
    EXPECT_EQ(alice.validRoas().size(), 1u) << "stale data is kept, not dropped";
    EXPECT_TRUE(alice.isPointStale(f.org->pubPointUri()));

    // Next sync is healthy again, including an update made meanwhile.
    f.clock.advance(1);
    f.org->issueRoa("r2", 64501, {{pfx("10.1.16.0/20"), 24}}, f.repo, f.clock.now());
    const std::size_t alarmsBefore = alice.alarms().count();
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), alarmsBefore) << "recovery raises nothing new";
    EXPECT_EQ(alice.validRoas().size(), 2u);
}

TEST(RpEdge, ForgedDeadIsRejected) {
    // A .dead whose signature does not verify under the named RC's key
    // must not count as consent (and is itself an accountable alarm).
    Fixture f;
    Authority& victim = f.dir.createChild(
        *f.org, "victim", ResourceSet::ofPrefixes({pfx("10.1.0.0/20")}), f.repo, f.clock.now());
    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    // Forge: parent signs a .dead claiming to be the victim's.
    f.clock.advance(1);
    DeadObject forged;
    forged.rcUri = victim.cert().uri;
    forged.rcSerial = victim.cert().serial;
    forged.rcHash = fileHashOf(ByteView(victim.cert().encode().data(),
                                        victim.cert().encode().size()));
    forged.signerManifestHash = Digest{};
    forged.fullRevocation = true;
    // Signed by the WRONG key (the parent's own), via the consent-free
    // unilateral path plus a bogus file.
    {
        // The honest API refuses; assemble the attack by hand.
        Signer wrongKey = Signer::generate(4444, 4);
        const Bytes body = forged.encodeBody();
        forged.signature = wrongKey.sign(ByteView(body.data(), body.size()));
    }
    f.org->unsafeReintroduceFile("victim.cer.1.fake.dead", forged.encode(), f.repo,
                                 f.clock.now());
    f.org->unsafeUnilateralRevokeChild("victim", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    EXPECT_TRUE(alice.alarms().has(AlarmType::InvalidSyntax))
        << "the forged .dead is provably bad";
    EXPECT_TRUE(alice.alarms().has(AlarmType::UnilateralRevocation))
        << "and it does not count as consent";
    EXPECT_FALSE(alice.sawDeadFor(victim.cert().uri, victim.cert().serial));
}

TEST(RpEdge, DesyncBeyondPreservationWindowGoesStaleNotWrong) {
    // Alice sleeps past ts; the authority has pruned the preserved
    // manifests she would need. She raises missing-information and keeps
    // stale data rather than guessing.
    Fixture f;
    f.org->issueRoa("r", 64500, {{pfx("10.1.0.0/20"), 24}}, f.repo, f.clock.now());
    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    // Many updates, spread far beyond ts = 3.
    for (int i = 0; i < 6; ++i) {
        f.clock.advance(2);
        f.org->issueRoa("r" + std::to_string(i), static_cast<Asn>(64501 + i),
                        {{pfx("10.1.16.0/20"), 24}}, f.repo, f.clock.now());
    }
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_TRUE(alice.alarms().has(AlarmType::MissingInformation));
    EXPECT_TRUE(alice.isPointStale(f.org->pubPointUri()));
    // Her ROA view is the stale one (1 ROA), not a half-applied mixture.
    EXPECT_EQ(alice.validRoas().size(), 1u);
}

TEST(RpEdge, RoaOutsideIssuerSpaceAlarmsChildTooBroad) {
    Fixture f;
    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    // org's key signs a ROA for space org does not hold, and logs it.
    f.clock.advance(1);
    Roa bogus;
    bogus.uri = f.org->pubPointUri() + "bogus.roa";
    bogus.serial = 999;
    bogus.parentUri = f.org->cert().uri;
    bogus.asn = 666;
    bogus.prefixes = {{pfx("99.0.0.0/8"), 8}};
    // Signed with an arbitrary key: RP checks coverage, not ROA signatures
    // (signatures are the manifest's job in the new design).
    Signer key = Signer::generate(5555, 4);
    const Bytes body = bogus.encodeBody();
    bogus.signature = key.sign(ByteView(body.data(), body.size()));
    f.org->unsafeReintroduceFile("bogus.roa", bogus.encode(), f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    const auto alarms = alice.alarms().ofType(AlarmType::ChildTooBroad);
    ASSERT_FALSE(alarms.empty());
    EXPECT_NE(alarms[0].victim.find("bogus.roa"), std::string::npos);
    // The bogus ROA does not enter the valid set.
    for (const auto& roa : alice.validRoas()) {
        EXPECT_NE(roa.uri, bogus.uri);
    }
}

TEST(RpEdge, HashWindowExpiryMakesOldClaimsUnverifiable) {
    // Bob presents a manifest hash from before Alice's tg window: she can
    // no longer vouch for it — the check flags it (unaccountably).
    Fixture f;
    RelyingParty alice = f.rp("alice");
    RelyingParty bob = f.rp("bob");
    alice.sync(f.repo.snapshot(), f.clock.now());
    bob.sync(f.repo.snapshot(), f.clock.now());

    // Time passes beyond tg = 6 with fresh activity for Alice; Bob sleeps.
    for (int i = 0; i < 4; ++i) {
        f.clock.advance(2);
        f.org->issueRoa("r" + std::to_string(i), static_cast<Asn>(64500 + i),
                        {{pfx("10.1.0.0/20"), 24}}, f.repo, f.clock.now());
        alice.sync(f.repo.snapshot(), f.clock.now());
    }
    alice.globalConsistencyCheck(bob.exportManifestClaims(), f.clock.now());
    const auto alarms = alice.alarms().ofType(AlarmType::GlobalInconsistency);
    ASSERT_FALSE(alarms.empty());
    EXPECT_FALSE(alarms[0].accountable)
        << "Bob being ancient is suspicious but not provably the authority's fault";
}

TEST(RpEdge, TwoRelyingPartiesIndependentCaches) {
    // Alarms and staleness are per relying party.
    Fixture f;
    f.org->issueRoa("r", 64500, {{pfx("10.1.0.0/20"), 24}}, f.repo, f.clock.now());
    RelyingParty alice = f.rp("alice");
    RelyingParty bob = f.rp("bob");
    alice.sync(f.repo.snapshot(), f.clock.now());

    Snapshot broken = f.repo.snapshot();
    ASSERT_TRUE(corruptFile(broken, f.org->pubPointUri(), kManifestName, 3));
    bob.sync(broken, f.clock.now());

    EXPECT_EQ(alice.alarms().count(), 0u);
    EXPECT_GT(bob.alarms().count(), 0u);
    EXPECT_EQ(alice.validRoas().size(), 1u);
}

}  // namespace
}  // namespace rpkic
