// Introspection serving plane (src/obs/serve/): address parsing, the
// poll()-based HTTP server's protocol behaviour over real sockets
// (status codes, keep-alive, HEAD, malformed input), the StatusBoard,
// and the IntrospectionServer endpoints — including the acceptance-bar
// property that /metrics stays lint-clean while writers race the scrape.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/serve/http.hpp"
#include "obs/serve/introspect.hpp"

namespace rpkic::obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal blocking test client (keep-alive capable, Content-Length framed).

class Client {
public:
    /// `rcvbufBytes > 0` shrinks SO_RCVBUF before connecting, so the TCP
    /// window throttles the server into many small partial writes (the
    /// slow-reader regression tests below).
    explicit Client(std::uint16_t port, int rcvbufBytes = 0) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ >= 0 && rcvbufBytes > 0) {
            ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbufBytes, sizeof(rcvbufBytes));
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        connected_ =
            fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    }
    ~Client() {
        if (fd_ >= 0) ::close(fd_);
    }
    bool connected() const { return connected_; }
    int fd() const { return fd_; }

    /// Reads up to `want` raw bytes (one recv). <= 0 means error/close.
    ssize_t readSome(char* buf, std::size_t want) { return ::recv(fd_, buf, want, 0); }

    /// Sends a request without reading the response.
    bool sendRaw(const std::string& raw) { return sendAll(raw); }

    /// Hard-aborts the connection: SO_LINGER(0) turns close() into a TCP
    /// RST, the mid-response client crash the server must survive.
    void abortWithRst() {
        if (fd_ < 0) return;
        linger hard{};
        hard.l_onoff = 1;
        hard.l_linger = 0;
        ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
        ::close(fd_);
        fd_ = -1;
    }

    /// Sends raw bytes and reads one Content-Length framed response.
    /// Returns the HTTP status code, 0 on transport error / close.
    int roundTrip(const std::string& raw, std::string* body = nullptr,
                  std::string* head = nullptr) {
        if (!sendAll(raw)) return 0;
        std::string buf;
        std::size_t headerEnd = std::string::npos;
        char chunk[8192];
        while ((headerEnd = buf.find("\r\n\r\n")) == std::string::npos) {
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) return 0;
            buf.append(chunk, static_cast<std::size_t>(n));
        }
        if (head != nullptr) *head = buf.substr(0, headerEnd);
        const std::size_t lenPos = buf.find("Content-Length: ");
        if (lenPos == std::string::npos || lenPos > headerEnd) return 0;
        const std::size_t bodyLen = std::strtoull(buf.c_str() + lenPos + 16, nullptr, 10);
        const std::size_t bodyStart = headerEnd + 4;
        // HEAD responses advertise the body length but never send it.
        const bool isHead = raw.rfind("HEAD ", 0) == 0;
        while (!isHead && buf.size() < bodyStart + bodyLen) {
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) return 0;
            buf.append(chunk, static_cast<std::size_t>(n));
        }
        if (body != nullptr) *body = isHead ? "" : buf.substr(bodyStart, bodyLen);
        if (buf.rfind("HTTP/", 0) != 0) return 0;
        return std::atoi(buf.c_str() + buf.find(' ') + 1);
    }

    int get(const std::string& path, std::string* body = nullptr) {
        return roundTrip("GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n", body);
    }

private:
    bool sendAll(const std::string& data) {
        std::size_t sent = 0;
        while (sent < data.size()) {
            const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, 0);
            if (n <= 0) return false;
            sent += static_cast<std::size_t>(n);
        }
        return true;
    }

    int fd_ = -1;
    bool connected_ = false;
};

// ---------------------------------------------------------------------------
// parseHostPort

TEST(ParseHostPort, AcceptsHostColonPort) {
    std::string host, error;
    std::uint16_t port = 0;
    ASSERT_TRUE(parseHostPort("127.0.0.1:9105", &host, &port, &error)) << error;
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 9105);
}

TEST(ParseHostPort, EmptyHostMeansLoopbackAndZeroMeansEphemeral) {
    std::string host, error;
    std::uint16_t port = 7;
    ASSERT_TRUE(parseHostPort(":0", &host, &port, &error)) << error;
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 0);
}

TEST(ParseHostPort, RejectsMalformedAddresses) {
    std::string host, error;
    std::uint16_t port = 0;
    EXPECT_FALSE(parseHostPort("no-colon", &host, &port, &error));
    EXPECT_FALSE(parseHostPort("h:", &host, &port, &error));
    EXPECT_FALSE(parseHostPort("h:notaport", &host, &port, &error));
    EXPECT_FALSE(parseHostPort("h:65536", &host, &port, &error));
    EXPECT_FALSE(parseHostPort("h:123x", &host, &port, &error));
}

// ---------------------------------------------------------------------------
// HttpServer protocol behaviour (real sockets, ephemeral ports)

TEST(HttpServer, ServesRoutesAnd404sUnknownPaths) {
    HttpServer server;
    server.handle("/hello", [](const HttpRequest&) {
        HttpResponse r;
        r.body = "world\n";
        return r;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;
    ASSERT_NE(server.port(), 0);

    Client c(server.port());
    ASSERT_TRUE(c.connected());
    std::string body;
    EXPECT_EQ(c.get("/hello", &body), 200);
    EXPECT_EQ(body, "world\n");
    EXPECT_EQ(c.get("/nope", &body), 404);
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(HttpServer, KeepAliveServesManyRequestsOnOneConnection) {
    HttpServer server;
    server.handle("/ping", [](const HttpRequest&) {
        HttpResponse r;
        r.body = "pong\n";
        return r;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    Client c(server.port());
    ASSERT_TRUE(c.connected());
    for (int i = 0; i < 10; ++i) {
        std::string body;
        ASSERT_EQ(c.get("/ping", &body), 200) << "request " << i;
        EXPECT_EQ(body, "pong\n");
    }
    EXPECT_EQ(server.requestsServed(), 10u);
    server.stop();
}

TEST(HttpServer, HeadAdvertisesLengthWithoutBody) {
    HttpServer server;
    server.handle("/doc", [](const HttpRequest&) {
        HttpResponse r;
        r.body = "0123456789";
        return r;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    Client c(server.port());
    ASSERT_TRUE(c.connected());
    std::string head;
    EXPECT_EQ(c.roundTrip("HEAD /doc HTTP/1.1\r\nHost: t\r\n\r\n", nullptr, &head), 200);
    EXPECT_NE(head.find("Content-Length: 10"), std::string::npos);
    // The connection stays usable: a follow-up GET reads a full body.
    std::string body;
    EXPECT_EQ(c.get("/doc", &body), 200);
    EXPECT_EQ(body, "0123456789");
    server.stop();
}

TEST(HttpServer, RejectsNonGetMethodsWith405) {
    HttpServer server;
    server.handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    Client c(server.port());
    ASSERT_TRUE(c.connected());
    EXPECT_EQ(c.roundTrip("POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"), 405);
    server.stop();
}

TEST(HttpServer, AnswersMalformedRequestsWith400AndDropsTheSession) {
    HttpServer server;
    server.handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    Client c(server.port());
    ASSERT_TRUE(c.connected());
    EXPECT_EQ(c.roundTrip("this is not http\r\n\r\n"), 400);
    server.stop();
}

TEST(HttpServer, MetersRequestsByPathAndCollapsesUnknownPaths) {
    Registry registry;
    HttpServer::Options options;
    options.registry = &registry;
    HttpServer server(options);
    server.handle("/known", [](const HttpRequest&) { return HttpResponse{}; });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    Client c(server.port());
    ASSERT_TRUE(c.connected());
    EXPECT_EQ(c.get("/known"), 200);
    // Client-controlled targets must not mint one series per path.
    EXPECT_EQ(c.get("/evil-1"), 404);
    EXPECT_EQ(c.get("/evil-2"), 404);
    server.stop();

    const RegistrySnapshot snap = registry.snapshot();
    const FamilySnapshot* requests = snap.find("rc_http_requests_total");
    ASSERT_NE(requests, nullptr);
    double known = 0.0, other = 0.0;
    std::size_t series = 0;
    for (const SeriesSnapshot& s : requests->series) {
        ++series;
        if (s.labels.find("/known") != std::string::npos) known = s.value;
        if (s.labels.find("<other>") != std::string::npos) other = s.value;
    }
    EXPECT_EQ(series, 2u);  // "/known" + "<other>" — never "/evil-*"
    EXPECT_EQ(known, 1.0);
    EXPECT_EQ(other, 2.0);
    const FamilySnapshot* sessions = snap.find("rc_http_sessions_total");
    ASSERT_NE(sessions, nullptr);
    EXPECT_EQ(sessions->series[0].value, 1.0);
}

// ---------------------------------------------------------------------------
// Socket-substrate regression tests (the PR-9 bugfix sweep). Each of
// these fails against the pre-substrate http.cpp: the O(n²) partial-write
// erase, the silent accept() break on EMFILE, and the unhandled
// POLLERR/RST drop path.

/// Current value of `family`, summed over series whose label string
/// contains `labelSubstr` ("" matches every series; 0.0 when absent).
double counterValue(const Registry& registry, const std::string& family,
                    const std::string& labelSubstr) {
    const RegistrySnapshot snap = registry.snapshot();
    const FamilySnapshot* fam = snap.find(family);
    if (fam == nullptr) return 0.0;
    double total = 0.0;
    for (const SeriesSnapshot& s : fam->series) {
        if (labelSubstr.empty() || s.labels.find(labelSubstr) != std::string::npos) {
            total += s.value;
        }
    }
    return total;
}

/// Polls `family`/`labelSubstr` until it reaches `atLeast` or ~5s pass.
bool waitForCounter(const Registry& registry, const std::string& family,
                    const std::string& labelSubstr, double atLeast) {
    for (int i = 0; i < 500; ++i) {
        if (counterValue(registry, family, labelSubstr) >= atLeast) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return counterValue(registry, family, labelSubstr) >= atLeast;
}

TEST(HttpServerRegression, SlowReaderDrainsLargeBodyInLinearTime) {
    // A throttled reader forces thousands of partial writes. The old
    // serveSession erased the sent prefix from the front of the output
    // buffer after EVERY partial write — O(bytes² / chunk) memmove, tens
    // of seconds for this body. The write cursor makes it linear.
    constexpr std::size_t kBody = 64u << 20;  // 64 MiB
    HttpServer::Options options;
    options.sessionSendBuffer = 4096;  // tiny SO_SNDBUF: many small sends
    HttpServer server(options);
    server.handle("/big", [](const HttpRequest&) {
        HttpResponse r;
        r.body.assign(kBody, 'x');
        r.contentType = "application/octet-stream";
        return r;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    Client c(server.port(), /*rcvbufBytes=*/4096);
    ASSERT_TRUE(c.connected());
    const auto start = std::chrono::steady_clock::now();
    std::string body;
    ASSERT_EQ(c.get("/big", &body), 200);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_EQ(body.size(), kBody);
    EXPECT_EQ(body.front(), 'x');
    EXPECT_EQ(body.back(), 'x');
    // Generous for sanitizer builds; the quadratic rewrite blows far past it.
    EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 20);
    server.stop();
}

TEST(HttpServerRegression, AcceptEmfileIsMeteredAndTheListenerRecovers) {
    // Starve the process of file descriptors so accept() fails with
    // EMFILE. The old loop broke out silently and never counted it; the
    // substrate classifies the errno, keeps the listener armed, and backs
    // off briefly so a full table does not hot-spin the poll loop.
    Registry registry;
    HttpServer::Options options;
    options.registry = &registry;
    HttpServer server(options);
    server.handle("/ping", [](const HttpRequest&) {
        HttpResponse r;
        r.body = "pong\n";
        return r;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;
    {
        Client warm(server.port());
        ASSERT_TRUE(warm.connected());
        ASSERT_EQ(warm.get("/ping"), 200);
    }

    rlimit original{};
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &original), 0);
    rlimit capped = original;
    capped.rlim_cur = 128;
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &capped), 0);
    // Fill every free slot under the cap, then free exactly one: the
    // client's socket() takes it, so the server's accept() gets EMFILE.
    std::vector<int> dummies;
    for (int fd = ::dup(0); fd >= 0; fd = ::dup(0)) dummies.push_back(fd);
    if (dummies.empty()) {
        ::setrlimit(RLIMIT_NOFILE, &original);
        server.stop();
        GTEST_SKIP() << "process already holds >=128 fds";
    }
    ::close(dummies.back());
    dummies.pop_back();

    Client starved(server.port(), /*rcvbufBytes=*/0);
    // connect() lands in the listen backlog even though accept() cannot
    // take it yet.
    ASSERT_TRUE(starved.connected());
    EXPECT_TRUE(waitForCounter(registry, "rc_http_accept_errors_total", "emfile", 1.0));

    for (const int fd : dummies) ::close(fd);
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &original), 0);

    // With descriptors available again the backlogged connection is
    // accepted after the cooldown — the listener was never torn down.
    EXPECT_EQ(starved.get("/ping"), 200);
    Client fresh(server.port());
    ASSERT_TRUE(fresh.connected());
    EXPECT_EQ(fresh.get("/ping"), 200);
    server.stop();
}

TEST(HttpServerRegression, ClientAbortMidResponseIsDroppedNotFatal) {
    // The client RSTs the connection while megabytes of response are
    // still queued. The server must observe the error revents / failed
    // send, drop the session with reason=peer-error, and keep serving —
    // not SIGPIPE-die or spin on a dead socket.
    Registry registry;
    HttpServer::Options options;
    options.registry = &registry;
    options.sessionSendBuffer = 4096;
    HttpServer server(options);
    server.handle("/big", [](const HttpRequest&) {
        HttpResponse r;
        r.body.assign(8u << 20, 'y');
        r.contentType = "application/octet-stream";
        return r;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    Client aborter(server.port(), /*rcvbufBytes=*/4096);
    ASSERT_TRUE(aborter.connected());
    ASSERT_TRUE(aborter.sendRaw("GET /big HTTP/1.1\r\nHost: t\r\n\r\n"));
    char chunk[4096];
    ASSERT_GT(aborter.readSome(chunk, sizeof(chunk)), 0);  // response underway
    aborter.abortWithRst();

    EXPECT_TRUE(waitForCounter(registry, "rc_http_sessions_dropped_total",
                               "peer-error", 1.0));
    // The server survived the abort and serves the next client.
    Client fresh(server.port());
    ASSERT_TRUE(fresh.connected());
    std::string body;
    EXPECT_EQ(fresh.roundTrip("GET /big HTTP/1.1\r\nHost: t\r\n\r\n", &body), 200);
    EXPECT_EQ(body.size(), 8u << 20);
    server.stop();
}

// ---------------------------------------------------------------------------
// StatusBoard

TEST(StatusBoard, RendersSortedRowsAndSupportsPrefixRemoval) {
    StatusBoard board;
    board.set("soak/seed-1/round", "12");
    board.set("fleet/seed-2/epoch", "4");
    board.set("soak/seed-1/alarms", "3");
    EXPECT_EQ(board.size(), 3u);
    EXPECT_EQ(board.get("soak/seed-1/round"), "12");
    EXPECT_EQ(board.render(),
              "fleet/seed-2/epoch: 4\n"
              "soak/seed-1/alarms: 3\n"
              "soak/seed-1/round: 12\n");

    board.removePrefix("soak/");
    EXPECT_EQ(board.size(), 1u);
    board.remove("fleet/seed-2/epoch");
    EXPECT_EQ(board.size(), 0u);
    EXPECT_EQ(board.get("missing"), "");
}

// ---------------------------------------------------------------------------
// IntrospectionServer endpoints

TEST(IntrospectionServer, ServesAllFourEndpoints) {
    Registry registry;
    registry.counter("rc_test_ops_total", "ops").inc(5);
    FlightRecorder recorder(64);
    recorder.record(FlightKind::Alarm, "rp", "class=unilateral-revocation");
    StatusBoard status;
    status.set("soak/seed-9/round", "17");

    IntrospectionServer::Options options;
    options.registry = &registry;
    options.recorder = &recorder;
    options.status = &status;
    IntrospectionServer server(options);
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    Client c(server.port());
    ASSERT_TRUE(c.connected());
    std::string body;
    EXPECT_EQ(c.get("/healthz", &body), 200);
    EXPECT_NE(body.find("ok"), std::string::npos);

    EXPECT_EQ(c.get("/metrics", &body), 200);
    EXPECT_NE(body.find("rc_test_ops_total 5"), std::string::npos);
    EXPECT_TRUE(lintPrometheus(body).empty());

    EXPECT_EQ(c.get("/statusz", &body), 200);
    EXPECT_NE(body.find("soak/seed-9/round: 17"), std::string::npos);

    EXPECT_EQ(c.get("/flightz", &body), 200);
    EXPECT_NE(body.find("kind=alarm"), std::string::npos);
    EXPECT_NE(body.find("class=unilateral-revocation"), std::string::npos);

    EXPECT_GE(server.requestsServed(), 4u);
    server.stop();
}

TEST(IntrospectionServer, MetricsStayLintCleanWhileWritersInstrument) {
    Registry registry;
    FlightRecorder recorder(256);
    StatusBoard status;
    IntrospectionServer::Options options;
    options.registry = &registry;
    options.recorder = &recorder;
    options.status = &status;
    IntrospectionServer server(options);
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    // Writers mint new series and hammer a histogram while two scrapers
    // pull /metrics — every body must parse and lint clean (torn-read
    // freedom is Registry::snapshot()'s contract, satellite 1).
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 3; ++w) {
        writers.emplace_back([&, w] {
            Counter& ops = registry.counter("rc_test_writer_ops_total", "ops",
                                            {{"writer", std::to_string(w)}});
            Histogram& lat = registry.histogram("rc_test_writer_seconds", "lat");
            std::uint64_t i = 0;
            while (!stop.load()) {
                ops.inc();
                lat.observe(static_cast<double>(i % 97) / 1000.0);
                status.set("writer/" + std::to_string(w), std::to_string(i));
                recorder.record(FlightKind::LogLine, "test", "i=" + std::to_string(i));
                ++i;
            }
        });
    }

    std::atomic<int> lintProblems{0};
    std::atomic<int> transportErrors{0};
    std::vector<std::thread> scrapers;
    for (int s = 0; s < 2; ++s) {
        scrapers.emplace_back([&] {
            Client c(server.port());
            if (!c.connected()) {
                transportErrors.fetch_add(1);
                return;
            }
            for (int i = 0; i < 40; ++i) {
                std::string body;
                if (c.get("/metrics", &body) != 200) {
                    transportErrors.fetch_add(1);
                    continue;
                }
                const auto problems = lintPrometheus(body);
                lintProblems.fetch_add(static_cast<int>(problems.size()));
                (void)c.get("/flightz", &body);
                (void)c.get("/statusz", &body);
            }
        });
    }
    for (auto& t : scrapers) t.join();
    stop.store(true);
    for (auto& t : writers) t.join();
    server.stop();

    EXPECT_EQ(lintProblems.load(), 0);
    EXPECT_EQ(transportErrors.load(), 0);
}

TEST(IntrospectionServer, ManyConcurrentKeepAliveSessions) {
    IntrospectionServer::Options options;
    Registry registry;
    FlightRecorder recorder(64);
    StatusBoard status;
    options.registry = &registry;
    options.recorder = &recorder;
    options.status = &status;
    IntrospectionServer server(options);
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    // 64 sessions held open at once (the bench pushes this to 256+; the
    // unit test keeps CI fast), each serving several requests.
    constexpr int kSessions = 64;
    std::vector<std::unique_ptr<Client>> clients;
    clients.reserve(kSessions);
    for (int i = 0; i < kSessions; ++i) {
        clients.push_back(std::make_unique<Client>(server.port()));
        ASSERT_TRUE(clients.back()->connected()) << "session " << i;
    }
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < kSessions; ++i) {
            std::string body;
            ASSERT_EQ(clients[i]->get("/healthz", &body), 200)
                << "session " << i << " round " << round;
        }
    }
    EXPECT_GE(server.requestsServed(), static_cast<std::uint64_t>(kSessions * 3));
    server.stop();
}

}  // namespace
}  // namespace rpkic::obs
