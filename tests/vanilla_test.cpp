// The classic (current-spec) RPKI pipeline end to end: tree construction,
// publication, rcynic-style validation, and the paper's four case studies
// reproduced as integration tests (§3.2).
#include "vanilla/validation.hpp"

#include <gtest/gtest.h>

#include "detector/diff.hpp"
#include "rpki/chaos.hpp"
#include "vanilla/classic_tree.hpp"

namespace rpkic {
namespace {

using vanilla::ClassicTree;
using vanilla::ClassicTreeOptions;
using vanilla::Options;
using vanilla::ProblemKind;
using vanilla::Result;
using vanilla::validateSnapshot;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

/// ARIN -> Sprint -> (ROAs), the shape of Figure 1.
ClassicTree figure1Tree() {
    ClassicTree tree;
    tree.addTrustAnchor("arin", ResourceSet::ofPrefixes({pfx("0.0.0.0/0")}));
    tree.addChild("arin", "sprint", ResourceSet::ofPrefixes({pfx("63.160.0.0/12")}));
    tree.addRoa("sprint", "as1239", 1239, {{pfx("63.160.0.0/12"), 24}});
    tree.addChild("sprint", "continental",
                  ResourceSet::ofPrefixes({pfx("63.168.93.0/24"), pfx("63.174.16.0/20")}));
    tree.addRoa("continental", "as7341", 7341,
                {{pfx("63.168.93.0/24"), 24}, {pfx("63.174.16.0/20"), 24}});
    return tree;
}

Result validateTree(ClassicTree& tree, Time now) {
    Repository repo;
    tree.publish(repo, now);
    return validateSnapshot(repo.snapshot(), tree.trustAnchors(), Options{.now = now});
}

TEST(Vanilla, HappyPathValidatesWholeTree) {
    ClassicTree tree = figure1Tree();
    const Result r = validateTree(tree, 0);
    EXPECT_TRUE(r.problems.empty()) << (r.problems.empty() ? "" : r.problems[0].str());
    EXPECT_EQ(r.certs.size(), 3u);  // arin, sprint, continental
    EXPECT_EQ(r.roas.size(), 2u);
    EXPECT_EQ(r.certCountAtDepth(0), 1u);
    EXPECT_EQ(r.certCountAtDepth(1), 1u);
    EXPECT_EQ(r.certCountAtDepth(2), 1u);
    EXPECT_EQ(r.roaCountAtDepth(2), 1u);
    EXPECT_EQ(r.roaCountAtDepth(3), 1u);

    // Route classification off the validated ROA set.
    const PrefixValidityIndex idx(r.roaState());
    EXPECT_EQ(idx.classify({pfx("63.174.16.0/20"), 7341}), RouteValidity::Valid);
    EXPECT_EQ(idx.classify({pfx("63.174.16.0/20"), 666}), RouteValidity::Invalid);
}

TEST(Vanilla, InheritResourcesResolveThroughParent) {
    ClassicTree tree;
    tree.addTrustAnchor("ripe", ResourceSet::ofPrefixes({pfx("5.0.0.0/8")}));
    tree.addChild("ripe", "intermediate", ResourceSet::inherit());
    tree.addRoa("intermediate", "r1", 3333, {{pfx("5.5.0.0/16"), 24}});
    const Result r = validateTree(tree, 0);
    EXPECT_TRUE(r.problems.empty());
    EXPECT_EQ(r.roas.size(), 1u);
}

TEST(Vanilla, ChildExceedingParentResourcesRejected) {
    ClassicTree tree;
    tree.addTrustAnchor("ta", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}));
    tree.addChild("ta", "greedy", ResourceSet::ofPrefixes({pfx("11.0.0.0/8")}));
    const Result r = validateTree(tree, 0);
    EXPECT_TRUE(r.hasProblem(ProblemKind::NotCoveredByParent));
    EXPECT_EQ(r.certs.size(), 1u);  // only the TA
}

TEST(Vanilla, RoaOutsideIssuerResourcesRejected) {
    ClassicTree tree;
    tree.addTrustAnchor("ta", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}));
    tree.addRoa("ta", "bogon", 1, {{pfx("12.0.0.0/8"), 8}});
    const Result r = validateTree(tree, 0);
    EXPECT_TRUE(r.hasProblem(ProblemKind::NotCoveredByParent));
    EXPECT_TRUE(r.roas.empty());
}

TEST(Vanilla, RevokedChildIsWhacked) {
    ClassicTree tree = figure1Tree();
    tree.revokeChild("sprint", "continental");
    const Result r = validateTree(tree, 0);
    EXPECT_TRUE(r.hasProblem(ProblemKind::Revoked));
    EXPECT_EQ(r.certs.size(), 2u);
    EXPECT_EQ(r.roas.size(), 1u);  // continental's ROA gone with it
}

TEST(Vanilla, CaseStudy1AddedRoaMisconfiguration) {
    // A new ROA (173.251.0.0/17, max 24, AS 6128) downgrades legitimate
    // /24 routes from unknown to invalid.
    ClassicTree tree;
    tree.addTrustAnchor("arin", ResourceSet::ofPrefixes({pfx("0.0.0.0/0")}));
    tree.addChild("arin", "org6128", ResourceSet::ofPrefixes({pfx("173.251.0.0/17")}));

    Repository repo;
    tree.publish(repo, 0);
    const Result before =
        validateSnapshot(repo.snapshot(), tree.trustAnchors(), Options{.now = 0});

    tree.addRoa("org6128", "misconfig", 6128, {{pfx("173.251.0.0/17"), 24}});
    tree.publish(repo, 1);
    const Result after =
        validateSnapshot(repo.snapshot(), tree.trustAnchors(), Options{.now = 1});

    const DowngradeReport report = diffStates(before.roaState(), after.roaState());
    const PrefixValidityIndex idx(after.roaState());
    EXPECT_EQ(idx.classify({pfx("173.251.91.0/24"), 53725}), RouteValidity::Invalid);
    EXPECT_EQ(idx.classify({pfx("173.251.54.0/24"), 13599}), RouteValidity::Invalid);
    EXPECT_EQ(report.invalidAddressesAfter - report.invalidAddressesBefore, 32768u);
}

TEST(Vanilla, CaseStudy2DeletedRoa) {
    // Deleting a ROA whose prefix has a covering ROA downgrades the route
    // valid -> invalid, with no alarm in the classic RPKI.
    ClassicTree tree;
    tree.addTrustAnchor("ripe", ResourceSet::ofPrefixes({pfx("79.0.0.0/8")}));
    tree.addChild("ripe", "ruIsp", ResourceSet::ofPrefixes({pfx("79.139.96.0/19")}));
    tree.addRoa("ruIsp", "covering", 43782, {{pfx("79.139.96.0/19"), 20}});
    tree.addRoa("ruIsp", "victim", 51813, {{pfx("79.139.96.0/24"), 24}});

    Repository repo;
    tree.publish(repo, 0);
    const Result before =
        validateSnapshot(repo.snapshot(), tree.trustAnchors(), Options{.now = 0});
    ASSERT_TRUE(before.problems.empty());

    tree.deleteRoa("ruIsp", "victim");
    tree.publish(repo, 1);
    const Result after =
        validateSnapshot(repo.snapshot(), tree.trustAnchors(), Options{.now = 1});
    // Manifest is consistent with the deletion: relying parties accept the
    // change without complaint.
    EXPECT_TRUE(after.problems.empty());

    const DowngradeReport report = diffStates(before.roaState(), after.roaState());
    EXPECT_EQ(report.validToInvalidPairs, 1u);
    ASSERT_FALSE(report.tupleTransitions.empty());
    EXPECT_EQ(report.tupleTransitions[0].route.str(), "79.139.96.0/24 AS51813");
    EXPECT_EQ(report.tupleTransitions[0].after, RouteValidity::Invalid);
}

TEST(Vanilla, CaseStudy3OverwrittenParentRc) {
    // An RC allocated 196.6.174.0/23 is overwritten with one for an IPv6
    // prefix; the ROA under it (still in the publication point) is whacked
    // because it is no longer covered.
    ClassicTree tree;
    tree.addTrustAnchor("afrinic", ResourceSet::ofPrefixes(
                                       {pfx("196.0.0.0/8"), pfx("2c0f::/16")}));
    tree.addChild("afrinic", "ng-backbone", ResourceSet::ofPrefixes({pfx("196.6.174.0/23")}));
    tree.addRoa("ng-backbone", "victim", 37688, {{pfx("196.6.174.0/23"), 24}});

    Repository repo;
    tree.publish(repo, 0);
    const Result before =
        validateSnapshot(repo.snapshot(), tree.trustAnchors(), Options{.now = 0});
    ASSERT_TRUE(before.problems.empty());
    ASSERT_EQ(before.roas.size(), 1u);

    tree.overwriteChildResources("afrinic", "ng-backbone",
                                 ResourceSet::ofPrefixes({pfx("2c0f:f668::/32")}));
    tree.publish(repo, 1);
    const Result after =
        validateSnapshot(repo.snapshot(), tree.trustAnchors(), Options{.now = 1});
    EXPECT_TRUE(after.hasProblem(ProblemKind::NotCoveredByParent));
    EXPECT_TRUE(after.roas.empty());

    // Jan 6: the overwritten RC issues IPv6 ROAs to a different AS.
    tree.addRoa("ng-backbone", "mu-isp", 37600, {{pfx("2c0f:f668::/32"), 32}});
    tree.publish(repo, 2);
    const Result later =
        validateSnapshot(repo.snapshot(), tree.trustAnchors(), Options{.now = 2});
    EXPECT_EQ(later.roas.size(), 1u);
    EXPECT_EQ(later.roas[0].roa.asn, 37600u);
}

TEST(Vanilla, CaseStudy4StaleManifestWhacksSubtree) {
    // LACNIC's intermediate RC manifests expire; the relying party rejects
    // the whole subtree and its routes downgrade valid -> unknown.
    ClassicTree tree;
    tree.addTrustAnchor("lacnic", ResourceSet::ofPrefixes({pfx("200.0.0.0/8")}));
    tree.addChild("lacnic", "intermediate", ResourceSet::inherit());
    tree.addRoa("intermediate", "r1", 28000, {{pfx("200.1.0.0/16"), 24}});
    tree.addRoa("intermediate", "r2", 28001, {{pfx("200.2.0.0/16"), 24}});

    Repository repo;
    tree.publish(repo, 0);
    const Result day0 = validateSnapshot(repo.snapshot(), tree.trustAnchors(), Options{.now = 0});
    ASSERT_TRUE(day0.problems.empty());
    ASSERT_EQ(day0.roas.size(), 2u);

    // The intermediate stops republishing; a day later its manifest is stale.
    tree.freeze("intermediate");
    tree.publish(repo, 1);
    const Result day1 = validateSnapshot(repo.snapshot(), tree.trustAnchors(), Options{.now = 1});
    EXPECT_TRUE(day1.hasProblem(ProblemKind::StaleManifest));
    EXPECT_TRUE(day1.roas.empty());

    // Routes downgrade valid -> unknown (not invalid): no covering ROA
    // remains. That is the Figure-4 Dec-20 dip.
    const DowngradeReport report = diffStates(day0.roaState(), day1.roaState());
    EXPECT_GT(report.validToUnknownPairs, 0u);
    EXPECT_EQ(report.validToInvalidPairs, 0u);
    EXPECT_LT(report.invalidAddressesAfter, report.invalidAddressesBefore);

    // Under the lenient policy the subtree is still processed.
    const Result lenient = validateSnapshot(
        repo.snapshot(), tree.trustAnchors(),
        Options{.now = 1, .staleManifestIsFatal = false});
    EXPECT_TRUE(lenient.hasProblem(ProblemKind::StaleManifest));
    EXPECT_EQ(lenient.roas.size(), 2u);
}

TEST(Vanilla, CorruptedRoaIsWhacked) {
    // §3.2.2: a third party corrupting one bit whacks the ROA (hash
    // mismatch against the manifest).
    ClassicTree tree = figure1Tree();
    Repository repo;
    tree.publish(repo, 0);
    Snapshot snap = repo.snapshot();
    ASSERT_TRUE(corruptFile(snap, tree.pubPointOf("continental"), "as7341.roa", 40));
    const Result r = validateSnapshot(snap, tree.trustAnchors(), Options{.now = 0});
    EXPECT_TRUE(r.hasProblem(ProblemKind::HashMismatch));
    EXPECT_EQ(r.roas.size(), 1u);  // sprint's ROA survives
}

TEST(Vanilla, DroppedObjectRaisesMissing) {
    ClassicTree tree = figure1Tree();
    Repository repo;
    tree.publish(repo, 0);
    Snapshot snap = repo.snapshot();
    ASSERT_TRUE(dropFile(snap, tree.pubPointOf("continental"), "as7341.roa"));
    const Result r = validateSnapshot(snap, tree.trustAnchors(), Options{.now = 0});
    EXPECT_TRUE(r.hasProblem(ProblemKind::MissingObject));
}

TEST(Vanilla, MissingPointReported) {
    ClassicTree tree = figure1Tree();
    Repository repo;
    tree.publish(repo, 0);
    Snapshot snap = repo.snapshot();
    snap.points.erase(tree.pubPointOf("continental"));
    const Result r = validateSnapshot(snap, tree.trustAnchors(), Options{.now = 0});
    EXPECT_TRUE(r.hasProblem(ProblemKind::MissingPoint));
}

TEST(Vanilla, CorruptManifestInvalidatesPoint) {
    ClassicTree tree = figure1Tree();
    Repository repo;
    tree.publish(repo, 0);
    Snapshot snap = repo.snapshot();
    ASSERT_TRUE(corruptFile(snap, tree.pubPointOf("sprint"), kManifestName, 10));
    const Result r = validateSnapshot(snap, tree.trustAnchors(), Options{.now = 0});
    EXPECT_TRUE(r.hasProblem(ProblemKind::InvalidManifest) ||
                r.hasProblem(ProblemKind::MalformedObject));
    // Sprint's subtree is gone.
    EXPECT_EQ(r.roas.size(), 0u);
}

TEST(Vanilla, TrustAnchorMustBeSelfConsistent) {
    ClassicTree tree = figure1Tree();
    Repository repo;
    tree.publish(repo, 0);
    std::vector<ResourceCert> tas = tree.trustAnchors();
    tas[0].serial += 1;  // breaks the self-signature
    const vanilla::Result r =
        validateSnapshot(repo.snapshot(), tas, Options{.now = 0});
    EXPECT_TRUE(r.hasProblem(ProblemKind::BadSignature));
    EXPECT_TRUE(r.certs.empty());
}

}  // namespace
}  // namespace rpkic
