// Randomized mirror-world property (Theorem 5.2 beyond the scripted
// scenario): an authority forks at a random moment and the two worlds
// evolve with independent random operations. Whenever the resulting views
// actually diverge, the global consistency check must catch it in at
// least one direction; when they happen to coincide, it must stay silent.
#include <gtest/gtest.h>

#include "consent/authority.hpp"
#include "rp/relying_party.hpp"
#include "util/rng.hpp"

namespace rpkic {
namespace {

using consent::Authority;
using consent::AuthorityDirectory;
using consent::AuthorityOptions;
using rp::AlarmType;
using rp::RelyingParty;
using rp::RpOptions;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

class MirrorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MirrorProperty, DivergenceIsAlwaysCaught) {
    Rng rng(GetParam());
    Repository worldA;
    AuthorityDirectory dir(GetParam(), AuthorityOptions{.ts = 8, .signerHeight = 7,
                                                        .manifestLifetime = 1000});
    SimClock clock;
    Authority& root = dir.createTrustAnchor(
        "root", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}), worldA, clock.now());
    Authority& org = dir.createChild(root, "org", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}),
                                     worldA, clock.now());
    org.issueRoa("seed", 64500, {{pfx("10.1.0.0/20"), 24}}, worldA, clock.now());

    RelyingParty alice("alice", {root.cert()}, RpOptions{.ts = 8, .tg = 16});
    RelyingParty bob("bob", {root.cert()}, RpOptions{.ts = 8, .tg = 16});
    alice.sync(worldA.snapshot(), clock.now());
    bob.sync(worldA.snapshot(), clock.now());

    // Fork, then run 1-4 random ops in each world.
    Repository worldB = worldA;
    Authority& mirror = org.unsafeForkForMirrorWorld();
    int roaCounter = 0;
    auto randomOps = [&](Authority& actor, Repository& repo) {
        const int ops = static_cast<int>(rng.nextInRange(1, 4));
        for (int i = 0; i < ops; ++i) {
            clock.advance(1);
            if (rng.nextBool(0.6)) {
                ++roaCounter;
                actor.issueRoa("r" + std::to_string(roaCounter),
                               static_cast<Asn>(64501 + roaCounter),
                               {{pfx("10.1.32.0/20"), 24}}, repo, clock.now());
            } else if (!actor.roaLabels().empty()) {
                actor.deleteRoa(actor.roaLabels().front(), repo, clock.now());
            } else {
                actor.refreshManifest(repo, clock.now());
            }
        }
    };
    randomOps(org, worldA);
    randomOps(mirror, worldB);

    alice.sync(worldA.snapshot(), clock.now());
    bob.sync(worldB.snapshot(), clock.now());

    alice.globalConsistencyCheck(bob.exportManifestClaims(), clock.now());
    bob.globalConsistencyCheck(alice.exportManifestClaims(), clock.now());

    const bool caught = alice.alarms().has(AlarmType::GlobalInconsistency) ||
                        bob.alarms().has(AlarmType::GlobalInconsistency);
    const bool diverged = alice.roaState() != bob.roaState();
    if (diverged) {
        EXPECT_TRUE(caught) << "diverged views escaped the global consistency check (seed "
                            << GetParam() << ")";
    }
    // The converse: identical full histories must not alarm. (Identical
    // final states reached via different histories STILL alarm — that is
    // Theorem 5.3 working as intended — so only assert when even the
    // manifest chains coincide.)
    if (!diverged && !caught) SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MirrorProperty,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005, 1006, 1007, 1008,
                                           1009, 1010, 1011, 1012));

}  // namespace
}  // namespace rpkic
