// Detector parallelization suite:
//  * differential: DowngradeReports are byte-identical (serializeReport)
//    across thread counts {1,2,4,8} over 32 randomized seeds;
//  * competing-ROA regression: the prefix-indexed walk reproduces the
//    historical quadratic scan's output exactly (contents AND order), and
//    the superlinear blowup is gone (a ~50k-tuple corpus finishes in
//    seconds instead of hours);
//  * prefixCount exactness at the 2^53+1 double-precision boundary, plus
//    full-/0-triangle and empty-set edge cases;
//  * the intersect-count <= source-count invariant the IPv6 diff path now
//    RC_CHECKs instead of clamping;
//  * shared-state semantics: indexes alias one RpkiState instead of
//    copying the tuple vector.
#include "detector/diff.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace rpkic {
namespace {

RpkiState randomState(Rng& rng, std::size_t tuples, bool withV6) {
    std::vector<RoaTuple> out;
    out.reserve(tuples);
    for (std::size_t i = 0; i < tuples; ++i) {
        const Asn asn = static_cast<Asn>(1 + rng.nextBelow(40));
        if (withV6 && rng.nextBool(0.25)) {
            const int len = static_cast<int>(rng.nextInRange(16, 64));
            const U128 addr{rng.nextU64(), rng.nextU64()};
            const auto maxLen = static_cast<std::uint8_t>(
                rng.nextInRange(static_cast<std::uint64_t>(len),
                                static_cast<std::uint64_t>(std::min(len + 16, 128))));
            out.push_back({IpPrefix::v6(addr, len), maxLen, asn});
        } else {
            const int len = static_cast<int>(rng.nextInRange(8, 28));
            const auto addr = static_cast<std::uint32_t>(rng.nextU64());
            const auto maxLen = static_cast<std::uint8_t>(
                rng.nextInRange(static_cast<std::uint64_t>(len), 32));
            out.push_back({IpPrefix::v4(addr, len), maxLen, asn});
        }
    }
    return RpkiState(std::move(out));
}

// Drops ~20% of `base` and adds `churn` fresh tuples: consecutive
// snapshots share most of their content, like real RPKI days.
RpkiState churned(Rng& rng, const RpkiState& base, std::size_t churn, bool withV6) {
    std::vector<RoaTuple> out;
    for (const auto& t : base.tuples()) {
        if (!rng.nextBool(0.2)) out.push_back(t);
    }
    const RpkiState fresh = randomState(rng, churn, withV6);
    out.insert(out.end(), fresh.tuples().begin(), fresh.tuples().end());
    return RpkiState(std::move(out));
}

TEST(DetectorParallel, ReportsAreByteIdenticalAcrossThreadCounts) {
    rc::parallel::Pool sequential(1);
    rc::parallel::Pool two(2);
    rc::parallel::Pool four(4);
    rc::parallel::Pool eight(8);

    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        Rng rng(seed);
        const auto prevState = std::make_shared<const RpkiState>(randomState(rng, 300, true));
        const auto curState =
            std::make_shared<const RpkiState>(churned(rng, *prevState, 60, true));

        const PrefixValidityIndex prevSeq(prevState, sequential);
        const PrefixValidityIndex curSeq(curState, sequential);
        const std::string baseline =
            serializeReport(diffStates(prevSeq, curSeq, 8, sequential));

        for (rc::parallel::Pool* pool : {&two, &four, &eight}) {
            const PrefixValidityIndex prevPar(prevState, *pool);
            const PrefixValidityIndex curPar(curState, *pool);
            const std::string parallel =
                serializeReport(diffStates(prevPar, curPar, 8, *pool));
            ASSERT_EQ(parallel, baseline)
                << "seed " << seed << " threads " << pool->threads();
        }
    }
}

// The historical nested-loop scan, kept as the test oracle for the
// prefix-indexed replacement.
std::vector<CompetingRoa> competingRoasQuadratic(const RpkiState& prev, const RpkiState& cur) {
    std::vector<CompetingRoa> out;
    for (const auto& added : cur.minus(prev)) {
        for (const auto& existing : prev.tuples()) {
            if (existing.asn == added.asn) continue;
            if (existing.prefix.covers(added.prefix)) out.push_back({added, existing});
        }
    }
    return out;
}

TEST(CompetingRoas, IndexedWalkMatchesQuadraticOracleOnRandomCorpora) {
    rc::parallel::Pool pool(4);
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        Rng rng(seed * 977);
        const RpkiState prev = randomState(rng, 250, true);
        const RpkiState cur = churned(rng, prev, 80, true);
        const std::vector<CompetingRoa> fast = findCompetingRoas(prev, cur, pool);
        const std::vector<CompetingRoa> slow = competingRoasQuadratic(prev, cur);
        ASSERT_EQ(fast.size(), slow.size()) << "seed " << seed;
        for (std::size_t i = 0; i < fast.size(); ++i) {
            ASSERT_EQ(fast[i], slow[i]) << "seed " << seed << " entry " << i
                                        << " (order must match the historical scan)";
        }
    }
}

TEST(CompetingRoas, NestedRoasAcrossFamilies) {
    rc::parallel::Pool pool(1);
    const RpkiState prev({
        {IpPrefix::parse("10.0.0.0/8"), 8, 100},
        {IpPrefix::parse("10.0.0.0/16"), 16, 200},
        {IpPrefix::parse("2001:db8::/32"), 32, 300},
    });
    const RpkiState cur({
        {IpPrefix::parse("10.0.0.0/8"), 8, 100},
        {IpPrefix::parse("10.0.0.0/16"), 16, 200},
        {IpPrefix::parse("2001:db8::/32"), 32, 300},
        {IpPrefix::parse("10.0.1.0/24"), 24, 999},      // contests both v4 ROAs
        {IpPrefix::parse("2001:db8:1::/48"), 48, 888},  // contests the v6 ROA only
    });
    const auto got = findCompetingRoas(prev, cur, pool);
    ASSERT_EQ(got, competingRoasQuadratic(prev, cur));
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].added.asn, 999u);
    EXPECT_EQ(got[2].added.asn, 888u);
    EXPECT_EQ(got[2].existing.asn, 300u);
}

TEST(CompetingRoas, LargeCorpusFinishesFast) {
    // Bench guard for the quadratic-scan bugfix: ~50k prev tuples and
    // ~50k added tuples under one covering /8 per AS. The old
    // O(|added| * |prev|) scan needs ~2.4e9 covers() calls here; the
    // indexed walk does ~33 probes per added tuple. The 20 s ceiling is
    // deliberately generous for slow CI machines while still being
    // orders of magnitude below the quadratic cost.
    std::vector<RoaTuple> prevTuples;
    prevTuples.reserve(50000);
    // 256 covering /8s under alternating ASes, then dense disjoint /24s.
    for (std::uint32_t i = 0; i < 256; ++i) {
        prevTuples.push_back(
            {IpPrefix::v4(i << 24, 8), 8, static_cast<Asn>(1 + (i % 2))});
    }
    for (std::uint32_t i = 0; i < 49744; ++i) {
        prevTuples.push_back({IpPrefix::v4(i << 8, 24), 24, 3});
    }
    std::vector<RoaTuple> curTuples = prevTuples;
    for (std::uint32_t i = 0; i < 50000; ++i) {
        curTuples.push_back({IpPrefix::v4((i << 8) | (1u << 31), 25), 25,
                             static_cast<Asn>(4 + (i % 5))});
    }
    const RpkiState prev(std::move(prevTuples));
    const RpkiState cur(std::move(curTuples));

    rc::parallel::Pool pool(2);
    const auto start = std::chrono::steady_clock::now();
    const auto competing = findCompetingRoas(prev, cur, pool);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    // Every added /25 sits under exactly one /8 of a different AS (and
    // under a /24 of AS 3 where one exists).
    EXPECT_GE(competing.size(), 50000u);
    EXPECT_LT(elapsed, 20000) << "competing-ROA scan has gone superlinear again";
}

TEST(PrefixCount, ExactAboveTheDoubleBoundary) {
    // 2^53 + 1 level-60 blocks: the first integer a double cannot
    // represent. The integer path must count it exactly; the legacy
    // double path rounds to 2^53 — which is precisely the bug this guards
    // against.
    using WideSet = BasicTriangleSet<std::uint64_t, 60>;
    WideSet::RawLevels raw;
    raw[60].push_back({0, (1ull << 53)});  // 2^53 + 1 addresses at level 60
    const WideSet t = WideSet::build(raw);
    EXPECT_EQ(t.prefixCount(), (1ull << 53) + 1);
    EXPECT_EQ(static_cast<std::uint64_t>(t.prefixCountDouble()), 1ull << 53)
        << "the double path rounds; if this starts matching, the guard is dead";
}

TEST(PrefixCount, FullAndEmptyTriangles) {
    // A /0-rooted IPv4 triangle down to /32 holds every prefix: 2^33 - 1.
    const PrefixValidityIndex idx(RpkiState({{IpPrefix::parse("0.0.0.0/0"), 32, 1}}));
    EXPECT_EQ(idx.validTriangles(1).prefixCount(), (1ull << 33) - 1);
    EXPECT_EQ(idx.knownTriangles().prefixCount(), (1ull << 33) - 1);
    // Top-level interval arithmetic must dodge the full-width +1 overflow.
    EXPECT_EQ(idx.knownTriangles().level(0).countU64(), 1ull << 32);

    EXPECT_EQ(TriangleSet{}.prefixCount(), 0u);
    EXPECT_TRUE(TriangleSet{}.empty());

    const PrefixValidityIndex one(RpkiState({{IpPrefix::parse("0.0.0.0/0"), 0, 1}}));
    EXPECT_EQ(one.validTriangles(1).prefixCount(), 1u);
}

TEST(PrefixCount, V6SaturatesInsteadOfWrapping) {
    // The full IPv6 known triangle has ~2^129 nodes: no integer width
    // holds it, so the uint64 view must saturate, not wrap.
    const PrefixValidityIndex idx(RpkiState({{IpPrefix::parse("::/0"), 128, 1}}));
    EXPECT_EQ(idx.validTriangles6(1).prefixCount(),
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_GT(idx.validTriangles6(1).prefixCountDouble(), 1e38);
}

TEST(TriangleInvariant, IntersectNeverExceedsSource) {
    // The property behind the diff engine's RC_CHECK (formerly a silent
    // clamp): |A ∩ B| <= |A| per level and in total, over random v6
    // triangle unions.
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        Rng rng(seed * 31);
        const RpkiState a = randomState(rng, 80, true);
        const RpkiState b = randomState(rng, 80, true);
        const PrefixValidityIndex ia(a), ib(b);
        for (const Asn asn : ia.asns()) {
            const TriangleSet6& src = ia.validTriangles6(asn);
            const TriangleSet6 both = src.intersect(ib.knownTriangles6());
            EXPECT_LE(both.prefixCountDouble(), src.prefixCountDouble())
                << "seed " << seed << " AS " << asn;
            for (int q = 0; q <= TriangleSet6::kMaxLen; ++q) {
                ASSERT_LE(both.level(q).countDouble(), src.level(q).countDouble());
            }
        }
        // And the full diff path runs its RC_CHECK without firing.
        const DowngradeReport rep = diffStates(a, b, 4);
        (void)rep;
    }
}

TEST(SharedState, IndexAliasesTheStateInsteadOfCopying) {
    const auto state = std::make_shared<const RpkiState>(
        RpkiState({{IpPrefix::parse("10.0.0.0/8"), 16, 7}}));
    const PrefixValidityIndex idx(state);
    EXPECT_EQ(&idx.state(), state.get()) << "index must alias, not copy, the snapshot";
    EXPECT_EQ(idx.stateHandle().get(), state.get());

    // Two indexes over the same snapshot share one tuple vector.
    const PrefixValidityIndex again(idx.stateHandle());
    EXPECT_EQ(&again.state(), &idx.state());
    EXPECT_GE(state.use_count(), 3);

    // The copying constructor still works for callers that hand in a
    // temporary.
    const PrefixValidityIndex copied(*state);
    EXPECT_NE(&copied.state(), state.get());
    EXPECT_EQ(copied.classify({IpPrefix::parse("10.0.0.0/12"), 7}), RouteValidity::Valid);
}

}  // namespace
}  // namespace rpkic
