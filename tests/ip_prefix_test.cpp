// IpPrefix parsing, printing, cover semantics (paper §2.1), and U128
// arithmetic.
#include "ip/prefix.hpp"

#include <gtest/gtest.h>

#include "util/errors.hpp"

namespace rpkic {
namespace {

TEST(U128, Arithmetic) {
    const U128 a{0, ~0ULL};
    const U128 oneHi{1, 0};
    const U128 fiveHi{5, 0};
    const U128 topBit{0x8000000000000000ULL, 0};
    EXPECT_EQ(a + U128(1), oneHi);
    EXPECT_EQ(oneHi - U128(1), a);
    EXPECT_EQ(U128(5) << 64, fiveHi);
    EXPECT_EQ(fiveHi >> 64, U128(5));
    EXPECT_EQ(U128::max() >> 127, U128(1));
    EXPECT_EQ(U128(1) << 127, topBit);
    EXPECT_LT(U128(1), oneHi);
    EXPECT_EQ(~U128(0), U128::max());
}

TEST(IpPrefix, ParseAndPrintV4) {
    const IpPrefix p = IpPrefix::parse("63.160.0.0/12");
    EXPECT_EQ(p.family, IpFamily::v4);
    EXPECT_EQ(p.length, 12);
    EXPECT_EQ(p.str(), "63.160.0.0/12");
    EXPECT_EQ(IpPrefix::parse("0.0.0.0/0").str(), "0.0.0.0/0");
    EXPECT_EQ(IpPrefix::parse("255.255.255.255/32").str(), "255.255.255.255/32");
}

TEST(IpPrefix, ParseRejectsMalformedV4) {
    EXPECT_THROW(IpPrefix::parse("10.0.0.0"), ParseError);
    EXPECT_THROW(IpPrefix::parse("10.0.0/8"), ParseError);
    EXPECT_THROW(IpPrefix::parse("10.0.0.256/8"), ParseError);
    EXPECT_THROW(IpPrefix::parse("10.0.0.0/33"), ParseError);
    EXPECT_THROW(IpPrefix::parse("10.0.0.0/-1"), ParseError);
    EXPECT_THROW(IpPrefix::parse("10.0.0.0.0/8"), ParseError);
}

TEST(IpPrefix, ParseAndPrintV6) {
    const IpPrefix p = IpPrefix::parse("2c0f:f668::/32");
    EXPECT_EQ(p.family, IpFamily::v6);
    EXPECT_EQ(p.length, 32);
    EXPECT_EQ(p.str(), "2c0f:f668::/32");
    EXPECT_EQ(IpPrefix::parse("::/0").str(), "::/0");
    const IpPrefix full = IpPrefix::parse("1:2:3:4:5:6:7:8/128");
    EXPECT_EQ(full.str(), "1:2:3:4:5:6:7:8/128");
}

TEST(IpPrefix, ParseRejectsMalformedV6) {
    EXPECT_THROW(IpPrefix::parse("1::2::3/64"), ParseError);
    EXPECT_THROW(IpPrefix::parse("1:2:3:4:5:6:7:8:9/64"), ParseError);
    EXPECT_THROW(IpPrefix::parse("12345::/64"), ParseError);
    EXPECT_THROW(IpPrefix::parse("2c0f:f668::/129"), ParseError);
}

TEST(IpPrefix, CoverRelationFromPaper) {
    // "63.160.0.0/12 covers 63.160.1.0/24" and "P = pi" also counts.
    const IpPrefix p12 = IpPrefix::parse("63.160.0.0/12");
    const IpPrefix p24 = IpPrefix::parse("63.160.1.0/24");
    EXPECT_TRUE(p12.covers(p24));
    EXPECT_FALSE(p24.covers(p12));
    EXPECT_TRUE(p12.covers(p12));
    EXPECT_FALSE(p12.covers(IpPrefix::parse("63.128.0.0/12")));
    // Cross-family never covers.
    EXPECT_FALSE(p12.covers(IpPrefix::parse("::/0")));
    EXPECT_FALSE(IpPrefix::parse("::/0").covers(p12));
}

TEST(IpPrefix, CaseStudy2Coverage) {
    // Case Study 2: 79.139.96.0/19 covers 79.139.96.0/24.
    EXPECT_TRUE(IpPrefix::parse("79.139.96.0/19").covers(IpPrefix::parse("79.139.96.0/24")));
    EXPECT_TRUE(IpPrefix::parse("79.139.96.0/20").covers(IpPrefix::parse("79.139.96.0/24")));
}

TEST(IpPrefix, Canonicalization) {
    const IpPrefix messy = IpPrefix::v4(0x0a0000ffu, 24);
    EXPECT_TRUE(messy.isCanonical());  // v4() canonicalizes
    EXPECT_EQ(messy.str(), "10.0.0.0/24");

    IpPrefix raw;
    raw.family = IpFamily::v4;
    raw.addr = U128{0, 0x0a0000ffu};
    raw.length = 24;
    EXPECT_FALSE(raw.isCanonical());
    EXPECT_TRUE(raw.canonicalized().isCanonical());
}

TEST(IpPrefix, FirstLastAddressCount) {
    const IpPrefix p = IpPrefix::parse("173.251.0.0/17");
    EXPECT_EQ(p.firstAddress().toU64(), 0xADFB0000ULL);
    EXPECT_EQ(p.lastAddress().toU64(), 0xADFB7FFFULL);
    EXPECT_DOUBLE_EQ(p.addressCount(), 32768.0);
    EXPECT_DOUBLE_EQ(IpPrefix::parse("0.0.0.0/0").addressCount(), 4294967296.0);
}

TEST(IpPrefix, Children) {
    const IpPrefix p = IpPrefix::parse("10.0.0.0/8");
    EXPECT_EQ(p.child(0).str(), "10.0.0.0/9");
    EXPECT_EQ(p.child(1).str(), "10.128.0.0/9");
    EXPECT_THROW(IpPrefix::parse("1.2.3.4/32").child(0), UsageError);
}

TEST(IpPrefix, Overlaps) {
    const IpPrefix a = IpPrefix::parse("10.0.0.0/8");
    const IpPrefix b = IpPrefix::parse("10.5.0.0/16");
    const IpPrefix c = IpPrefix::parse("11.0.0.0/8");
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_TRUE(b.overlaps(a));
    EXPECT_FALSE(a.overlaps(c));
}

TEST(Route, Formatting) {
    const Route r{IpPrefix::parse("173.251.91.0/24"), 53725};
    EXPECT_EQ(r.str(), "173.251.91.0/24 AS53725");
}

TEST(RouteValidity, Names) {
    EXPECT_EQ(toString(RouteValidity::Valid), "valid");
    EXPECT_EQ(toString(RouteValidity::Unknown), "unknown");
    EXPECT_EQ(toString(RouteValidity::Invalid), "invalid");
}

}  // namespace
}  // namespace rpkic
