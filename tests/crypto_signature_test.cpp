// WOTS, Merkle-tree, and XMSS-style signature behaviour: correctness,
// tamper rejection, key exhaustion, and serialization round-trips.
#include <gtest/gtest.h>

#include "crypto/merkle.hpp"
#include "crypto/wots.hpp"
#include "crypto/xmss.hpp"
#include "util/errors.hpp"

namespace rpkic {
namespace {

TEST(Wots, MessageDigitsChecksum) {
    const Digest msg = sha256("checksum test");
    const auto digits = wots::messageDigits(msg);
    // The message digits must be the hex nibbles of the digest.
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(digits[2 * i], msg.bytes[i] >> 4);
        EXPECT_EQ(digits[2 * i + 1], msg.bytes[i] & 0x0f);
    }
    // Checksum digits must encode sum(15 - digit).
    std::uint32_t checksum = 0;
    for (int i = 0; i < wots::kMsgChains; ++i) checksum += 15u - digits[i];
    std::uint32_t decoded = 0;
    for (int i = 0; i < wots::kChecksumChains; ++i) decoded = (decoded << 4) | digits[wots::kMsgChains + i];
    EXPECT_EQ(decoded, checksum);
}

TEST(Wots, SignVerifyRoundTrip) {
    const Digest secretSeed = sha256("secret");
    const Digest publicSeed = sha256("public");
    const Digest msg = sha256("message");
    const Digest pk = wots::derivePublicKey(secretSeed, publicSeed, 7);
    const auto sig = wots::sign(secretSeed, publicSeed, 7, msg);
    EXPECT_EQ(wots::publicKeyFromSignature(publicSeed, 7, msg, sig), pk);
}

TEST(Wots, WrongMessageFailsVerification) {
    const Digest secretSeed = sha256("secret");
    const Digest publicSeed = sha256("public");
    const Digest pk = wots::derivePublicKey(secretSeed, publicSeed, 0);
    const auto sig = wots::sign(secretSeed, publicSeed, 0, sha256("message A"));
    EXPECT_NE(wots::publicKeyFromSignature(publicSeed, 0, sha256("message B"), sig), pk);
}

TEST(Wots, LeafIndexDomainSeparation) {
    const Digest secretSeed = sha256("secret");
    const Digest publicSeed = sha256("public");
    EXPECT_NE(wots::derivePublicKey(secretSeed, publicSeed, 0),
              wots::derivePublicKey(secretSeed, publicSeed, 1));
}

TEST(Merkle, SingleLeaf) {
    const Digest leaf = sha256("only");
    MerkleTree t({leaf});
    EXPECT_EQ(t.root(), leaf);
    EXPECT_EQ(t.height(), 0);
    EXPECT_TRUE(t.path(0).empty());
}

TEST(Merkle, PathsVerifyForAllLeaves) {
    std::vector<Digest> leaves;
    for (int i = 0; i < 16; ++i) leaves.push_back(sha256("leaf " + std::to_string(i)));
    MerkleTree t(leaves);
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(merkleRootFromPath(leaves[i], i, t.path(i)), t.root()) << "leaf " << i;
    }
}

TEST(Merkle, WrongIndexFailsPathVerification) {
    std::vector<Digest> leaves;
    for (int i = 0; i < 8; ++i) leaves.push_back(sha256("leaf " + std::to_string(i)));
    MerkleTree t(leaves);
    EXPECT_NE(merkleRootFromPath(leaves[3], 2, t.path(3)), t.root());
}

TEST(Merkle, RejectsNonPowerOfTwo) {
    std::vector<Digest> leaves(3, sha256("x"));
    EXPECT_THROW(MerkleTree{leaves}, UsageError);
    EXPECT_THROW(MerkleTree{std::vector<Digest>{}}, UsageError);
}

TEST(Xmss, SignVerifyManyMessages) {
    Signer signer = Signer::generate(42, 4);
    const PublicKey pub = signer.publicKey();
    for (int i = 0; i < 16; ++i) {
        const std::string msg = "manifest update " + std::to_string(i);
        const Bytes sig = signer.sign(msg);
        EXPECT_TRUE(verify(pub, msg, ByteView(sig.data(), sig.size()))) << i;
        EXPECT_FALSE(verify(pub, msg + "x", ByteView(sig.data(), sig.size()))) << i;
    }
}

TEST(Xmss, KeyExhaustionThrows) {
    Signer signer = Signer::generate(1, 1);  // 2 signatures only
    (void)signer.sign("one");
    (void)signer.sign("two");
    EXPECT_EQ(signer.signaturesRemaining(), 0u);
    EXPECT_THROW((void)signer.sign("three"), KeyExhaustedError);
}

TEST(Xmss, SignaturesUseDistinctLeaves) {
    Signer signer = Signer::generate(7, 3);
    const Bytes s1 = signer.sign("m");
    const Bytes s2 = signer.sign("m");
    const auto d1 = SignatureData::fromBytes(ByteView(s1.data(), s1.size()));
    const auto d2 = SignatureData::fromBytes(ByteView(s2.data(), s2.size()));
    EXPECT_EQ(d1.leafIndex, 0u);
    EXPECT_EQ(d2.leafIndex, 1u);
}

TEST(Xmss, DifferentSeedsDifferentKeys) {
    EXPECT_NE(Signer::generate(1, 2).publicKey(), Signer::generate(2, 2).publicKey());
}

TEST(Xmss, DeterministicFromSeed) {
    EXPECT_EQ(Signer::generate(99, 3).publicKey(), Signer::generate(99, 3).publicKey());
}

TEST(Xmss, PublicKeySerializationRoundTrip) {
    const PublicKey pub = Signer::generate(5, 2).publicKey();
    const Bytes b = pub.toBytes();
    EXPECT_EQ(PublicKey::fromBytes(ByteView(b.data(), b.size())), pub);
}

TEST(Xmss, RejectsTamperedSignatureBytes) {
    Signer signer = Signer::generate(3, 2);
    const std::string msg = "tamper target";
    Bytes sig = signer.sign(msg);
    const PublicKey pub = signer.publicKey();
    ASSERT_TRUE(verify(pub, msg, ByteView(sig.data(), sig.size())));

    // Flip one bit anywhere: must always fail.
    for (std::size_t i = 0; i < sig.size(); i += 97) {
        Bytes mutated = sig;
        mutated[i] ^= 0x01;
        EXPECT_FALSE(verify(pub, msg, ByteView(mutated.data(), mutated.size()))) << "byte " << i;
    }
    // Truncation must fail, not crash.
    Bytes truncated(sig.begin(), sig.begin() + static_cast<long>(sig.size() / 2));
    EXPECT_FALSE(verify(pub, msg, ByteView(truncated.data(), truncated.size())));
    EXPECT_FALSE(verify(pub, msg, ByteView{}));
}

TEST(Xmss, CrossKeyVerificationFails) {
    Signer a = Signer::generate(10, 2);
    Signer b = Signer::generate(11, 2);
    const Bytes sig = a.sign("cross");
    EXPECT_FALSE(verify(b.publicKey(), "cross", ByteView(sig.data(), sig.size())));
}

TEST(Xmss, MalformedPublicKeyRejected) {
    Bytes tooShort(10, 0);
    EXPECT_THROW(PublicKey::fromBytes(ByteView(tooShort.data(), tooShort.size())), ParseError);
    Bytes badHeight = Signer::generate(1, 2).publicKey().toBytes();
    badHeight[64] = 0;
    EXPECT_THROW(PublicKey::fromBytes(ByteView(badHeight.data(), badHeight.size())), ParseError);
}

}  // namespace
}  // namespace rpkic
