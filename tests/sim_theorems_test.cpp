// Property tests for the security guarantees of §5.5, checked against
// randomized adversarial schedules.
//
// Theorem 5.1 ("valid remains valid"): once an RC R is valid for Alice, at
// any later time one of the four conditions holds:
//   1. a successor of R is valid with all of R's resources;
//   2. a successor is valid minus resources whose removal Alice saw
//      consented via .dead;
//   3. Alice saw a .dead consenting to R's revocation;
//   4. Alice raised a unilateral-revocation alarm naming a successor of R
//      as victim.
//
// Theorems 5.2/5.3 ("no mirror worlds"): if Bob holds a valid RC logged in
// manifest m and Alice passes a global consistency check containing m's
// hash, then R is (or becomes) valid for Alice too, or she alarmed.
#include <gtest/gtest.h>

#include "sim/driver.hpp"

namespace rpkic {
namespace {

using rp::AlarmType;
using rp::RcStatus;
using rp::RelyingParty;
using rp::RpOptions;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

class TheoremSchedule : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TheoremSchedule, Theorem51ValidRemainsValid) {
    sim::DriverConfig config;
    config.seed = GetParam();
    config.adversarialProbability = 0.2;
    sim::RandomScheduleDriver driver(config);

    RelyingParty alice("alice", driver.trustAnchors(), RpOptions{.ts = 4, .tg = 8});
    SimClock clock;
    alice.sync(driver.repo().snapshot(), clock.now());

    // Watch list: (uri, resources at first sighting as Valid).
    std::vector<std::pair<std::string, ResourceSet>> watched;

    for (int stepIndex = 0; stepIndex < 25; ++stepIndex) {
        clock.advance(1);
        driver.step(clock.now());
        alice.sync(driver.repo().snapshot(), clock.now());

        // Add newly-valid RCs to the watch list.
        for (const auto& [uri, rec] : alice.rcRecords()) {
            if (rec.status != RcStatus::Valid || rec.cert.resources.isInherit()) continue;
            const bool known = std::any_of(watched.begin(), watched.end(),
                                           [&](const auto& w) { return w.first == uri; });
            if (!known) watched.emplace_back(uri, rec.cert.resources);
        }

        // Theorem 5.1 oracle for every watched RC, following the successor
        // relation (same-URI overwrites are implicit; key rollovers move
        // the URI and are tracked by the relying party).
        for (const auto& [uri, resourcesAtFirstSight] : watched) {
            std::vector<std::string> chain{uri};
            while (const std::string* next = alice.successorOf(chain.back())) {
                chain.push_back(*next);
            }
            const rp::RcRecord* rec = alice.findRc(chain.back());
            ASSERT_NE(rec, nullptr) << chain.back();

            bool cond1 = false, cond2 = false, cond3 = false, cond4 = false;
            if (rec->status == RcStatus::Valid || rec->status == RcStatus::RolledOver) {
                if (!rec->cert.resources.isInherit() &&
                    resourcesAtFirstSight.subsetOf(rec->cert.resources)) {
                    cond1 = true;
                } else if (!rec->cert.resources.isInherit()) {
                    const ResourceSet missing =
                        resourcesAtFirstSight.subtract(rec->cert.resources);
                    cond2 = missing.empty() ||
                            alice.sawDeadForResources(chain.back(), missing);
                }
            }
            for (const std::string& u : chain) {
                for (std::uint64_t s = 0; s < 64; ++s) {
                    if (alice.sawDeadFor(u, s)) cond3 = true;
                }
                for (const auto& alarm :
                     alice.alarms().ofType(AlarmType::UnilateralRevocation)) {
                    if (alarm.victim == u) cond4 = true;
                }
            }
            EXPECT_TRUE(cond1 || cond2 || cond3 || cond4)
                << "Theorem 5.1 violated for " << uri << " at t=" << clock.now()
                << " status=" << toString(rec->status) << " seed=" << GetParam()
                << " step=" << stepIndex;
        }
    }

    // Sanity: adversarial schedules with actual whackings must produce
    // alarms somewhere (no silent takedowns).
    bool anyUnconsented = false;
    for (const auto& entry : driver.log()) anyUnconsented |= !entry.unconsentedVictims.empty();
    if (anyUnconsented) {
        EXPECT_TRUE(alice.alarms().has(AlarmType::UnilateralRevocation))
            << "unilateral whackings occurred but Alice never alarmed (seed " << GetParam()
            << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremSchedule,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808, 909, 1010));

TEST(Theorem52, MirrorWorldDetectedOrViewsAgree) {
    // An authority forks its publication state; Alice follows world A, Bob
    // world B. After global consistency checks, either somebody alarmed or
    // the views agree on the forked point.
    Repository repoA;
    consent::AuthorityOptions opts{.ts = 5, .signerHeight = 6, .manifestLifetime = 100};
    consent::AuthorityDirectory dir(77, opts);
    SimClock clock;
    auto& root = dir.createTrustAnchor("root", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                       repoA, clock.now());
    auto& org = dir.createChild(root, "org", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}),
                                repoA, clock.now());
    org.issueRoa("base", 64500, {{pfx("10.1.0.0/16"), 24}}, repoA, clock.now());

    RelyingParty alice("alice", {root.cert()}, RpOptions{.ts = 5, .tg = 10});
    RelyingParty bob("bob", {root.cert()}, RpOptions{.ts = 5, .tg = 10});
    alice.sync(repoA.snapshot(), clock.now());
    bob.sync(repoA.snapshot(), clock.now());

    // Fork: world B diverges.
    Repository repoB = repoA;
    auto& mirror = org.unsafeForkForMirrorWorld();
    clock.advance(1);
    org.issueRoa("onlyA", 64501, {{pfx("10.1.1.0/24"), 24}}, repoA, clock.now());
    mirror.deleteRoa("base", repoB, clock.now());

    alice.sync(repoA.snapshot(), clock.now());
    bob.sync(repoB.snapshot(), clock.now());

    alice.globalConsistencyCheck(bob.exportManifestClaims(), clock.now());
    bob.globalConsistencyCheck(alice.exportManifestClaims(), clock.now());

    const bool alarmed = alice.alarms().has(AlarmType::GlobalInconsistency) ||
                         bob.alarms().has(AlarmType::GlobalInconsistency);
    const bool agree = alice.roaState() == bob.roaState();
    EXPECT_TRUE(alarmed || agree);
    EXPECT_TRUE(alarmed) << "the worlds demonstrably diverged; the check must catch it";
}

TEST(Theorem53, PastConsistencyThroughHashChain) {
    // Bob is several manifests ahead of Alice. A successful global check
    // against Bob vouches not just for the head but for the chain: if the
    // authority had forked in the past, the hashes could not line up.
    Repository repo;
    consent::AuthorityOptions opts{.ts = 6, .signerHeight = 6, .manifestLifetime = 100};
    consent::AuthorityDirectory dir(88, opts);
    SimClock clock;
    auto& root = dir.createTrustAnchor("root", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                       repo, clock.now());
    auto& org = dir.createChild(root, "org", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}),
                                repo, clock.now());

    RelyingParty alice("alice", {root.cert()}, RpOptions{.ts = 6, .tg = 12});
    RelyingParty bob("bob", {root.cert()}, RpOptions{.ts = 6, .tg = 12});
    alice.sync(repo.snapshot(), clock.now());

    for (int i = 0; i < 4; ++i) {
        clock.advance(1);
        org.issueRoa("r" + std::to_string(i), static_cast<Asn>(64500 + i),
                     {{pfx("10.1.0.0/16"), 24}}, repo, clock.now());
    }
    bob.sync(repo.snapshot(), clock.now());
    clock.advance(1);
    alice.sync(repo.snapshot(), clock.now());

    // Alice obtained all intermediate manifests; Bob's head hash must be in
    // her window, and vice versa for Bob against Alice's older hashes.
    alice.globalConsistencyCheck(bob.exportManifestClaims(), clock.now());
    EXPECT_FALSE(alice.alarms().has(AlarmType::GlobalInconsistency));
    bob.globalConsistencyCheck(alice.exportManifestClaims(), clock.now());
    EXPECT_FALSE(bob.alarms().has(AlarmType::GlobalInconsistency));
}

}  // namespace
}  // namespace rpkic
