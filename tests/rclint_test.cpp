// Golden-fixture coverage for rclint (tools/rclint): exact findings per
// rule, suppression behaviour, CLI exit codes, and the --format=github
// rendering. Fixtures live in tests/fixtures/rclint/ with a `.in` suffix
// so the tree-clean lint walk never mistakes them for real sources.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace rclint {
namespace {

std::string fixturePath(const std::string& name) {
    return std::string(RCLINT_FIXTURE_DIR) + "/" + name;
}

std::string readFixture(const std::string& name) {
    std::ifstream in(fixturePath(name), std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << name;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<Finding> lintFixture(const std::string& name, bool isHeader) {
    return lintSource(fixturePath(name), readFixture(name), isHeader);
}

struct CliResult {
    int code = 0;
    std::string out;
    std::string err;
};

CliResult cli(const std::vector<std::string>& args) {
    std::ostringstream out;
    std::ostringstream err;
    CliResult r;
    r.code = runCli(args, out, err);
    r.out = out.str();
    r.err = err.str();
    return r;
}

// --- per-rule golden findings ----------------------------------------------

TEST(RclintGolden, BannedFunction) {
    const std::string path = fixturePath("banned_function.cpp.in");
    const std::vector<Finding> expected = {
        {path, 6, 5, "banned-function", "strcpy: unbounded copy; use std::string or std::copy"},
        {path, 7, 10, "banned-function", "sprintf: unbounded format; use std::snprintf"},
    };
    EXPECT_EQ(lintFixture("banned_function.cpp.in", false), expected);
}

TEST(RclintGolden, BannedNewDelete) {
    const std::string path = fixturePath("banned_new_delete.cpp.in");
    const std::vector<Finding> expected = {
        {path, 7, 12, "banned-new-delete",
         "raw new: use std::make_unique, containers, or values"},
        {path, 11, 5, "banned-new-delete", "raw delete: ownership belongs in RAII types"},
    };
    EXPECT_EQ(lintFixture("banned_new_delete.cpp.in", false), expected);
}

TEST(RclintGolden, PragmaOnceMissing) {
    const std::string path = fixturePath("pragma_once_missing.hpp.in");
    const std::vector<Finding> expected = {
        {path, 2, 1, "pragma-once", "header is missing #pragma once"},
    };
    EXPECT_EQ(lintFixture("pragma_once_missing.hpp.in", true), expected);
}

TEST(RclintGolden, PragmaOnceLateAndDuplicate) {
    const std::string path = fixturePath("pragma_once_late.hpp.in");
    const std::vector<Finding> expected = {
        {path, 2, 1, "pragma-once", "#pragma once must be the first preprocessing directive"},
        {path, 4, 1, "pragma-once", "duplicate #pragma once"},
    };
    EXPECT_EQ(lintFixture("pragma_once_late.hpp.in", true), expected);
}

TEST(RclintGolden, PragmaOnceRuleIsHeaderOnly) {
    // The same bytes linted as a .cpp raise nothing.
    EXPECT_TRUE(lintFixture("pragma_once_missing.hpp.in", false).empty());
}

TEST(RclintGolden, IncludeHygiene) {
    const std::string path = fixturePath("include_hygiene.cpp.in");
    const std::vector<Finding> expected = {
        {path, 3, 1, "include-hygiene", "duplicate include <vector>"},
        {path, 4, 1, "include-hygiene",
         "parent-relative include \"../detail/secret.hpp\": "
         "include project-root-relative paths"},
        {path, 5, 1, "include-hygiene", "C-compat header <string.h>: use <cstring>"},
    };
    EXPECT_EQ(lintFixture("include_hygiene.cpp.in", false), expected);
}

TEST(RclintGolden, TodoFormat) {
    const std::string path = fixturePath("todo_format.cpp.in");
    const std::vector<Finding> expected = {
        {path, 2, 1, "todo-format", "malformed TODO: write TODO(owner): description"},
        {path, 4, 1, "todo-format", "FIXME: use TODO(owner): instead"},
        {path, 5, 1, "todo-format", "XXX: use TODO(owner): instead"},
    };
    EXPECT_EQ(lintFixture("todo_format.cpp.in", false), expected);
}

TEST(RclintGolden, MetricName) {
    const std::string path = fixturePath("metric_name.cpp.in");
    const std::vector<Finding> expected = {
        {path, 3, 17, "metric-name", "counter 'rc_sync_attempts' must end in _total"},
    };
    EXPECT_EQ(lintFixture("metric_name.cpp.in", false), expected);
}

TEST(RclintGolden, CleanFixtureHasNoFindings) {
    EXPECT_TRUE(lintFixture("clean.cpp.in", false).empty());
}

// --- suppressions -----------------------------------------------------------

TEST(RclintSuppressions, SameLineAllow) {
    const std::string src =
        "void f() { int* p = new int; }  // rclint:allow(banned-new-delete)\n";
    EXPECT_TRUE(lintSource("mem.cpp", src, false).empty());
}

TEST(RclintSuppressions, LineAboveAllow) {
    const std::string src =
        "// rclint:allow(banned-new-delete)\n"
        "int* p = new int;\n";
    EXPECT_TRUE(lintSource("mem.cpp", src, false).empty());
}

TEST(RclintSuppressions, AllowFileCoversWholeFile) {
    const std::string src =
        "// rclint:allow-file(banned-new-delete)\n"
        "int* p = new int;\n"
        "int* q = new int;\n";
    EXPECT_TRUE(lintSource("mem.cpp", src, false).empty());
}

TEST(RclintSuppressions, AllowIsRuleSpecific) {
    // Allowing one rule must not silence another.
    const std::string src =
        "// rclint:allow(banned-function)\n"
        "int* p = new int;\n";
    const std::vector<Finding> findings = lintSource("mem.cpp", src, false);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "banned-new-delete");
}

// --- rules never fire inside strings or comments ---------------------------

TEST(RclintLexer, BannedNamesInsideStringsAndCommentsIgnored) {
    const std::string src =
        "// calling strcpy( here is just prose\n"
        "const char* kDoc = \"use strcpy(dst, src) never\";\n"
        "const char* kRaw = R\"(sprintf( inside raw string)\";\n";
    EXPECT_TRUE(lintSource("mem.cpp", src, false).empty());
}

// --- metric doc drift -------------------------------------------------------

TEST(RclintDrift, DocMetricNamesParsesBacktickSpans) {
    const auto names = docMetricNames(readFixture("metrics_doc.md"));
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0].first, "rc_widget_events_total");
    EXPECT_EQ(names[0].second, 5);
    EXPECT_EQ(names[1].first, "rc_stale_gauge");
    EXPECT_EQ(names[1].second, 6);
}

TEST(RclintDrift, CliReportsBothDirections) {
    const std::string driftPath = fixturePath("src/drift_use.cpp.in");
    const std::string docPath = fixturePath("metrics_doc.md");
    const CliResult r = cli({"--metrics-doc", docPath, driftPath});
    EXPECT_EQ(r.code, 1);
    const std::string expected =
        docPath + ":6:1: [metric-doc-drift] documented metric 'rc_stale_gauge' "
        "is never used in src/\n" +
        driftPath + ":5:15: [metric-doc-drift] metric 'rc_undocumented_depth' "
        "is not catalogued in " + docPath + "\n" +
        "rclint: 2 findings in 1 files\n";
    EXPECT_EQ(r.out, expected);
}

TEST(RclintDrift, NoMetricCheckDisablesDrift) {
    const std::string driftPath = fixturePath("src/drift_use.cpp.in");
    const std::string docPath = fixturePath("metrics_doc.md");
    const CliResult r = cli({"--no-metric-check", "--metrics-doc", docPath, driftPath});
    EXPECT_EQ(r.code, 0);
    EXPECT_EQ(r.out, "");
}

// --- CLI behaviour ----------------------------------------------------------

TEST(RclintCli, CleanFileExitsZeroSilently) {
    const CliResult r = cli({fixturePath("clean.cpp.in")});
    EXPECT_EQ(r.code, 0);
    EXPECT_EQ(r.out, "");
    EXPECT_EQ(r.err, "");
}

TEST(RclintCli, TextOutputIsGoldenExact) {
    const std::string path = fixturePath("include_hygiene.cpp.in");
    const CliResult r = cli({path});
    EXPECT_EQ(r.code, 1);
    const std::string expected =
        path + ":3:1: [include-hygiene] duplicate include <vector>\n" +
        path + ":4:1: [include-hygiene] parent-relative include "
        "\"../detail/secret.hpp\": include project-root-relative paths\n" +
        path + ":5:1: [include-hygiene] C-compat header <string.h>: use <cstring>\n" +
        "rclint: 3 findings in 1 files\n";
    EXPECT_EQ(r.out, expected);
}

TEST(RclintCli, GithubFormatEmitsWorkflowAnnotations) {
    const std::string path = fixturePath("include_hygiene.cpp.in");
    const CliResult r = cli({"--format=github", path});
    EXPECT_EQ(r.code, 1);
    const std::string expected =
        "::error file=" + path + ",line=3,col=1,title=rclint include-hygiene"
        "::duplicate include <vector>\n"
        "::error file=" + path + ",line=4,col=1,title=rclint include-hygiene"
        "::parent-relative include \"../detail/secret.hpp\": "
        "include project-root-relative paths\n"
        "::error file=" + path + ",line=5,col=1,title=rclint include-hygiene"
        "::C-compat header <string.h>: use <cstring>\n"
        "rclint: 3 findings in 1 files\n";
    EXPECT_EQ(r.out, expected);
}

TEST(RclintCli, GithubRenderingEscapesControlCharacters) {
    const Finding f{"a.cpp", 1, 2, "rule", "50% done\nnext\rline"};
    EXPECT_EQ(renderFinding(f, "github"),
              "::error file=a.cpp,line=1,col=2,title=rclint rule::50%25 done%0Anext%0Dline");
}

TEST(RclintCli, UsageErrorsExitTwo) {
    EXPECT_EQ(cli({"--format=bogus", "x"}).code, 2);
    EXPECT_EQ(cli({}).code, 2);
    EXPECT_EQ(cli({fixturePath("no_such_file.cpp.in")}).code, 2);
    EXPECT_EQ(cli({"--metrics-doc"}).code, 2);
    EXPECT_EQ(cli({"--unknown-flag", "x"}).code, 2);
}

TEST(RclintCli, HelpAndListRulesExitZero) {
    const CliResult help = cli({"--help"});
    EXPECT_EQ(help.code, 0);
    EXPECT_NE(help.out.find("usage: rclint"), std::string::npos);
    const CliResult rules = cli({"--list-rules"});
    EXPECT_EQ(rules.code, 0);
    EXPECT_NE(rules.out.find("banned-function"), std::string::npos);
    EXPECT_NE(rules.out.find("metric-doc-drift"), std::string::npos);
    EXPECT_NE(rules.out.find("layer-violation"), std::string::npos);
    EXPECT_NE(rules.out.find("include-cycle"), std::string::npos);
    EXPECT_NE(rules.out.find("nondet-iteration"), std::string::npos);
    EXPECT_NE(rules.out.find("nondet-time"), std::string::npos);
    EXPECT_NE(rules.out.find("nondet-pointer-order"), std::string::npos);
    EXPECT_NE(rules.out.find("lock-order"), std::string::npos);
}

// --- layering conformance (rcgraph) ----------------------------------------

TEST(RcgraphLayering, UpwardIncludeIsGoldenExactAndAllowSuppresses) {
    // graph/core/base.hpp includes two app headers; the second is covered
    // by rclint:allow(layer-violation) at the include site, so exactly
    // one finding survives. app -> core (downward) is silent.
    const CliResult r = cli({"--layers", fixturePath("graph/layers_fixture.conf"),
                             fixturePath("graph")});
    EXPECT_EQ(r.code, 1);
    const std::string expected =
        fixturePath("graph/core/base.hpp") +
        ":2:1: [layer-violation] module 'core' (layer 1) must not include 'app' "
        "(layer 2): " + fixturePath("graph/app/util.hpp") + "\n" +
        "rclint: 1 finding in 4 files\n";
    EXPECT_EQ(r.out, expected);
}

TEST(RcgraphLayering, MalformedManifestExitsTwo) {
    const CliResult r = cli({"--layers", fixturePath("graph/bad_layers.conf"),
                             fixturePath("graph")});
    EXPECT_EQ(r.code, 2);
    EXPECT_EQ(r.err, "rclint: layers.conf:1: bad rank 'one'\n");
}

TEST(RcgraphLayering, GraphOutWritesClusteredDot) {
    const std::string dotPath = ::testing::TempDir() + "rclint_fixture_graph.dot";
    const CliResult r = cli({"--layers", fixturePath("graph/layers_fixture.conf"),
                             "--graph-out", dotPath, fixturePath("graph")});
    EXPECT_EQ(r.code, 1);
    std::ifstream in(dotPath, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string expected =
        "// generated by rclint --graph-out; render with `dot -Tsvg`\n"
        "digraph includes {\n"
        "  rankdir=LR;\n"
        "  node [shape=box, fontsize=10];\n"
        "  subgraph cluster_app {\n"
        "    label=\"app (layer 2)\";\n"
        "    \"app/app.hpp\";\n"
        "    \"app/app2.hpp\";\n"
        "    \"app/util.hpp\";\n"
        "  }\n"
        "  subgraph cluster_core {\n"
        "    label=\"core (layer 1)\";\n"
        "    \"core/base.hpp\";\n"
        "  }\n"
        "  \"app/app.hpp\" -> \"core/base.hpp\";\n"
        "  \"core/base.hpp\" -> \"app/app2.hpp\";\n"
        "  \"core/base.hpp\" -> \"app/util.hpp\";\n"
        "}\n";
    EXPECT_EQ(ss.str(), expected);
}

// --- include cycles ---------------------------------------------------------

TEST(RcgraphCycle, IncludeCycleIsGoldenExact) {
    const CliResult r = cli({fixturePath("cycle")});
    EXPECT_EQ(r.code, 1);
    const std::string x = fixturePath("cycle/x.hpp");
    const std::string y = fixturePath("cycle/y.hpp");
    const std::string expected =
        x + ":2:1: [include-cycle] include cycle: " + x + " -> " + y + " -> " + x + "\n" +
        "rclint: 1 finding in 2 files\n";
    EXPECT_EQ(r.out, expected);
}

// --- determinism lint -------------------------------------------------------

TEST(RcgraphNondet, UnorderedIterationInSerializingTuIsGoldenExact) {
    const std::string path = fixturePath("nondet/iter_bad.cpp");
    const CliResult r = cli({path});
    EXPECT_EQ(r.code, 1);
    const std::string expected =
        path + ":7:5: [nondet-iteration] iteration over unordered container 'gTable' "
        "in a TU that serializes output: drain into a sorted container first, or "
        "justify with rclint:allow(nondet-iteration)\n"
        "rclint: 1 finding in 1 files\n";
    EXPECT_EQ(r.out, expected);
}

TEST(RcgraphNondet, SortedDrainIsClean) {
    const CliResult r = cli({fixturePath("nondet/iter_sorted.cpp")});
    EXPECT_EQ(r.code, 0);
    EXPECT_EQ(r.out, "");
}

TEST(RcgraphNondet, BeginIteratorCallIsFlagged) {
    const std::string path = fixturePath("nondet/iter_begin.cpp");
    const CliResult r = cli({path});
    EXPECT_EQ(r.code, 1);
    const std::string expected =
        path + ":7:13: [nondet-iteration] iterator over unordered container 'gSeen' "
        "in a TU that serializes output: drain into a sorted container first, or "
        "justify with rclint:allow(nondet-iteration)\n"
        "rclint: 1 finding in 1 files\n";
    EXPECT_EQ(r.out, expected);
}

TEST(RcgraphNondet, AllowSuppressesIteration) {
    const CliResult r = cli({fixturePath("nondet/iter_allow.cpp")});
    EXPECT_EQ(r.code, 0);
    EXPECT_EQ(r.out, "");
}

TEST(RcgraphNondet, WallClockReadsAreGoldenExact) {
    const std::string path = fixturePath("nondet/time_bad.cpp");
    const CliResult r = cli({path});
    EXPECT_EQ(r.code, 1);
    const std::string expected =
        path + ":6:34: [nondet-time] system_clock: wall-clock reads break per-seed "
        "reproducibility; use the injectable obs clock (obs/clock.hpp)\n" +
        path + ":7:20: [nondet-time] time(): wall-clock read breaks per-seed "
        "reproducibility; use the injectable obs clock (obs/clock.hpp) or the "
        "simulated protocol clock (util/time.hpp)\n"
        "rclint: 2 findings in 1 files\n";
    EXPECT_EQ(r.out, expected);
}

TEST(RcgraphNondet, PointerOrderIsGoldenExact) {
    const std::string path = fixturePath("nondet/ptr_bad.cpp");
    const CliResult r = cli({path});
    EXPECT_EQ(r.code, 1);
    const std::string expected =
        path + ":7:27: [nondet-pointer-order] std::less over a raw pointer type "
        "orders by address, which varies run to run; key on a stable field instead\n" +
        path + ":10:48: [nondet-pointer-order] comparing raw pointers 'x < y' orders "
        "by address, which varies run to run; compare a stable key instead\n"
        "rclint: 2 findings in 1 files\n";
    EXPECT_EQ(r.out, expected);
}

TEST(RcgraphNondet, ClosureCarriesHeaderDeclarationsAcrossFiles) {
    // writer.cpp itself declares no unordered container; the flagged
    // identifier comes from the included state.hpp via the include graph.
    const CliResult r = cli({fixturePath("nondet/cross")});
    EXPECT_EQ(r.code, 1);
    const std::string expected =
        fixturePath("nondet/cross/writer.cpp") +
        ":5:5: [nondet-iteration] iteration over unordered container 'index_' in a "
        "TU that serializes output: drain into a sorted container first, or justify "
        "with rclint:allow(nondet-iteration)\n"
        "rclint: 1 finding in 2 files\n";
    EXPECT_EQ(r.out, expected);
}

// --- lock-order analysis ----------------------------------------------------

TEST(RcgraphLockOrder, GlobalInversionIsGoldenExactAndExitsTwo) {
    // ab.cpp nests a -> b, ba.cpp nests b -> a: neither file alone has a
    // cycle, the merged global graph does — and a potential deadlock
    // escalates the exit code past plain findings.
    const CliResult r = cli({fixturePath("lockorder")});
    EXPECT_EQ(r.code, 2);
    const std::string expected =
        fixturePath("lockorder/ab.cpp") +
        ":4:9: [lock-order] lock-order cycle: a -> b -> a — nested acquisition "
        "inverts an order taken elsewhere; a concurrent interleaving deadlocks\n"
        "rclint: 1 finding in 2 files\n";
    EXPECT_EQ(r.out, expected);
}

TEST(RcgraphLockOrder, AllowAtAcquisitionSiteBreaksTheCycle) {
    const CliResult r = cli({fixturePath("lockorder_allow")});
    EXPECT_EQ(r.code, 0);
    EXPECT_EQ(r.out, "");
}

// --- deterministic parallel scan --------------------------------------------

TEST(RcgraphThreads, OutputIsByteIdenticalAcrossThreadCounts) {
    // The whole fixture forest (every rule firing at once) must render
    // identically no matter how the file scan is fanned out.
    const std::vector<std::string> base = {
        "--layers", fixturePath("graph/layers_fixture.conf"), std::string(RCLINT_FIXTURE_DIR)};
    std::vector<std::string> one = {"--threads", "1"};
    one.insert(one.end(), base.begin(), base.end());
    std::vector<std::string> five = {"--threads", "5"};
    five.insert(five.end(), base.begin(), base.end());
    const CliResult r1 = cli(one);
    const CliResult r5 = cli(five);
    EXPECT_EQ(r1.code, r5.code);
    EXPECT_EQ(r1.out, r5.out);
    EXPECT_FALSE(r1.out.empty());
}

TEST(RcgraphThreads, ThreadsFlagValidation) {
    EXPECT_EQ(cli({"--threads", "0", "x.cpp"}).code, 2);
    EXPECT_EQ(cli({"--threads", "abc", "x.cpp"}).code, 2);
    EXPECT_EQ(cli({"--bench-budget-ms", "nope", "x.cpp"}).code, 2);
}

TEST(RcgraphBench, BenchJsonRecordsSelfCheckedTimings) {
    const std::string jsonPath = ::testing::TempDir() + "rclint_bench_fixture.json";
    const CliResult r = cli({"--layers", fixturePath("graph/layers_fixture.conf"),
                             "--bench-json", jsonPath, "--threads", "3",
                             fixturePath("graph")});
    EXPECT_EQ(r.code, 1);  // same findings as the plain run
    std::ifstream in(jsonPath, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    EXPECT_NE(json.find("\"bench\": \"rclint_tree_scan\""), std::string::npos);
    EXPECT_NE(json.find("\"files\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"threads\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"identical_output\": true"), std::string::npos);
}

}  // namespace
}  // namespace rclint
