// Golden-fixture coverage for rclint (tools/rclint): exact findings per
// rule, suppression behaviour, CLI exit codes, and the --format=github
// rendering. Fixtures live in tests/fixtures/rclint/ with a `.in` suffix
// so the tree-clean lint walk never mistakes them for real sources.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace rclint {
namespace {

std::string fixturePath(const std::string& name) {
    return std::string(RCLINT_FIXTURE_DIR) + "/" + name;
}

std::string readFixture(const std::string& name) {
    std::ifstream in(fixturePath(name), std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << name;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<Finding> lintFixture(const std::string& name, bool isHeader) {
    return lintSource(fixturePath(name), readFixture(name), isHeader);
}

struct CliResult {
    int code = 0;
    std::string out;
    std::string err;
};

CliResult cli(const std::vector<std::string>& args) {
    std::ostringstream out;
    std::ostringstream err;
    CliResult r;
    r.code = runCli(args, out, err);
    r.out = out.str();
    r.err = err.str();
    return r;
}

// --- per-rule golden findings ----------------------------------------------

TEST(RclintGolden, BannedFunction) {
    const std::string path = fixturePath("banned_function.cpp.in");
    const std::vector<Finding> expected = {
        {path, 6, 5, "banned-function", "strcpy: unbounded copy; use std::string or std::copy"},
        {path, 7, 10, "banned-function", "sprintf: unbounded format; use std::snprintf"},
    };
    EXPECT_EQ(lintFixture("banned_function.cpp.in", false), expected);
}

TEST(RclintGolden, BannedNewDelete) {
    const std::string path = fixturePath("banned_new_delete.cpp.in");
    const std::vector<Finding> expected = {
        {path, 7, 12, "banned-new-delete",
         "raw new: use std::make_unique, containers, or values"},
        {path, 11, 5, "banned-new-delete", "raw delete: ownership belongs in RAII types"},
    };
    EXPECT_EQ(lintFixture("banned_new_delete.cpp.in", false), expected);
}

TEST(RclintGolden, PragmaOnceMissing) {
    const std::string path = fixturePath("pragma_once_missing.hpp.in");
    const std::vector<Finding> expected = {
        {path, 2, 1, "pragma-once", "header is missing #pragma once"},
    };
    EXPECT_EQ(lintFixture("pragma_once_missing.hpp.in", true), expected);
}

TEST(RclintGolden, PragmaOnceLateAndDuplicate) {
    const std::string path = fixturePath("pragma_once_late.hpp.in");
    const std::vector<Finding> expected = {
        {path, 2, 1, "pragma-once", "#pragma once must be the first preprocessing directive"},
        {path, 4, 1, "pragma-once", "duplicate #pragma once"},
    };
    EXPECT_EQ(lintFixture("pragma_once_late.hpp.in", true), expected);
}

TEST(RclintGolden, PragmaOnceRuleIsHeaderOnly) {
    // The same bytes linted as a .cpp raise nothing.
    EXPECT_TRUE(lintFixture("pragma_once_missing.hpp.in", false).empty());
}

TEST(RclintGolden, IncludeHygiene) {
    const std::string path = fixturePath("include_hygiene.cpp.in");
    const std::vector<Finding> expected = {
        {path, 3, 1, "include-hygiene", "duplicate include <vector>"},
        {path, 4, 1, "include-hygiene",
         "parent-relative include \"../detail/secret.hpp\": "
         "include project-root-relative paths"},
        {path, 5, 1, "include-hygiene", "C-compat header <string.h>: use <cstring>"},
    };
    EXPECT_EQ(lintFixture("include_hygiene.cpp.in", false), expected);
}

TEST(RclintGolden, TodoFormat) {
    const std::string path = fixturePath("todo_format.cpp.in");
    const std::vector<Finding> expected = {
        {path, 2, 1, "todo-format", "malformed TODO: write TODO(owner): description"},
        {path, 4, 1, "todo-format", "FIXME: use TODO(owner): instead"},
        {path, 5, 1, "todo-format", "XXX: use TODO(owner): instead"},
    };
    EXPECT_EQ(lintFixture("todo_format.cpp.in", false), expected);
}

TEST(RclintGolden, MetricName) {
    const std::string path = fixturePath("metric_name.cpp.in");
    const std::vector<Finding> expected = {
        {path, 3, 17, "metric-name", "counter 'rc_sync_attempts' must end in _total"},
    };
    EXPECT_EQ(lintFixture("metric_name.cpp.in", false), expected);
}

TEST(RclintGolden, CleanFixtureHasNoFindings) {
    EXPECT_TRUE(lintFixture("clean.cpp.in", false).empty());
}

// --- suppressions -----------------------------------------------------------

TEST(RclintSuppressions, SameLineAllow) {
    const std::string src =
        "void f() { int* p = new int; }  // rclint:allow(banned-new-delete)\n";
    EXPECT_TRUE(lintSource("mem.cpp", src, false).empty());
}

TEST(RclintSuppressions, LineAboveAllow) {
    const std::string src =
        "// rclint:allow(banned-new-delete)\n"
        "int* p = new int;\n";
    EXPECT_TRUE(lintSource("mem.cpp", src, false).empty());
}

TEST(RclintSuppressions, AllowFileCoversWholeFile) {
    const std::string src =
        "// rclint:allow-file(banned-new-delete)\n"
        "int* p = new int;\n"
        "int* q = new int;\n";
    EXPECT_TRUE(lintSource("mem.cpp", src, false).empty());
}

TEST(RclintSuppressions, AllowIsRuleSpecific) {
    // Allowing one rule must not silence another.
    const std::string src =
        "// rclint:allow(banned-function)\n"
        "int* p = new int;\n";
    const std::vector<Finding> findings = lintSource("mem.cpp", src, false);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "banned-new-delete");
}

// --- rules never fire inside strings or comments ---------------------------

TEST(RclintLexer, BannedNamesInsideStringsAndCommentsIgnored) {
    const std::string src =
        "// calling strcpy( here is just prose\n"
        "const char* kDoc = \"use strcpy(dst, src) never\";\n"
        "const char* kRaw = R\"(sprintf( inside raw string)\";\n";
    EXPECT_TRUE(lintSource("mem.cpp", src, false).empty());
}

// --- metric doc drift -------------------------------------------------------

TEST(RclintDrift, DocMetricNamesParsesBacktickSpans) {
    const auto names = docMetricNames(readFixture("metrics_doc.md"));
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0].first, "rc_widget_events_total");
    EXPECT_EQ(names[0].second, 5);
    EXPECT_EQ(names[1].first, "rc_stale_gauge");
    EXPECT_EQ(names[1].second, 6);
}

TEST(RclintDrift, CliReportsBothDirections) {
    const std::string driftPath = fixturePath("src/drift_use.cpp.in");
    const std::string docPath = fixturePath("metrics_doc.md");
    const CliResult r = cli({"--metrics-doc", docPath, driftPath});
    EXPECT_EQ(r.code, 1);
    const std::string expected =
        docPath + ":6:1: [metric-doc-drift] documented metric 'rc_stale_gauge' "
        "is never used in src/\n" +
        driftPath + ":5:15: [metric-doc-drift] metric 'rc_undocumented_depth' "
        "is not catalogued in " + docPath + "\n" +
        "rclint: 2 findings in 1 files\n";
    EXPECT_EQ(r.out, expected);
}

TEST(RclintDrift, NoMetricCheckDisablesDrift) {
    const std::string driftPath = fixturePath("src/drift_use.cpp.in");
    const std::string docPath = fixturePath("metrics_doc.md");
    const CliResult r = cli({"--no-metric-check", "--metrics-doc", docPath, driftPath});
    EXPECT_EQ(r.code, 0);
    EXPECT_EQ(r.out, "");
}

// --- CLI behaviour ----------------------------------------------------------

TEST(RclintCli, CleanFileExitsZeroSilently) {
    const CliResult r = cli({fixturePath("clean.cpp.in")});
    EXPECT_EQ(r.code, 0);
    EXPECT_EQ(r.out, "");
    EXPECT_EQ(r.err, "");
}

TEST(RclintCli, TextOutputIsGoldenExact) {
    const std::string path = fixturePath("include_hygiene.cpp.in");
    const CliResult r = cli({path});
    EXPECT_EQ(r.code, 1);
    const std::string expected =
        path + ":3:1: [include-hygiene] duplicate include <vector>\n" +
        path + ":4:1: [include-hygiene] parent-relative include "
        "\"../detail/secret.hpp\": include project-root-relative paths\n" +
        path + ":5:1: [include-hygiene] C-compat header <string.h>: use <cstring>\n" +
        "rclint: 3 findings in 1 files\n";
    EXPECT_EQ(r.out, expected);
}

TEST(RclintCli, GithubFormatEmitsWorkflowAnnotations) {
    const std::string path = fixturePath("include_hygiene.cpp.in");
    const CliResult r = cli({"--format=github", path});
    EXPECT_EQ(r.code, 1);
    const std::string expected =
        "::error file=" + path + ",line=3,col=1,title=rclint include-hygiene"
        "::duplicate include <vector>\n"
        "::error file=" + path + ",line=4,col=1,title=rclint include-hygiene"
        "::parent-relative include \"../detail/secret.hpp\": "
        "include project-root-relative paths\n"
        "::error file=" + path + ",line=5,col=1,title=rclint include-hygiene"
        "::C-compat header <string.h>: use <cstring>\n"
        "rclint: 3 findings in 1 files\n";
    EXPECT_EQ(r.out, expected);
}

TEST(RclintCli, GithubRenderingEscapesControlCharacters) {
    const Finding f{"a.cpp", 1, 2, "rule", "50% done\nnext\rline"};
    EXPECT_EQ(renderFinding(f, "github"),
              "::error file=a.cpp,line=1,col=2,title=rclint rule::50%25 done%0Anext%0Dline");
}

TEST(RclintCli, UsageErrorsExitTwo) {
    EXPECT_EQ(cli({"--format=bogus", "x"}).code, 2);
    EXPECT_EQ(cli({}).code, 2);
    EXPECT_EQ(cli({fixturePath("no_such_file.cpp.in")}).code, 2);
    EXPECT_EQ(cli({"--metrics-doc"}).code, 2);
    EXPECT_EQ(cli({"--unknown-flag", "x"}).code, 2);
}

TEST(RclintCli, HelpAndListRulesExitZero) {
    const CliResult help = cli({"--help"});
    EXPECT_EQ(help.code, 0);
    EXPECT_NE(help.out.find("usage: rclint"), std::string::npos);
    const CliResult rules = cli({"--list-rules"});
    EXPECT_EQ(rules.code, 0);
    EXPECT_NE(rules.out.find("banned-function"), std::string::npos);
    EXPECT_NE(rules.out.find("metric-doc-drift"), std::string::npos);
}

}  // namespace
}  // namespace rclint
