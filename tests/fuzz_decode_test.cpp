// Robustness: decoders must never crash or accept silently-wrong data.
// Random truncation, bit-flips, and byte garbage against every object type
// must either round-trip (if the mutation missed the object) or raise
// ParseError — these are bytes fetched from untrusted repositories.
#include <gtest/gtest.h>

#include <algorithm>

#include "consent/authority.hpp"
#include "crypto/xmss.hpp"
#include "fuzz/seed_corpus.hpp"
#include "rp/relying_party.hpp"
#include "rpki/objects.hpp"
#include "util/rng.hpp"

namespace rpkic {
namespace {

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

/// The shared checked-in TLV seed corpus (fuzz/corpus/tlv) — the same
/// files the fuzz/ drivers replay. RC_CORPUS_DIR comes from CMake.
const std::vector<Bytes>& sampleObjects() {
    static const std::vector<Bytes> corpus = fuzz::loadCorpusDir(RC_CORPUS_DIR "/tlv");
    return corpus;
}

TEST(SharedCorpus, CheckedInTlvSeedsMatchGenerators) {
    // The on-disk corpus must stay in sync with the canonical seed
    // builders: run build/fuzz/gen_corpus after wire-format changes. The
    // generated set is the object samples plus one attack-shaped seed per
    // adversary pack (fuzz/gen_corpus writes those as pack_<name>.bin).
    const std::vector<Bytes>& corpus = sampleObjects();
    ASSERT_FALSE(corpus.empty());
    std::vector<Bytes> generated = fuzz::sampleObjects();
    for (auto& [name, bytes] : fuzz::samplePackTlvSeeds()) {
        generated.push_back(std::move(bytes));
    }
    EXPECT_EQ(corpus.size(), generated.size());
    for (const Bytes& seed : generated) {
        EXPECT_NE(std::find(corpus.begin(), corpus.end(), seed), corpus.end())
            << "seed missing from fuzz/corpus/tlv — re-run gen_corpus";
    }
}

TEST(SharedCorpus, CheckedInChainProgramsMatchGenerators) {
    // Same drift guard for the manifest-chain opcode programs: opcode
    // samples plus one chain-shape program per adversary pack.
    const std::vector<Bytes> corpus = fuzz::loadCorpusDir(RC_CORPUS_DIR "/manifest_chain");
    ASSERT_FALSE(corpus.empty());
    std::vector<Bytes> generated = fuzz::sampleChainPrograms();
    for (auto& [name, bytes] : fuzz::samplePackChainPrograms()) {
        generated.push_back(std::move(bytes));
    }
    EXPECT_EQ(corpus.size(), generated.size());
    for (const Bytes& seed : generated) {
        EXPECT_NE(std::find(corpus.begin(), corpus.end(), seed), corpus.end())
            << "seed missing from fuzz/corpus/manifest_chain — re-run gen_corpus";
    }
}

/// Decodes by dispatching on the type byte; returns true on success.
bool tryDecode(const Bytes& wire) {
    const ByteView view(wire.data(), wire.size());
    switch (objectTypeOf(view)) {
        case ObjectType::ResourceCert: (void)ResourceCert::decode(view); return true;
        case ObjectType::Roa: (void)Roa::decode(view); return true;
        case ObjectType::Manifest: (void)Manifest::decode(view); return true;
        case ObjectType::Crl: (void)Crl::decode(view); return true;
        case ObjectType::Dead: (void)DeadObject::decode(view); return true;
        case ObjectType::Roll: (void)RollObject::decode(view); return true;
        case ObjectType::Hints: (void)HintsFile::decode(view); return true;
    }
    return false;
}

class FuzzDecode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDecode, MutationsNeverCrashDecoders) {
    Rng rng(GetParam());
    const std::vector<Bytes> samples = sampleObjects();
    int parseErrors = 0;
    int accepted = 0;
    for (int iter = 0; iter < 400; ++iter) {
        Bytes wire = samples[static_cast<std::size_t>(rng.nextBelow(samples.size()))];
        const int mutations = static_cast<int>(rng.nextInRange(1, 6));
        for (int mutationIndex = 0; mutationIndex < mutations; ++mutationIndex) {
            switch (rng.nextBelow(3)) {
                case 0:  // bit flip
                    if (!wire.empty()) {
                        wire[static_cast<std::size_t>(rng.nextBelow(wire.size()))] ^=
                            static_cast<std::uint8_t>(1u << rng.nextBelow(8));
                    }
                    break;
                case 1:  // truncate
                    wire.resize(static_cast<std::size_t>(rng.nextBelow(wire.size() + 1)));
                    break;
                case 2:  // append garbage
                    for (int j = 0; j < 4; ++j) {
                        wire.push_back(static_cast<std::uint8_t>(rng.nextU64()));
                    }
                    break;
            }
        }
        try {
            if (tryDecode(wire)) ++accepted;
        } catch (const ParseError&) {
            ++parseErrors;  // the only acceptable failure mode
        }
    }
    // Most mutations must be rejected (bit flips inside hash/signature
    // payload bytes can legitimately decode).
    EXPECT_GT(parseErrors, 100) << "mutations were mostly accepted?";
    (void)accepted;
}

TEST_P(FuzzDecode, PureGarbageNeverCrashes) {
    Rng rng(GetParam() ^ 0xdead);
    for (int iter = 0; iter < 300; ++iter) {
        Bytes junk(static_cast<std::size_t>(rng.nextBelow(300)));
        for (auto& b : junk) b = static_cast<std::uint8_t>(rng.nextU64());
        try {
            (void)tryDecode(junk);
        } catch (const ParseError&) {
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecode, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Builds a realistic relying-party cache blob: a small consent-mode
/// hierarchy synced twice (so manifest history, hints and alarms are all
/// populated), then serialized.
Bytes realisticStateBlob() {
    Repository repo;
    consent::AuthorityDirectory dir(
        77, consent::AuthorityOptions{.ts = 4, .signerHeight = 6, .manifestLifetime = 1000});
    SimClock clock;
    auto& root = dir.createTrustAnchor(
        "root", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}), repo, clock.now());
    auto& org = dir.createChild(root, "org", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}),
                                repo, clock.now());
    org.issueRoa("r1", 64500, {{pfx("10.1.0.0/20"), 24}}, repo, clock.now());
    rp::RelyingParty alice("alice", {root.cert()}, rp::RpOptions{.ts = 4, .tg = 8});
    alice.sync(repo.snapshot(), clock.now());
    clock.advance(1);
    org.issueRoa("r2", 64501, {{pfx("10.1.16.0/20"), 24}}, repo, clock.now());
    root.unsafeUnilateralRevokeChild("org", repo, clock.now());  // populate alarms
    alice.sync(repo.snapshot(), clock.now());
    return alice.serializeState();
}

class FuzzStateBlob : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzStateBlob, MutatedCacheLoadsFullyOrThrows) {
    // The cache file is the one input a relying party reads that chaos can
    // reach at rest (disk corruption, torn writes). Mutations must either
    // raise ParseError or deserialize into a fully-functional relying
    // party — never crash, never a half-loaded state that later faults.
    const Bytes blob = realisticStateBlob();
    Rng rng(GetParam() * 0x9e3779b97f4a7c15ull + 1);
    int parseErrors = 0;
    int accepted = 0;
    for (int iter = 0; iter < 150; ++iter) {
        Bytes wire = blob;
        const int mutations = static_cast<int>(rng.nextInRange(1, 6));
        for (int m = 0; m < mutations; ++m) {
            switch (rng.nextBelow(3)) {
                case 0:  // bit flip
                    wire[static_cast<std::size_t>(rng.nextBelow(wire.size()))] ^=
                        static_cast<std::uint8_t>(1u << rng.nextBelow(8));
                    break;
                case 1:  // truncate (torn write)
                    wire.resize(static_cast<std::size_t>(rng.nextBelow(wire.size() + 1)));
                    break;
                case 2:  // append garbage
                    for (int j = 0; j < 8; ++j) {
                        wire.push_back(static_cast<std::uint8_t>(rng.nextU64()));
                    }
                    break;
            }
        }
        if (wire == blob) continue;
        try {
            rp::RelyingParty restored =
                rp::RelyingParty::deserializeState(ByteView(wire.data(), wire.size()));
            // Whatever decoded must be a *complete* state: exercising it
            // must not throw, and it must re-serialize canonically.
            (void)restored.validRoas();
            (void)restored.roaState();
            (void)restored.exportManifestClaims();
            const Bytes again = restored.serializeState();
            EXPECT_EQ(again, restored.serializeState());
            ++accepted;
        } catch (const ParseError&) {
            ++parseErrors;  // the only acceptable failure mode
        }
    }
    EXPECT_GT(parseErrors, 50) << "cache mutations were mostly accepted?";
    (void)accepted;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzStateBlob, ::testing::Values(1, 2, 3, 4));

TEST(FuzzDecode, MutatedSignaturesNeverVerify) {
    // Signature forgery via byte-level mutation must always fail.
    Rng rng(99);
    Signer signer = Signer::generate(123, 3);
    const std::string msg = "the exact message";
    const Bytes sig = signer.sign(msg);
    const PublicKey pub = signer.publicKey();
    for (int iter = 0; iter < 300; ++iter) {
        Bytes mutated = sig;
        const int flips = static_cast<int>(rng.nextInRange(1, 4));
        for (int f = 0; f < flips; ++f) {
            mutated[static_cast<std::size_t>(rng.nextBelow(mutated.size()))] ^=
                static_cast<std::uint8_t>(1u << rng.nextBelow(8));
        }
        if (mutated == sig) continue;
        EXPECT_FALSE(verify(pub, msg, ByteView(mutated.data(), mutated.size())));
    }
}

}  // namespace
}  // namespace rpkic
