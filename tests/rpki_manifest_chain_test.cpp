// Unit coverage for the standalone horizontal hash-chain verifier —
// the exact code RelyingParty::processPoint trusts before replaying
// intermediate manifests (§5.3.2).
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "rpki/manifest_chain.hpp"

namespace rpkic {
namespace {

Manifest makeManifest(std::uint64_t number) {
    Manifest m;
    m.issuerRcUri = "rpki://org/org.cer";
    m.pubPointUri = "rpki://org/";
    m.number = number;
    // (to_string first: GCC 12's -Wrestrict misfires on `"lit" + string&&`.)
    m.entries = {{"a.roa", sha256(std::to_string(number) + "-a"), number}};
    m.signature = {1, 2, 3};
    return m;
}

/// A well-formed chain of `n` manifests starting at `first`.
std::vector<Manifest> makeChain(std::size_t n, std::uint64_t first = 7) {
    std::vector<Manifest> chain;
    for (std::size_t i = 0; i < n; ++i) {
        Manifest m = makeManifest(first + i);
        if (!chain.empty()) m.prevManifestHash = chain.back().bodyHash();
        chain.push_back(std::move(m));
    }
    return chain;
}

TEST(ManifestChain, EmptyAndSingletonAreTriviallyIntact) {
    EXPECT_TRUE(verifyManifestChain({}).ok);
    EXPECT_TRUE(verifyManifestChain({makeManifest(3)}).ok);
}

TEST(ManifestChain, IntactChainVerifies) {
    const ChainCheck check = verifyManifestChain(makeChain(6));
    EXPECT_TRUE(check.ok);
    EXPECT_EQ(check.kind, ChainBreak::None);
    EXPECT_EQ(check.breakIndex, 0u);
    EXPECT_EQ(check.reason, "");
}

TEST(ManifestChain, NumberGapDetectedAtFirstBreak) {
    std::vector<Manifest> chain = makeChain(5);
    chain[3].number += 1;  // 7,8,9,11,11-chain...
    const ChainCheck check = verifyManifestChain(chain);
    EXPECT_FALSE(check.ok);
    EXPECT_EQ(check.kind, ChainBreak::NumberGap);
    EXPECT_EQ(check.breakIndex, 3u);
    EXPECT_NE(check.reason.find("does not succeed"), std::string::npos);
}

TEST(ManifestChain, HashMismatchDetected) {
    std::vector<Manifest> chain = makeChain(4);
    chain[2].prevManifestHash.bytes[0] ^= 0x01;
    const ChainCheck check = verifyManifestChain(chain);
    EXPECT_FALSE(check.ok);
    EXPECT_EQ(check.kind, ChainBreak::HashMismatch);
    EXPECT_EQ(check.breakIndex, 2u);
}

TEST(ManifestChain, ContentTamperBreaksTheLinkAfterIt) {
    // Editing manifest k's *body* invalidates the prevManifestHash stored
    // in k+1 — the defining transparency property of the chain.
    std::vector<Manifest> chain = makeChain(4);
    chain[1].entries[0].fileHash = sha256("tampered");
    const ChainCheck check = verifyManifestChain(chain);
    EXPECT_FALSE(check.ok);
    EXPECT_EQ(check.kind, ChainBreak::HashMismatch);
    EXPECT_EQ(check.breakIndex, 2u);
}

TEST(ManifestChain, SignatureTamperDoesNotBreakTheChain) {
    // The chain commits to bodyHash (contents minus signature): re-signing
    // does not invalidate links. Signature checks happen elsewhere.
    std::vector<Manifest> chain = makeChain(4);
    chain[1].signature = {9, 9, 9, 9};
    EXPECT_TRUE(verifyManifestChain(chain).ok);
}

TEST(ManifestChain, ReorderedChainRejected) {
    std::vector<Manifest> chain = makeChain(4);
    std::swap(chain[1], chain[2]);
    const ChainCheck check = verifyManifestChain(chain);
    EXPECT_FALSE(check.ok);
    EXPECT_EQ(check.breakIndex, 1u);
    EXPECT_EQ(check.kind, ChainBreak::NumberGap);
}

TEST(ManifestChain, StopsAtFirstOfSeveralBreaks) {
    std::vector<Manifest> chain = makeChain(6);
    chain[2].prevManifestHash.bytes[5] ^= 0xff;
    chain[4].number = 999;
    const ChainCheck check = verifyManifestChain(chain);
    EXPECT_FALSE(check.ok);
    EXPECT_EQ(check.breakIndex, 2u);
    EXPECT_EQ(check.kind, ChainBreak::HashMismatch);
}

TEST(ManifestChain, RoundTripThroughWireFormatPreservesVerdict) {
    // Decode(encode(chain)) must verify identically — the relying party
    // always sees manifests after a wire round-trip.
    std::vector<Manifest> chain = makeChain(5);
    std::vector<Manifest> decoded;
    for (const Manifest& m : chain) {
        const Bytes wire = m.encode();
        decoded.push_back(Manifest::decode(ByteView(wire.data(), wire.size())));
    }
    EXPECT_TRUE(verifyManifestChain(decoded).ok);
    decoded[3].prevManifestHash.bytes[31] ^= 0x80;
    EXPECT_FALSE(verifyManifestChain(decoded).ok);
}

}  // namespace
}  // namespace rpkic
