// Relying-party persistence: the serialized cache restores the exact
// state, and — the property that matters — transition detection works
// ACROSS the save/load boundary: a unilateral revocation between two
// process lifetimes is still caught.
#include <gtest/gtest.h>

#include "consent/authority.hpp"
#include "rp/relying_party.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace rpkic {
namespace {

using consent::Authority;
using consent::AuthorityDirectory;
using consent::AuthorityOptions;
using rp::AlarmType;
using rp::RelyingParty;
using rp::RpOptions;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

struct Fixture {
    Repository repo;
    AuthorityDirectory dir{121, AuthorityOptions{.ts = 4, .signerHeight = 6,
                                                 .manifestLifetime = 1000}};
    SimClock clock;
    Authority* root;
    Authority* org;

    Fixture() {
        root = &dir.createTrustAnchor("root", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                      repo, clock.now());
        org = &dir.createChild(*root, "org", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}),
                               repo, clock.now());
        org->issueRoa("r", 64500, {{pfx("10.1.0.0/20"), 24}}, repo, clock.now());
    }
};

TEST(RpCache, SerializedStateRestoresIdentically) {
    Fixture f;
    RelyingParty alice("alice", {f.root->cert()}, RpOptions{.ts = 4, .tg = 8});
    alice.sync(f.repo.snapshot(), f.clock.now());

    const Bytes blob = alice.serializeState();
    RelyingParty restored = RelyingParty::deserializeState(ByteView(blob.data(), blob.size()));

    EXPECT_EQ(restored.name(), alice.name());
    EXPECT_EQ(restored.roaState(), alice.roaState());
    EXPECT_EQ(restored.alarms().count(), alice.alarms().count());
    const auto claimsA = alice.exportManifestClaims();
    const auto claimsB = restored.exportManifestClaims();
    ASSERT_EQ(claimsA.size(), claimsB.size());
    for (std::size_t i = 0; i < claimsA.size(); ++i) {
        EXPECT_EQ(claimsA[i].bodyHash, claimsB[i].bodyHash);
        EXPECT_EQ(claimsA[i].number, claimsB[i].number);
    }
    // And re-serialization is byte-identical (canonical state).
    EXPECT_EQ(restored.serializeState(), blob);
}

TEST(RpCache, TransitionDetectionSurvivesRestart) {
    Fixture f;
    Bytes blob;
    {
        // Process 1: sync day 0, persist, exit.
        RelyingParty alice("alice", {f.root->cert()}, RpOptions{.ts = 4, .tg = 8});
        alice.sync(f.repo.snapshot(), f.clock.now());
        ASSERT_EQ(alice.alarms().count(), 0u);
        blob = alice.serializeState();
    }

    // The world moves on: a unilateral revocation happens meanwhile.
    f.clock.advance(1);
    f.root->unsafeUnilateralRevokeChild("org", f.repo, f.clock.now());

    {
        // Process 2: restore, sync day 1 — the takedown must be caught with
        // full accountability, exactly as if the process had never exited.
        RelyingParty alice = RelyingParty::deserializeState(ByteView(blob.data(), blob.size()));
        alice.sync(f.repo.snapshot(), f.clock.now());
        const auto alarms = alice.alarms().ofType(AlarmType::UnilateralRevocation);
        ASSERT_FALSE(alarms.empty());
        EXPECT_TRUE(alarms[0].accountable);
        EXPECT_EQ(alarms[0].victim, f.org->cert().uri);
        EXPECT_EQ(alarms[0].perpetrator, f.root->cert().uri);
    }
}

TEST(RpCache, ConsentKnowledgeSurvivesRestart) {
    Fixture f;
    RelyingParty alice("alice", {f.root->cert()}, RpOptions{.ts = 4, .tg = 8});
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    const auto deads = f.dir.collectRevocationConsent(*f.org);
    f.root->revokeChild("org", deads, f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    ASSERT_TRUE(alice.sawDeadFor(f.org->cert().uri, f.org->cert().serial));

    const Bytes blob = alice.serializeState();
    RelyingParty restored = RelyingParty::deserializeState(ByteView(blob.data(), blob.size()));
    EXPECT_TRUE(restored.sawDeadFor(f.org->cert().uri, f.org->cert().serial));
    EXPECT_EQ(restored.alarms().count(), 0u);
}

TEST(RpCache, CorruptedCachesAreRejected) {
    Fixture f;
    RelyingParty alice("alice", {f.root->cert()}, RpOptions{.ts = 4, .tg = 8});
    alice.sync(f.repo.snapshot(), f.clock.now());
    const Bytes blob = alice.serializeState();

    // Truncations at various depths must throw, never crash or half-load.
    for (std::size_t len = 0; len < blob.size(); len += blob.size() / 23 + 1) {
        EXPECT_THROW((void)RelyingParty::deserializeState(ByteView(blob.data(), len)),
                     ParseError)
            << "length " << len;
    }
    // Bad magic.
    Bytes badMagic = blob;
    badMagic[0] ^= 0xff;
    EXPECT_THROW(
        (void)RelyingParty::deserializeState(ByteView(badMagic.data(), badMagic.size())),
        ParseError);
    // Random bit flips either throw ParseError or produce a cache that
    // still serializes (no UB / crashes).
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        Bytes mutated = blob;
        mutated[static_cast<std::size_t>(rng.nextBelow(mutated.size()))] ^=
            static_cast<std::uint8_t>(1u << rng.nextBelow(8));
        try {
            RelyingParty restored =
                RelyingParty::deserializeState(ByteView(mutated.data(), mutated.size()));
            (void)restored.serializeState();
        } catch (const ParseError&) {
        }
    }
}

TEST(RpCache, ChecksumMismatchIsPreciseNotMidStream) {
    Fixture f;
    RelyingParty alice("alice", {f.root->cert()}, RpOptions{.ts = 4, .tg = 8});
    alice.sync(f.repo.snapshot(), f.clock.now());
    const Bytes blob = alice.serializeState();

    // Flip one bit deep inside the body: the error must name the checksum,
    // not whatever field the flipped byte happened to land in.
    Bytes mutated = blob;
    mutated[mutated.size() / 2] ^= 0x01;
    try {
        (void)RelyingParty::deserializeState(ByteView(mutated.data(), mutated.size()));
        FAIL() << "bit-flipped cache was accepted";
    } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("cache checksum mismatch"), std::string::npos)
            << e.what();
    }
}

TEST(RpCache, LegacyFooterlessCachesNeedExplicitOptIn) {
    constexpr std::size_t kFooterLen = 8 + 32 + 4;
    Fixture f;
    RelyingParty alice("alice", {f.root->cert()}, RpOptions{.ts = 4, .tg = 8});
    alice.sync(f.repo.snapshot(), f.clock.now());
    const Bytes blob = alice.serializeState();
    ASSERT_GT(blob.size(), kFooterLen);

    // A pre-footer cache is exactly today's body without the trailer.
    const Bytes legacy(blob.begin(), blob.end() - static_cast<std::ptrdiff_t>(kFooterLen));

    // Strict mode refuses it with a precise diagnosis...
    try {
        (void)RelyingParty::deserializeState(ByteView(legacy.data(), legacy.size()));
        FAIL() << "footerless cache was accepted without the opt-in";
    } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("no integrity footer"), std::string::npos)
            << e.what();
    }

    // ... and the explicit opt-in restores the identical state, which then
    // re-serializes in the new footered format.
    RelyingParty restored = RelyingParty::deserializeState(
        ByteView(legacy.data(), legacy.size()), /*allowLegacy=*/true);
    EXPECT_EQ(restored.roaState(), alice.roaState());
    EXPECT_EQ(restored.serializeState(), blob);
}

}  // namespace
}  // namespace rpkic
