// The footnote-8 extension: ROAs entitled to consent via EE keys. With it
// enabled, Case Study 2's silent ROA deletion becomes an accountable
// unilateral-revocation alarm.
#include <gtest/gtest.h>

#include "consent/authority.hpp"
#include "rp/relying_party.hpp"

namespace rpkic {
namespace {

using consent::Authority;
using consent::AuthorityDirectory;
using consent::AuthorityOptions;
using rp::AlarmType;
using rp::RelyingParty;
using rp::RpOptions;

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

struct Fixture {
    Repository repo;
    AuthorityDirectory dir{61, AuthorityOptions{.ts = 3, .signerHeight = 6,
                                                .manifestLifetime = 100,
                                                .roaConsentViaEe = true}};
    SimClock clock;
    Authority* root;
    Authority* isp;

    Fixture() {
        root = &dir.createTrustAnchor("root", ResourceSet::ofPrefixes({pfx("79.0.0.0/8")}),
                                      repo, clock.now());
        isp = &dir.createChild(*root, "ru-isp",
                               ResourceSet::ofPrefixes({pfx("79.139.96.0/19")}), repo,
                               clock.now());
        isp->issueRoa("covering", 43782, {{pfx("79.139.96.0/19"), 20}}, repo, clock.now());
        isp->issueRoa("victim", 51813, {{pfx("79.139.96.0/24"), 24}}, repo, clock.now());
    }

    RelyingParty rp(const std::string& name) {
        return RelyingParty(name, {root->cert()}, RpOptions{.ts = 3, .tg = 6});
    }
};

TEST(RoaConsent, IssuedRoasCarryEeKeys) {
    Fixture f;
    const Snapshot snap = f.repo.snapshot();
    const Bytes* raw = snap.file(f.isp->pubPointUri(), "victim.roa");
    ASSERT_NE(raw, nullptr);
    const Roa roa = Roa::decode(ByteView(raw->data(), raw->size()));
    EXPECT_TRUE(roa.hasEeKey);
}

TEST(RoaConsent, ConsensualDeletionRaisesNoAlarm) {
    Fixture f;
    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());
    ASSERT_EQ(alice.alarms().count(), 0u);

    f.clock.advance(1);
    f.isp->deleteRoa("victim", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u)
        << (alice.alarms().count() ? alice.alarms().all()[0].str() : "");
    EXPECT_EQ(alice.validRoas().size(), 1u);
}

TEST(RoaConsent, CaseStudy2BecomesAccountable) {
    // The very event of Case Study 2 — ROA deleted while a covering ROA
    // remains — is silent in the current RPKI. With EE consent the relying
    // party raises an accountable unilateral-revocation alarm naming the
    // victim ROA.
    Fixture f;
    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    f.clock.advance(1);
    f.isp->unsafeDeleteRoaWithoutConsent("victim", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    const auto alarms = alice.alarms().ofType(AlarmType::UnilateralRevocation);
    ASSERT_EQ(alarms.size(), 1u);
    EXPECT_TRUE(alarms[0].accountable);
    EXPECT_EQ(alarms[0].victim, f.isp->pubPointUri() + "victim.roa");
    EXPECT_EQ(alarms[0].perpetrator, f.isp->cert().uri);
}

TEST(RoaConsent, ForgedEeDeadDoesNotCount) {
    Fixture f;
    RelyingParty alice = f.rp("alice");
    alice.sync(f.repo.snapshot(), f.clock.now());

    // Fabricate a .dead signed by the wrong key, then whack the ROA.
    f.clock.advance(1);
    const Snapshot snap = f.repo.snapshot();
    const Bytes* raw = snap.file(f.isp->pubPointUri(), "victim.roa");
    ASSERT_NE(raw, nullptr);
    const Roa roa = Roa::decode(ByteView(raw->data(), raw->size()));
    DeadObject forged;
    forged.rcUri = roa.uri;
    forged.rcSerial = roa.serial;
    forged.rcHash = fileHashOf(ByteView(raw->data(), raw->size()));
    forged.fullRevocation = true;
    Signer wrongKey = Signer::generate(777, 2);
    const Bytes body = forged.encodeBody();
    forged.signature = wrongKey.sign(ByteView(body.data(), body.size()));

    f.isp->unsafeReintroduceFile("victim.roa.2.fake.dead", forged.encode(), f.repo,
                                 f.clock.now());
    f.isp->unsafeDeleteRoaWithoutConsent("victim", f.repo, f.clock.now());
    alice.sync(f.repo.snapshot(), f.clock.now());

    EXPECT_TRUE(alice.alarms().has(AlarmType::InvalidSyntax))
        << "the forged .dead is provably bad";
    EXPECT_TRUE(alice.alarms().has(AlarmType::UnilateralRevocation))
        << "and it does not count as consent";
}

TEST(RoaConsent, LegacyRoasWithoutEeKeysStaySilent) {
    // Mixed population: ROAs minted before the extension carry no EE key
    // and their deletion stays non-alarming (backwards compatible).
    Repository repo;
    AuthorityDirectory dir(62, AuthorityOptions{.ts = 3, .signerHeight = 6,
                                                .manifestLifetime = 100,
                                                .roaConsentViaEe = false});
    SimClock clock;
    Authority& root = dir.createTrustAnchor(
        "root", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}), repo, clock.now());
    Authority& org = dir.createChild(root, "org", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}),
                                     repo, clock.now());
    org.issueRoa("legacy", 64500, {{pfx("10.1.0.0/20"), 24}}, repo, clock.now());

    RelyingParty alice("alice", {root.cert()}, RpOptions{.ts = 3, .tg = 6});
    alice.sync(repo.snapshot(), clock.now());

    clock.advance(1);
    org.deleteRoa("legacy", repo, clock.now());
    alice.sync(repo.snapshot(), clock.now());
    EXPECT_EQ(alice.alarms().count(), 0u);
}

}  // namespace
}  // namespace rpkic
