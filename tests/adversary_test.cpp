// Attack zoo (src/adversary): pack registry and oracles, the oracle
// differ's exact semantics, end-to-end pack runs against their shipped
// oracles (invariants I12/I13), oracle soundness in both directions (a
// wrong oracle must fail; a calm run must produce nothing), detection
// teeth (disabling the detector paths must break a semantic pack), and
// bit-exact --plan replay of pack runs.
#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/pack.hpp"
#include "adversary/runner.hpp"
#include "obs/flight/recorder.hpp"
#include "obs/obs.hpp"
#include "util/errors.hpp"

namespace rpkic::adversary {
namespace {

using fleet::MemberFaultClass;
using rp::AlarmType;
using rp::FetchOutcome;

// ---------------------------------------------------------------------------
// Registry

TEST(PackRegistry, CatalogueIsStableAndCalmIsLast) {
    const std::vector<std::string>& names = packNames();
    ASSERT_GE(names.size(), 6u);
    // The five attack classes from the issue plus the fault-free control.
    for (const char* required : {"oversized-object", "manifest-graph", "same-serial-swap",
                                 "rollover-replay", "stalloris-drain", "calm"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
            << "missing pack: " << required;
    }
    EXPECT_EQ(names.back(), "calm") << "the false-positive control must close the catalogue";
    for (const std::string& name : names) {
        const auto pack = makePack(name);
        EXPECT_EQ(pack->info().name, name);
        EXPECT_FALSE(pack->info().title.empty());
        EXPECT_FALSE(pack->info().threatRef.empty());
        EXPECT_EQ(pack->oracle().pack, name);
        // Every pack feeds the fuzz corpus (satellite: corpus seeding).
        EXPECT_FALSE(pack->tlvSeed().empty());
        EXPECT_FALSE(pack->chainProgramSeed().empty());
    }
}

TEST(PackRegistry, UnknownNamesAreRejected) {
    EXPECT_THROW((void)makePack("meteor"), UsageError);
    EXPECT_THROW((void)resolvePackList("calm,meteor"), UsageError);
    EXPECT_THROW((void)resolvePackList(""), UsageError);
    EXPECT_EQ(resolvePackList("all"), packNames());
    EXPECT_EQ(resolvePackList("calm"), std::vector<std::string>{"calm"});
    const std::vector<std::string> two = resolvePackList("stalloris-drain,calm");
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0], "stalloris-drain");
    EXPECT_EQ(two[1], "calm");
}

// ---------------------------------------------------------------------------
// Oracle serialization

TEST(PackOracleText, EveryShippedOracleRoundTripsExactly) {
    for (const std::string& name : packNames()) {
        const PackOracle oracle = makePack(name)->oracle();
        const std::string text = oracle.serialize();
        const PackOracle back = PackOracle::parse(text);
        EXPECT_EQ(back, oracle) << "oracle text round-trip failed for " << name;
        // Canonical: serializing again is byte-identical.
        EXPECT_EQ(back.serialize(), text);
    }
}

TEST(PackOracleText, MalformedInputsRaiseParseError) {
    EXPECT_THROW((void)PackOracle::parse("not an oracle"), ParseError);
    const std::string good = makePack("stalloris-drain")->oracle().serialize();
    EXPECT_THROW((void)PackOracle::parse(good + "require-alarm class=meteor\n"), ParseError);
}

// ---------------------------------------------------------------------------
// diffOracle semantics

PackOracle emptyOracle(const std::string& pack) {
    PackOracle o;
    o.pack = pack;
    return o;
}

TEST(DiffOracle, CleanWhenNothingExpectedAndNothingRealized) {
    EXPECT_TRUE(diffOracle(emptyOracle("t"), RealizedRun{}).clean());
}

TEST(DiffOracle, MissingRequiredAlarmIsReportedI12) {
    PackOracle o = emptyOracle("t");
    o.requiredAlarms.push_back({AlarmType::UnilateralRevocation, true, 2, "", ""});
    RealizedRun run;
    run.alarms.push_back(
        {AlarmType::UnilateralRevocation, "x.roa", "rpki://rir/rir.cer", true, "", 0});
    const OracleDiff diff = diffOracle(o, run);  // one matching alarm < minCount 2
    ASSERT_EQ(diff.missing.size(), 1u);
    EXPECT_NE(diff.missing[0].find("unilateral-revocation"), std::string::npos);
    EXPECT_TRUE(diff.spurious.empty());
}

TEST(DiffOracle, VictimAndPerpetratorSubstringsConstrainTheMatch) {
    PackOracle o = emptyOracle("t");
    o.requiredAlarms.push_back({AlarmType::MissingInformation, false, 1, "isp1", ""});
    RealizedRun run;
    run.alarms.push_back({AlarmType::MissingInformation, "rpki://isp2/", "", false, "", 0});
    const OracleDiff diff = diffOracle(o, run);
    // The isp2 alarm does not satisfy (victim~isp1) — and is itself spurious.
    EXPECT_EQ(diff.missing.size(), 1u);
    EXPECT_EQ(diff.spurious.size(), 1u);
}

TEST(DiffOracle, UnsanctionedAlarmIsSpuriousUnlessTolerated) {
    RealizedRun run;
    run.alarms.push_back({AlarmType::GlobalInconsistency, "m", "", false, "", 0});
    PackOracle bare = emptyOracle("t");
    EXPECT_EQ(diffOracle(bare, run).spurious.size(), 1u);
    PackOracle tolerant = bare;
    tolerant.toleratedAlarms.push_back({AlarmType::GlobalInconsistency, false});
    EXPECT_TRUE(diffOracle(tolerant, run).clean());
    // Tolerance is (class, accountability)-exact: an *accountable* alarm of
    // the same class stays spurious.
    run.alarms[0].accountable = true;
    EXPECT_EQ(diffOracle(tolerant, run).spurious.size(), 1u);
}

TEST(DiffOracle, RejectionsQuarantineAndAttributionAreJudged) {
    PackOracle o = emptyOracle("t");
    o.requiredRejections.push_back({FetchOutcome::Regressed, 3});
    o.expectQuarantine = true;
    o.expectAttribution = true;
    o.attribution = MemberFaultClass::Stalled;

    RealizedRun run;  // nothing realized: all three requirements missing
    EXPECT_EQ(diffOracle(o, run).missing.size(), 3u);

    run.rejections[FetchOutcome::Regressed] = 3;
    run.quarantined = true;
    run.verdictClasses.push_back(MemberFaultClass::Stalled);
    EXPECT_TRUE(diffOracle(o, run).clean());

    // A verdict class outside {attribution} ∪ tolerated is spurious (I13).
    run.verdictClasses.push_back(MemberFaultClass::MirrorFed);
    EXPECT_EQ(diffOracle(o, run).spurious.size(), 1u);
    o.toleratedVerdicts.push_back(MemberFaultClass::MirrorFed);
    EXPECT_TRUE(diffOracle(o, run).clean());

    // Quarantine is exact-match in both directions: a quarantine the
    // oracle did not predict is a false positive.
    PackOracle noQuarantine = emptyOracle("t");
    RealizedRun quarantined;
    quarantined.quarantined = true;
    EXPECT_EQ(diffOracle(noQuarantine, quarantined).spurious.size(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end pack runs

TEST(PackRuns, EveryPackPassesItsShippedOracle) {
    for (const std::string& name : packNames()) {
        for (const std::uint64_t seed : {1ull, 2ull}) {
            PackRunConfig cfg;
            cfg.pack = name;
            cfg.seed = seed;
            const PackRunResult r = runPack(cfg);
            EXPECT_TRUE(r.passed) << name << " seed " << seed << " diff:\n"
                                  << (r.diff.missing.empty() ? "" : r.diff.missing[0])
                                  << (r.diff.spurious.empty() ? "" : r.diff.spurious[0]);
            EXPECT_TRUE(r.diff.clean());
            EXPECT_EQ(r.plan.pack, name) << "plan must name its generating pack";
            EXPECT_EQ(r.plan.seed, seed);
            EXPECT_FALSE(r.transcript.empty());
            EXPECT_TRUE(r.postmortems.empty()) << "no capture on a passing run";
        }
    }
}

TEST(PackRuns, CalmControlRealizesAbsolutelyNothing) {
    // The false-positive guard in its strongest form: a fault-free run
    // must not merely pass its oracle, it must realize zero of everything.
    PackRunConfig cfg;
    cfg.pack = "calm";
    cfg.seed = 7;
    const PackRunResult r = runPack(cfg);
    ASSERT_TRUE(r.passed);
    EXPECT_TRUE(r.realized.alarms.empty());
    EXPECT_TRUE(r.realized.rejections.empty());
    EXPECT_FALSE(r.realized.quarantined);
    EXPECT_TRUE(r.realized.verdictClasses.empty());
    EXPECT_EQ(r.faultApplications, 0u);
    EXPECT_EQ(r.overlayApplications, 0u);
    EXPECT_TRUE(r.plan.faults.empty());
}

TEST(PackRuns, AttackPacksActuallyPerturbDelivery) {
    // Guards against a pack degenerating into calm: every attack pack must
    // inject faults or overlays that demonstrably land.
    for (const std::string& name : packNames()) {
        if (name == "calm") continue;
        PackRunConfig cfg;
        cfg.pack = name;
        const PackRunResult r = runPack(cfg);
        EXPECT_GT(r.faultApplications + r.overlayApplications, 0u)
            << name << " perturbed nothing";
        EXPECT_FALSE(r.realized.alarms.empty()) << name << " raised no alarms at all";
    }
}

TEST(PackRuns, StallorisDrainQuarantinesAndIsAttributedStalled) {
    PackRunConfig cfg;
    cfg.pack = "stalloris-drain";
    const PackRunResult r = runPack(cfg);
    ASSERT_TRUE(r.passed);
    EXPECT_TRUE(r.realized.quarantined);
    EXPECT_GT(r.realized.rejections.at(FetchOutcome::Regressed), 0u)
        << "the stale re-pin must be refused as a manifest regression";
    EXPECT_NE(std::find(r.realized.verdictClasses.begin(), r.realized.verdictClasses.end(),
                        MemberFaultClass::Stalled),
              r.realized.verdictClasses.end());
}

TEST(PackRuns, DisablingDetectionBreaksTheOracle) {
    // Teeth: with the detector paths off, the attack goes unseen and the
    // oracle must FAIL with missing requirements — proving the oracles
    // test the detectors, not merely the injectors.
    PackRunConfig cfg;
    cfg.pack = "same-serial-swap";
    cfg.disableDetection = true;
    const PackRunResult r = runPack(cfg);
    EXPECT_FALSE(r.passed);
    EXPECT_FALSE(r.diff.missing.empty());
}

TEST(PackRuns, DeliberatelyWrongOracleIsRefuted) {
    // Oracle soundness, direction 1: demanding alarms a calm world cannot
    // produce must fail (the differ is not vacuously true).
    PackOracle wrong = emptyOracle("calm");
    wrong.requiredAlarms.push_back({AlarmType::BadKeyRollover, true, 5, "", ""});
    PackRunConfig cfg;
    cfg.pack = "calm";
    cfg.oracleOverride = &wrong;
    const PackRunResult r = runPack(cfg);
    EXPECT_FALSE(r.passed);
    ASSERT_EQ(r.diff.missing.size(), 1u);
    EXPECT_NE(r.diff.missing[0].find("bad-key-rollover"), std::string::npos);

    // Direction 2: an oracle that sanctions nothing must flag a real
    // attack's alarms as spurious (false-positive guard has teeth too).
    PackOracle blind = emptyOracle("oversized-object");
    PackRunConfig cfg2;
    cfg2.pack = "oversized-object";
    cfg2.oracleOverride = &blind;
    const PackRunResult r2 = runPack(cfg2);
    EXPECT_FALSE(r2.passed);
    EXPECT_FALSE(r2.diff.spurious.empty());
}

TEST(PackRuns, FailuresCapturePostmortemsAndMetrics) {
    obs::Registry registry;
    obs::FlightRecorder recorder(1024);
    PackRunConfig cfg;
    cfg.pack = "rollover-replay";
    cfg.disableDetection = true;  // force an oracle miss
    cfg.registry = &registry;
    cfg.recorder = &recorder;
    const PackRunResult r = runPack(cfg);
    ASSERT_FALSE(r.passed);
    ASSERT_EQ(r.postmortems.size(), 1u);
    EXPECT_EQ(r.postmortems[0].trigger, "oracle-diff");
    EXPECT_FALSE(r.postmortems[0].bytes.empty());
    const std::string prom = registry.renderPrometheus();
    EXPECT_NE(prom.find("rc_adversary_runs_total"), std::string::npos);
    EXPECT_NE(prom.find("rc_adversary_oracle_misses_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Replay (determinism contract)

TEST(PackRuns, PlanReplayIsByteIdentical) {
    for (const std::string& name : {std::string("stalloris-drain"),
                                    std::string("same-serial-swap")}) {
        PackRunConfig cfg;
        cfg.pack = name;
        cfg.seed = 3;
        const PackRunResult direct = runPack(cfg);
        ASSERT_TRUE(direct.passed) << name;
        ASSERT_EQ(direct.plan.pack, name);

        // The plan round-trips through its text form, like --plan does.
        const FaultPlan plan = FaultPlan::parse(direct.plan.serialize());
        ASSERT_EQ(plan, direct.plan);

        const PackRunResult replay = runPackWithPlan(plan, PackRunConfig{});
        EXPECT_EQ(replay.transcript, direct.transcript) << name;
        EXPECT_EQ(replay.passed, direct.passed);
        EXPECT_EQ(replay.faultApplications, direct.faultApplications);
        EXPECT_EQ(replay.overlayApplications, direct.overlayApplications);
        EXPECT_EQ(replay.plan, direct.plan) << "replay must not grow the plan";
        EXPECT_EQ(replay.realized.alarms.size(), direct.realized.alarms.size());
        EXPECT_EQ(replay.realized.verdictClasses, direct.realized.verdictClasses);
    }
}

TEST(PackRuns, ReplayRejectsPlansWithoutAPack) {
    EXPECT_THROW((void)runPackWithPlan(FaultPlan{}, PackRunConfig{}), UsageError);
}

}  // namespace
}  // namespace rpkic::adversary
