// §5.6 "On the necessity of our modifications": the two counterexample
// attacks succeed against weakened relying parties and are caught by the
// full procedures.
#include <gtest/gtest.h>

#include "sim/driver.hpp"

namespace rpkic {
namespace {

TEST(Counterexample1, IntermediateStateCheckingIsNecessary) {
    const sim::CounterexampleResult r = sim::runCounterexample1(17);
    // The naive relying party (diffing odd states only) never notices the
    // un-consented narrowings: Y -> Y at identical resources.
    EXPECT_EQ(r.alarmsWithoutIntermediateChecks, 0u);
    // The full §5.4 procedures reconstruct every even state and catch each
    // of the three narrowings.
    EXPECT_GE(r.alarmsWithIntermediateChecks, 3u);
}

TEST(Counterexample2, InvalidLoggedObjectsMustAlarm) {
    const sim::CounterexampleResult r = sim::runCounterexample2(23);
    // Alice, who saw the manifest logging the oversized RC, alarms.
    EXPECT_GE(r.alarmsWithIntermediateChecks, 1u);
    // Bob, who first synced after the broadening, sees Y as valid and has
    // nothing to alarm about — exactly the Alice/Bob divergence the
    // "manifests must log only valid objects" rule makes detectable.
    EXPECT_EQ(r.alarmsWithoutIntermediateChecks, 0u);
    // Alice's alarm is accountable (she can publish the manifest + RC).
    bool accountable = false;
    for (const auto& a : r.alarms) {
        if (a.type == rp::AlarmType::ChildTooBroad) accountable |= a.accountable;
    }
    EXPECT_TRUE(accountable);
}

}  // namespace
}  // namespace rpkic
