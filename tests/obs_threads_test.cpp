// Multi-threaded stress over the observability layer — the pre-flight
// check for parallel/sharded sync (ROADMAP): before any worker pool is
// allowed to share the metrics registry, trace ring, and logger, those
// three must survive N threads hammering them concurrently with exact
// accounting. CI runs this binary under ThreadSanitizer
// (-DRC_SANITIZE=thread), which turns any data race the clang
// thread-safety annotations missed into a hard failure; in regular builds
// it still verifies the cross-thread accounting invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight/recorder.hpp"
#include "obs/obs.hpp"

namespace rpkic {
namespace {

constexpr int kThreads = 4;

/// Runs `fn(threadIndex)` on kThreads threads and joins them.
void inParallel(const std::function<void(int)>& fn) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&fn, t] { fn(t); });
    }
    for (std::thread& th : threads) th.join();
}

// --- registry ---------------------------------------------------------------

TEST(ObsThreads, RegistryCountersExactUnderContention) {
    obs::Registry reg;
    constexpr int kIters = 20000;
    inParallel([&](int t) {
        // Half the increments go through the slow registration path (mutex
        // + map lookup), half through a cached reference (relaxed atomic):
        // both patterns appear in the sync engine.
        obs::Counter& cached = reg.counter("rc_stress_cached_total", "cached-ref increments");
        for (int i = 0; i < kIters; ++i) {
            if (i % 2 == 0) {
                reg.counter("rc_stress_lookup_total", "lookup-path increments").inc();
            } else {
                cached.inc();
            }
            if (i % 4 == 0) {
                reg.gauge("rc_stress_depth", "per-thread gauge",
                          {{"thread", std::to_string(t)}})
                    .set(i);
            }
        }
    });
    EXPECT_EQ(reg.counter("rc_stress_lookup_total", "").value(),
              static_cast<std::uint64_t>(kThreads) * (kIters / 2));
    EXPECT_EQ(reg.counter("rc_stress_cached_total", "").value(),
              static_cast<std::uint64_t>(kThreads) * (kIters / 2));
}

TEST(ObsThreads, RegistryHistogramAccountingWhileRendering) {
    obs::Registry reg;
    constexpr int kIters = 8000;
    std::atomic<bool> stop{false};
    // A render thread repeatedly serializes the registry while writers
    // register and observe — the exporter path must never tear.
    std::thread render([&] {
        std::size_t renders = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            const std::string prom = reg.renderPrometheus();
            const std::string json = reg.renderJson();
            ASSERT_FALSE(json.empty());
            // Whatever snapshot we caught must lint clean.
            if (++renders % 16 == 0 && !prom.empty()) {
                EXPECT_TRUE(obs::lintPrometheus(prom).empty());
            }
        }
    });
    inParallel([&](int t) {
        obs::Histogram& hist =
            reg.histogram("rc_stress_latency_seconds", "threaded observations");
        for (int i = 0; i < kIters; ++i) {
            hist.observe(1e-6 * static_cast<double>((t + 1) * (i % 1000)));
        }
    });
    stop.store(true, std::memory_order_relaxed);
    render.join();
    EXPECT_EQ(reg.histogram("rc_stress_latency_seconds", "").totalCount(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_TRUE(obs::lintPrometheus(reg.renderPrometheus()).empty());
}

TEST(ObsThreads, SnapshotScrapeWhileInstrumenting) {
    // The /metrics path under contention: scraper threads loop
    // snapshot().renderPrometheus() while writers mint series and
    // observe. Every caught exposition must lint clean — in particular a
    // histogram's rendered +Inf bucket must equal its _count even when
    // observe() races the snapshot (torn-read freedom, satellite 1).
    obs::Registry reg;
    constexpr int kIters = 4000;
    std::atomic<bool> stop{false};
    std::vector<std::thread> scrapers;
    for (int s = 0; s < 2; ++s) {
        scrapers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const obs::RegistrySnapshot snap = reg.snapshot();
                const std::string prom = snap.renderPrometheus();
                for (const std::string& p : obs::lintPrometheus(prom)) {
                    ADD_FAILURE() << "lint: " << p;
                }
                for (const obs::FamilySnapshot& fam : snap.families) {
                    for (const obs::SeriesSnapshot& series : fam.series) {
                        if (fam.kind != obs::MetricKind::Histogram) continue;
                        std::uint64_t sum = 0;
                        for (const std::uint64_t b : series.buckets) sum += b;
                        EXPECT_EQ(sum, series.count) << fam.name;
                    }
                }
            }
        });
    }
    inParallel([&](int t) {
        obs::Histogram& hist = reg.histogram("rc_stress_scrape_seconds", "obs");
        for (int i = 0; i < kIters; ++i) {
            hist.observe(1e-5 * static_cast<double>(i % 500));
            reg.counter("rc_stress_scrape_total", "ops",
                        {{"thread", std::to_string(t)}})
                .inc();
        }
    });
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& th : scrapers) th.join();
    EXPECT_EQ(reg.histogram("rc_stress_scrape_seconds", "").totalCount(),
              static_cast<std::uint64_t>(kThreads) * kIters);
}

// --- flight recorder --------------------------------------------------------

TEST(ObsThreads, FlightRecorderExactAccountingUnderContention) {
    obs::Registry reg;
    obs::FlightRecorder rec(/*capacity=*/256);  // small ring: force drops
    rec.attachMetrics(&reg);
    constexpr int kEvents = 5000;
    std::atomic<bool> stop{false};
    // A reader loops snapshot() + openScopes() while writers record and
    // push/pop scopes — the /flightz render path under contention.
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const auto events = rec.snapshot();
            ASSERT_LE(events.size(), rec.capacity());
            for (std::size_t i = 1; i < events.size(); ++i) {
                ASSERT_LT(events[i - 1].seq, events[i].seq) << "snapshot out of order";
            }
            (void)rec.openScopes();
        }
    });
    inParallel([&](int t) {
        for (int i = 0; i < kEvents; ++i) {
            if (i % 16 == 0) {
                const obs::FlightScope scope(&rec, "stress",
                                             "t=" + std::to_string(t));
                rec.record(obs::FlightKind::LogLine, "stress", std::to_string(i));
            } else {
                rec.record(obs::FlightKind::Alarm, "stress", std::to_string(i));
            }
        }
    });
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    // Every record landed exactly once: retained + dropped = recorded,
    // and the scope events (one SpanClose per FlightScope) are included.
    const std::uint64_t scopesPerThread = (kEvents + 15) / 16;  // i % 16 == 0 hits
    const auto expected =
        static_cast<std::uint64_t>(kThreads) * (kEvents + scopesPerThread);
    EXPECT_EQ(rec.totalRecorded(), expected);
    EXPECT_EQ(rec.size() + rec.dropped(), expected);
    EXPECT_TRUE(rec.openScopes().empty());
}

// --- tracer -----------------------------------------------------------------

TEST(ObsThreads, TracerRingExactAccounting) {
    obs::Tracer tracer(1024);  // small ring: force wrap-around + drops
    tracer.setEnabled(true);
    constexpr int kSpans = 5000;
    inParallel([&](int) {
        for (int i = 0; i < kSpans; ++i) {
            obs::SpanGuard span = tracer.span("stress.span", "test");
            (void)span;
        }
    });
    const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kSpans;
    EXPECT_EQ(tracer.size(), tracer.capacity());
    EXPECT_EQ(tracer.dropped(), total - tracer.capacity());
    // The retained window is the most recent events: sequence numbers must
    // be unique and the render must be well-formed JSON-ish.
    const std::vector<obs::TraceEvent> events = tracer.snapshot();
    ASSERT_EQ(events.size(), tracer.capacity());
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
    const std::string trace = tracer.renderChromeTrace();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
}

TEST(ObsThreads, TracerSurvivesConcurrentSnapshotAndClear) {
    obs::Tracer tracer(512);
    tracer.setEnabled(true);
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            EXPECT_LE(tracer.snapshot().size(), tracer.capacity());
            (void)tracer.renderChromeTrace();
        }
    });
    std::thread clearer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            tracer.clear();
            std::this_thread::yield();
        }
    });
    inParallel([&](int) {
        for (int i = 0; i < 4000; ++i) {
            obs::SpanGuard span = tracer.span("stress.race", "test");
            (void)span;
        }
    });
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    clearer.join();
    EXPECT_LE(tracer.size(), tracer.capacity());
}

// --- logger -----------------------------------------------------------------

TEST(ObsThreads, LoggerExactDeliveryUnderContention) {
    obs::Logger logger;
    logger.setLevel(obs::LogLevel::Info);
    logger.setRateLimit(0, 1);  // no limiting: every line must arrive
    std::atomic<std::uint64_t> delivered{0};
    logger.setSink([&](const std::string& line) {
        ASSERT_NE(line.find("event=stress"), std::string::npos);
        delivered.fetch_add(1, std::memory_order_relaxed);
    });
    constexpr int kLines = 3000;
    inParallel([&](int t) {
        for (int i = 0; i < kLines; ++i) {
            logger.log(obs::LogLevel::Info, "threads", "stress",
                       {{"thread", std::to_string(t)}, {"i", std::to_string(i)}});
        }
    });
    EXPECT_EQ(delivered.load(), static_cast<std::uint64_t>(kThreads) * kLines);
    EXPECT_EQ(logger.suppressed(), 0u);
}

TEST(ObsThreads, LoggerRateLimitAccountingUnderContention) {
    obs::Logger logger;
    logger.setLevel(obs::LogLevel::Info);
    // One enormous window: exactly `burst` lines may ever be emitted.
    constexpr std::uint32_t kBurst = 64;
    logger.setRateLimit(kBurst, ~0ull);
    std::atomic<std::uint64_t> delivered{0};
    logger.setSink([&](const std::string&) {
        delivered.fetch_add(1, std::memory_order_relaxed);
    });
    constexpr int kLines = 2000;
    // Level churn from a side thread: readers of level_ must be
    // synchronized with the writers (this is what TSan checks).
    std::atomic<bool> stop{false};
    std::thread churn([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            logger.setLevel(obs::LogLevel::Info);
            (void)logger.enabled(obs::LogLevel::Warn);
            std::this_thread::yield();
        }
    });
    inParallel([&](int) {
        for (int i = 0; i < kLines; ++i) {
            logger.log(obs::LogLevel::Warn, "threads", "limited", {});
        }
    });
    stop.store(true, std::memory_order_relaxed);
    churn.join();
    EXPECT_EQ(delivered.load(), kBurst);
    EXPECT_EQ(logger.suppressed(),
              static_cast<std::uint64_t>(kThreads) * kLines - kBurst);
}

// --- clock + runtime switch -------------------------------------------------

TEST(ObsThreads, LogicalClockMonotoneAcrossThreads) {
    obs::LogicalTimeSource logical(10);
    obs::setTimeSource(&logical);
    constexpr int kReads = 20000;
    inParallel([&](int) {
        std::uint64_t prev = 0;
        for (int i = 0; i < kReads; ++i) {
            const std::uint64_t now = obs::nowNanos();
            ASSERT_GT(now, prev);  // strictly monotone per thread
            prev = now;
        }
    });
    obs::setTimeSource(nullptr);
    // Every tick was handed out exactly once.
    EXPECT_EQ(logical.reads(), static_cast<std::uint64_t>(kThreads) * kReads);
}

TEST(ObsThreads, RuntimeSwitchRacesMacroSites) {
    obs::Registry reg;
    obs::Counter& counter = reg.counter("rc_stress_switch_total", "macro-gated");
    obs::Histogram& hist = reg.histogram("rc_stress_switch_seconds", "macro-gated");
    std::atomic<bool> stop{false};
    std::thread toggler([&] {
        bool on = true;
        while (!stop.load(std::memory_order_relaxed)) {
            obs::setRuntimeEnabled(on);
            on = !on;
            std::this_thread::yield();
        }
    });
    inParallel([&](int) {
        for (int i = 0; i < 20000; ++i) {
            RC_OBS_COUNT(counter, 1);
            RC_OBS_OBSERVE(hist, 1e-6);
        }
    });
    stop.store(true, std::memory_order_relaxed);
    toggler.join();
    obs::setRuntimeEnabled(true);
    // Under toggling the counts are not exact — but they can never exceed
    // the attempt count (and in RC_OBSERVABILITY=OFF builds both stay 0).
    EXPECT_LE(counter.value(), static_cast<std::uint64_t>(kThreads) * 20000);
    EXPECT_LE(hist.totalCount(), static_cast<std::uint64_t>(kThreads) * 20000);
}

}  // namespace
}  // namespace rpkic
