// Mirror-world detection (paper §3.3, §5.4): a misbehaving authority shows
// Alice one view of its publication point and Bob another. Locally both
// views verify; the global consistency check — comparing manifest hashes —
// exposes the fork.
//
//   $ ./mirror_world_audit
#include <cstdio>

#include "consent/authority.hpp"
#include "rp/relying_party.hpp"

using namespace rpkic;
using consent::Authority;
using consent::AuthorityDirectory;
using consent::AuthorityOptions;

namespace {

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

}  // namespace

int main() {
    Repository worldA;
    AuthorityDirectory dir(11, AuthorityOptions{.ts = 4, .signerHeight = 6,
                                                .manifestLifetime = 20});
    SimClock clock;
    Authority& rir = dir.createTrustAnchor("rir", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                           worldA, clock.now());
    Authority& org = dir.createChild(rir, "org", ResourceSet::ofPrefixes({pfx("10.1.0.0/16")}),
                                     worldA, clock.now());
    org.issueRoa("anycast", 64496, {{pfx("10.1.0.0/16"), 24}}, worldA, clock.now());

    rp::RelyingParty alice("alice", {rir.cert()}, rp::RpOptions{.ts = 4, .tg = 8});
    rp::RelyingParty bob("bob", {rir.cert()}, rp::RpOptions{.ts = 4, .tg = 8});
    alice.sync(worldA.snapshot(), clock.now());
    bob.sync(worldA.snapshot(), clock.now());
    std::printf("day 0: alice and bob agree, %zu valid ROA(s) each\n",
                alice.validRoas().size());

    // --- the fork -----------------------------------------------------------
    // org duplicates its signing state and publishes diverging updates: the
    // world Bob sees loses the anycast ROA; Alice's world keeps it.
    clock.advance(1);
    Repository worldB = worldA;
    Authority& mirror = org.unsafeForkForMirrorWorld();
    org.issueRoa("extra", 64497, {{pfx("10.1.7.0/24"), 24}}, worldA, clock.now());
    mirror.deleteRoa("anycast", worldB, clock.now());

    alice.sync(worldA.snapshot(), clock.now());
    bob.sync(worldB.snapshot(), clock.now());
    std::printf("day 1: alice sees %zu ROAs, bob sees %zu — and neither has alarms "
                "(%zu / %zu)\n",
                alice.validRoas().size(), bob.validRoas().size(), alice.alarms().count(),
                bob.alarms().count());

    // --- the audit ----------------------------------------------------------
    // Bob posts the hashes of the latest manifest he obtained per point
    // (no synchronization needed, paper §5.4); Alice checks them against
    // every manifest hash she obtained within tg, and vice versa.
    std::printf("\nrunning the global consistency check both ways...\n");
    alice.globalConsistencyCheck(bob.exportManifestClaims(), clock.now());
    bob.globalConsistencyCheck(alice.exportManifestClaims(), clock.now());

    for (const auto& alarm : alice.alarms().all()) {
        std::printf("  alice: %s\n", alarm.str().c_str());
    }
    for (const auto& alarm : bob.alarms().all()) {
        std::printf("  bob:   %s\n", alarm.str().c_str());
    }

    std::printf("\nBoth manifests carry the same number but different contents, so the\n"
                "alarm is ACCOUNTABLE: publishing the two signed manifests proves the\n"
                "authority equivocated (paper Theorems 5.2/5.3). Without the check,\n"
                "Alice and Bob would live in mirror worlds indefinitely.\n");
    return 0;
}
