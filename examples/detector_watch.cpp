// Detector walkthrough: replay the paper's Case Studies 1 and 2 as state
// transitions, print the downgrade report an operator would receive, and
// write the Figure-6-style SVG visualization.
//
//   $ ./detector_watch
#include <cstdio>
#include <fstream>

#include "detector/diff.hpp"
#include "viz/prefix_tree_viz.hpp"

using namespace rpkic;

namespace {

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

void printReport(const char* title, const DowngradeReport& report) {
    std::printf("\n== %s ==\n", title);
    std::printf("  valid->invalid pairs:   %llu\n",
                static_cast<unsigned long long>(report.validToInvalidPairs));
    std::printf("  valid->unknown pairs:   %llu\n",
                static_cast<unsigned long long>(report.validToUnknownPairs));
    std::printf("  unknown->invalid pairs: %llu\n",
                static_cast<unsigned long long>(report.unknownToInvalidPairs));
    std::printf("  invalid addresses: %llu -> %llu\n",
                static_cast<unsigned long long>(report.invalidAddressesBefore),
                static_cast<unsigned long long>(report.invalidAddressesAfter));
    for (const auto& t : report.tupleTransitions) {
        std::printf("  route %-28s %s -> %s%s\n", t.route.str().c_str(),
                    std::string(toString(t.before)).c_str(),
                    std::string(toString(t.after)).c_str(),
                    t.isDowngrade() ? "   <-- DOWNGRADE" : "");
    }
    for (const auto& as : report.perAs) {
        if (as.exampleLostValid.empty()) continue;
        std::printf("  AS%u lost validity for:", as.asn);
        for (const auto& p : as.exampleLostValid) std::printf(" %s", p.str().c_str());
        std::printf("\n");
    }
}

}  // namespace

int main() {
    // --- Case Study 1: ROA misconfiguration (2013-12-13) -------------------
    // A new ROA (173.251.0.0/17, maxLength 24, AS 6128) appears; legitimate
    // /24 announcements without their own ROAs downgrade unknown->invalid.
    const RpkiState cs1Before;
    const RpkiState cs1After({{pfx("173.251.0.0/17"), 24, 6128}});
    printReport("Case Study 1: added ROA (173.251.0.0/17-24, AS 6128)",
                diffStates(cs1Before, cs1After));

    const PrefixValidityIndex idx(cs1After);
    std::printf("  now invalid: %s, %s\n",
                Route{pfx("173.251.91.0/24"), 53725}.str().c_str(),
                Route{pfx("173.251.54.0/24"), 13599}.str().c_str());

    // Visualize it (Figure 6 left).
    const PrefixValidityIndex before(cs1Before);
    const std::vector<Route> feed = {{pfx("173.251.91.0/24"), 53725},
                                     {pfx("173.251.54.0/24"), 13599}};
    const viz::PrefixTreeViz viz(before, idx, viz::VizConfig{pfx("173.251.0.0/16"), 8, 53725},
                                 feed);
    std::ofstream("detector_watch_cs1.svg") << viz.renderSvg();
    std::printf("  wrote detector_watch_cs1.svg\n");

    // --- Case Study 2: deleted ROA under a covering ROA (2013-12-19) -------
    const RpkiState cs2Before({
        {pfx("79.139.96.0/24"), 24, 51813},  // the victim (Russian network)
        {pfx("79.139.96.0/19"), 20, 43782},  // covering ROA, another ISP
    });
    const RpkiState cs2After({
        {pfx("79.139.96.0/19"), 20, 43782},
    });
    printReport("Case Study 2: deleted ROA (79.139.96.0/24, AS 51813)",
                diffStates(cs2Before, cs2After));
    std::printf("\nBecause the covering /19 ROA remains, the victim's route became\n"
                "INVALID (not unknown) — a relying party dropping invalid routes\n"
                "loses connectivity to it. The detector is the paper's alert system\n"
                "for exactly this kind of silent takedown.\n");
    return 0;
}
