// Quickstart: build a tiny RPKI (the shape of the paper's Figure 1),
// publish it, validate it the way a relying party would, and classify BGP
// routes against the resulting ROA set.
//
//   $ ./quickstart
#include <cstdio>

#include "detector/validity_index.hpp"
#include "vanilla/classic_tree.hpp"
#include "vanilla/validation.hpp"

using namespace rpkic;

int main() {
    // --- 1. Build the Figure-1 hierarchy -----------------------------------
    // ARIN allocates 63.160.0.0/12 to Sprint; Sprint suballocates to
    // Continental Broadband and authorizes AS 1239 for the /12.
    vanilla::ClassicTree tree;
    tree.addTrustAnchor("arin", ResourceSet::ofPrefixes({IpPrefix::parse("0.0.0.0/0")}));
    tree.addChild("arin", "sprint",
                  ResourceSet::ofPrefixes({IpPrefix::parse("63.160.0.0/12")}));
    tree.addRoa("sprint", "as1239", 1239, {{IpPrefix::parse("63.160.0.0/12"), 24}});
    tree.addChild("sprint", "continental",
                  ResourceSet::ofPrefixes({IpPrefix::parse("63.174.16.0/20")}));
    tree.addRoa("continental", "as17054", 17054, {{IpPrefix::parse("63.174.16.0/20"), 24}});

    // --- 2. Publish and validate -------------------------------------------
    Repository repo;
    tree.publish(repo, /*now=*/0);
    const vanilla::Result result = vanilla::validateSnapshot(
        repo.snapshot(), tree.trustAnchors(), vanilla::Options{.now = 0});

    std::printf("validated %zu certificates and %zu ROAs, %zu problems\n",
                result.certs.size(), result.roas.size(), result.problems.size());
    for (const auto& problem : result.problems) {
        std::printf("  problem: %s\n", problem.str().c_str());
    }

    // --- 3. Classify routes (RFC 6483/6811, paper section 2.2) -------------
    const PrefixValidityIndex index(result.roaState());
    const Route probes[] = {
        {IpPrefix::parse("63.160.0.0/12"), 1239},   // valid: matching ROA
        {IpPrefix::parse("63.174.16.0/24"), 17054}, // valid: within maxLength
        {IpPrefix::parse("63.174.16.0/24"), 666},   // invalid: subprefix hijack
        {IpPrefix::parse("63.160.0.0/12"), 666},    // invalid: prefix hijack
        {IpPrefix::parse("8.8.8.0/24"), 15169},     // unknown: no covering ROA
    };
    std::printf("\nroute classification:\n");
    for (const Route& r : probes) {
        std::printf("  %-28s -> %s\n", r.str().c_str(),
                    std::string(toString(index.classify(r))).c_str());
    }

    std::printf("\nThe subprefix hijack is invalid because the legitimate ROA covers\n"
                "it (paper section 2.2's desideratum); the unrelated prefix stays\n"
                "unknown because no ROA covers it at all.\n");
    return 0;
}
