// Replays the synthetic 91-day trace of the production RPKI as a live
// monitoring feed: for each day, the detector compares the new state with
// the previous one and prints the alerts an operator would have received —
// including the four case studies, on their real dates.
//
//   $ ./trace_replay [--all]   (--all also prints quiet days)
#include <cstdio>
#include <optional>
#include <string>

#include "detector/diff.hpp"
#include "model/trace.hpp"

using namespace rpkic;

int main(int argc, char** argv) {
    bool showAll = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--all") showAll = true;
    }

    std::printf("replaying the 2013-10-23 -> 2014-01-21 trace through the detector\n\n");
    const model::Trace trace = model::generateTrace({});

    std::optional<PrefixValidityIndex> prev;
    int alertDays = 0;
    for (const auto& entry : trace.entries) {
        if (!entry.collected) {
            std::printf("%s  (collector down)\n", entry.date.c_str());
            prev.reset();
            continue;
        }
        PrefixValidityIndex cur(entry.state);
        if (!prev.has_value()) {
            prev.emplace(std::move(cur));
            continue;
        }
        const DowngradeReport report = diffStates(*prev, cur, 3);
        // Alert on takedowns of previously-valid routes and on competing
        // ROAs; routine growth (unknown -> invalid for everyone else) is
        // context, not an alert (cf. Figure 5's framing).
        const bool interesting = report.validToInvalidPairs > 0 ||
                                 report.validToUnknownPairs > 0 ||
                                 !report.competingRoas.empty();
        if (interesting || showAll) {
            std::printf("%s  v->i=%llu v->u=%llu u->i=%llu  invalid-addrs=%llu\n",
                        entry.date.c_str(),
                        static_cast<unsigned long long>(report.validToInvalidPairs),
                        static_cast<unsigned long long>(report.validToUnknownPairs),
                        static_cast<unsigned long long>(report.unknownToInvalidPairs),
                        static_cast<unsigned long long>(report.invalidAddressesAfter));
            for (const auto& t : report.tupleTransitions) {
                if (!t.isDowngrade()) continue;
                std::printf("    ALERT downgrade %s: %s -> %s\n", t.route.str().c_str(),
                            std::string(toString(t.before)).c_str(),
                            std::string(toString(t.after)).c_str());
            }
            for (const auto& c : report.competingRoas) {
                std::printf("    ALERT competing ROA %s contests %s\n",
                            c.added.str().c_str(), c.existing.str().c_str());
            }
            for (const auto& e : entry.events) {
                if (e.kind == model::TraceEventKind::StaleManifests ||
                    e.kind == model::TraceEventKind::RcOverwritten) {
                    std::printf("    (ground truth: %s)\n", e.description.c_str());
                }
            }
            if (interesting) ++alertDays;
        }
        prev.emplace(std::move(cur));
    }
    std::printf("\n%d of %d days produced alerts; the four case studies appear on\n"
                "2013-12-13, 2013-12-19, 2013-12-20 and 2014-01-05, exactly as in the\n"
                "paper's measurement window.\n",
                alertDays, trace.days());
    return 0;
}
