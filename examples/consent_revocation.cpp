// The consent workflow of the redesigned RPKI (paper §5.3): a revocation
// with recursively collected .dead objects sails through a relying party's
// checks; the same revocation done unilaterally raises an accountable
// alarm naming the perpetrator.
//
//   $ ./consent_revocation
#include <cstdio>

#include "consent/authority.hpp"
#include "rp/relying_party.hpp"

using namespace rpkic;
using consent::Authority;
using consent::AuthorityDirectory;
using consent::AuthorityOptions;

namespace {

IpPrefix pfx(const char* s) {
    return IpPrefix::parse(s);
}

void showAlarms(const rp::RelyingParty& alice) {
    if (alice.alarms().count() == 0) {
        std::printf("  alarms: none\n");
        return;
    }
    for (const auto& alarm : alice.alarms().all()) {
        std::printf("  ALARM %s\n", alarm.str().c_str());
    }
}

}  // namespace

int main() {
    Repository repo;
    AuthorityDirectory dir(7, AuthorityOptions{.ts = 3, .signerHeight = 6,
                                               .manifestLifetime = 20});
    SimClock clock;

    // rir -> isp -> customer, each with address space and a ROA.
    Authority& rir = dir.createTrustAnchor("rir", ResourceSet::ofPrefixes({pfx("10.0.0.0/8")}),
                                           repo, clock.now());
    Authority& isp = dir.createChild(rir, "isp", ResourceSet::ofPrefixes({pfx("10.4.0.0/14")}),
                                     repo, clock.now());
    Authority& customer = dir.createChild(
        isp, "customer", ResourceSet::ofPrefixes({pfx("10.4.8.0/21")}), repo, clock.now());
    customer.issueRoa("site", 64500, {{pfx("10.4.8.0/21"), 24}}, repo, clock.now());

    rp::RelyingParty alice("alice", {rir.cert()}, rp::RpOptions{.ts = 3, .tg = 6});
    alice.sync(repo.snapshot(), clock.now());
    std::printf("initial sync: %zu valid ROAs\n", alice.validRoas().size());
    showAlarms(alice);

    // --- Consensual revocation ----------------------------------------------
    // The ISP wants its customer's RC gone (say, the contract ended). Under
    // the new rules it must first collect .dead objects from the customer
    // and every impacted descendant.
    std::printf("\n[1] the ISP revokes the customer WITH consent\n");
    clock.advance(1);
    const std::vector<DeadObject> deads = dir.collectRevocationConsent(customer);
    std::printf("  collected %zu .dead object(s)\n", deads.size());
    isp.revokeChild("customer", deads, repo, clock.now());
    alice.sync(repo.snapshot(), clock.now());
    std::printf("  after revocation: %zu valid ROAs\n", alice.validRoas().size());
    std::printf("  Alice saw the customer's .dead: %s\n",
                alice.sawDeadFor(customer.cert().uri, customer.cert().serial) ? "yes" : "no");
    showAlarms(alice);

    // --- Unilateral revocation ----------------------------------------------
    // Meanwhile another ISP takes down its child without asking anyone.
    std::printf("\n[2] a second ISP revokes its customer WITHOUT consent\n");
    Authority& isp2 = dir.createChild(rir, "isp2", ResourceSet::ofPrefixes({pfx("10.8.0.0/14")}),
                                      repo, clock.now());
    Authority& victim = dir.createChild(
        isp2, "victim", ResourceSet::ofPrefixes({pfx("10.8.16.0/21")}), repo, clock.now());
    victim.issueRoa("site", 64501, {{pfx("10.8.16.0/21"), 24}}, repo, clock.now());
    alice.sync(repo.snapshot(), clock.now());

    clock.advance(1);
    isp2.unsafeUnilateralRevokeChild("victim", repo, clock.now());
    alice.sync(repo.snapshot(), clock.now());
    showAlarms(alice);

    std::printf("\nThe unilateral case produced an ACCOUNTABLE unilateral-revocation\n"
                "alarm naming isp2 — Alice can publish the two consecutive manifests\n"
                "(one logging the victim's RC, the next logging neither the RC nor a\n"
                ".dead) to prove the takedown to anyone (paper Theorem 5.1, §5.5).\n");

    // --- Emergencies ---------------------------------------------------------
    std::printf("[3] emergencies still work: the revocation is possible, just visible.\n"
                "    During disputes or lost keys the issuer revokes unilaterally and\n"
                "    relying parties investigate out of band (paper §5.1).\n");
    return 0;
}
